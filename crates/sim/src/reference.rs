//! The tree-walking reference interpreter (the semantic oracle).
//!
//! This is the original interpreter the decoded engine in [`crate::exec`]
//! was refactored from. It executes the structured [`Module`] directly —
//! frames carry `(func, block, inst)` triples and every issue slot walks
//! the `IdVec`s — and is kept as the executable specification of the
//! execution model: a property test asserts that
//! [`run_image`](crate::exec::run_image) on a decoded image produces
//! bit-identical metrics, memory, traces, profiles, and errors to
//! [`run_reference`] on the same module.
//!
//! Execution model (a software rendition of Volta's *independent thread
//! scheduling*):
//!
//! - every thread has its own PC (a frame stack, actually — device calls
//!   push frames) and register file;
//! - each issue slot, a warp groups its runnable threads by PC and issues
//!   **one** instruction for **one** group — divergence therefore
//!   serializes execution and is directly visible in the SIMT-efficiency
//!   metric;
//! - convergence-barrier registers hold per-warp participation masks;
//!   `Wait` blocks a thread until every live participant of the barrier is
//!   blocked on it, then releases them together (and clears the register),
//!   which is how reconvergence happens;
//! - a thread's `Exit` drops it from every mask, so barriers never wait on
//!   departed threads (Volta's forward-progress guarantee).
//!
//! Warps only interact through global memory (including the atomic
//! work-queue counter used by thread coarsening); barrier state is
//! strictly per-warp.

use crate::alu::{eval_bin, eval_un};
use crate::config::SimConfig;
use crate::error::{BarrierState, ReconDump, SimError, ThreadLocation};
use crate::journal::{Journal, JournalEvent};
use crate::machine::{Launch, SimOutput};
use crate::metrics::Metrics;
use crate::profile::Profile;
use crate::rng::SplitMix64;
use crate::sched::select_group;
use crate::trace::{Trace, TraceEvent};
use simt_ir::{
    BarrierId, BarrierOp, BinOp, BlockId, FuncId, FuncRef, Inst, MemSpace, Module, Operand, Reg,
    RngKind, SpecialValue, Terminator, Value,
};

#[derive(Clone, Debug)]
struct Frame {
    func: FuncId,
    block: BlockId,
    inst: usize,
    regs: Vec<Value>,
    /// Caller registers that receive this frame's return values.
    ret_regs: Vec<Reg>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    Waiting(BarrierId),
    /// Blocked at `__syncthreads` until every live thread arrives.
    WaitingSync,
    Exited,
}

#[derive(Clone, Debug)]
struct Thread {
    frames: Vec<Frame>,
    status: Status,
    rng: SplitMix64,
    local: Vec<Value>,
}

impl Thread {
    fn frame(&self) -> &Frame {
        self.frames.last().expect("thread has no frame")
    }
    fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("thread has no frame")
    }
}

#[derive(Clone, Debug)]
struct Warp {
    threads: Vec<Thread>,
    /// Barrier participation masks, one bit per lane.
    masks: Vec<u64>,
    busy_until: u64,
    rr_cursor: usize,
    /// Lanes of the group issued last (greedy scheduling state).
    last_lanes: u64,
    /// Direct-mapped L1 tag array (line index -> cached line tag), when
    /// the cache cost model is on.
    cache_tags: Vec<Option<i64>>,
    /// Per-level tag arrays of the memory-hierarchy cost model, when
    /// [`SimConfig::mem`] is on (empty otherwise).
    mem_tags: crate::mem::MemTags,
    done: bool,
}

/// Key identifying a PC group: (function, block, instruction index).
type GroupKey = (u32, u32, usize);

struct Machine<'m> {
    module: &'m Module,
    cfg: &'m SimConfig,
    warps: Vec<Warp>,
    global: Vec<Value>,
    metrics: Metrics,
    trace: Option<Trace>,
    profile: Option<Profile>,
    journal: Option<Journal>,
    /// Machine-wide MSHR files of the memory-hierarchy cost model.
    mshrs: crate::mem::MemMshrs,
    /// Hierarchy walk staging buffers.
    mem_scratch: crate::mem::MemScratch,
    /// Outcome of the global access the current issue performed, parked
    /// for `issue` to attribute (journal event, per-block profile).
    pending_mem: Option<crate::mem::AccessOutcome>,
    cycle: u64,
}

/// Runs a kernel launch to completion on the tree-walking interpreter.
///
/// Prefer [`run`](crate::machine::run) (the decoded engine) — this entry
/// point exists for differential testing and as the baseline side of the
/// decoded-vs-reference benchmark.
///
/// # Errors
///
/// Returns a [`SimError`] on deadlock, memory/arithmetic faults, cycle
/// budget exhaustion, or an invalid/unlinked module.
pub fn run_reference(
    module: &Module,
    cfg: &SimConfig,
    launch: &Launch,
) -> Result<SimOutput, SimError> {
    let kernel = module
        .function_by_name(&launch.kernel)
        .ok_or_else(|| SimError::NoSuchKernel(launch.kernel.clone()))?;
    let kfunc = &module.functions[kernel];
    if launch.args.len() > kfunc.num_params {
        return Err(SimError::InvalidModule(format!(
            "kernel @{} takes {} params, launch provides {}",
            kfunc.name,
            kfunc.num_params,
            launch.args.len()
        )));
    }

    let num_barriers =
        module.functions.iter().map(|(_, f)| f.num_barriers).max().unwrap_or(0).max(1);

    let width = cfg.warp_width;
    assert!(width <= 64, "warp width above 64 lanes is not supported");
    let mut warps = Vec::with_capacity(launch.num_warps);
    for w in 0..launch.num_warps {
        let mut threads = Vec::with_capacity(width);
        for lane in 0..width {
            let tid = (w * width + lane) as u64;
            let mut regs = vec![Value::default(); kfunc.num_regs];
            for (i, a) in launch.args.iter().enumerate() {
                regs[i] = *a;
            }
            threads.push(Thread {
                frames: vec![Frame {
                    func: kernel,
                    block: kfunc.entry,
                    inst: 0,
                    regs,
                    ret_regs: Vec::new(),
                }],
                status: Status::Runnable,
                rng: SplitMix64::for_thread(launch.seed, tid),
                local: vec![Value::default(); launch.local_mem_size],
            });
        }
        warps.push(Warp {
            threads,
            masks: vec![0; num_barriers],
            busy_until: 0,
            rr_cursor: 0,
            last_lanes: 0,
            cache_tags: cfg.cache.as_ref().map(|c| vec![None; c.lines]).unwrap_or_default(),
            mem_tags: crate::mem::MemTags::new(cfg.mem.as_ref()),
            done: false,
        });
    }

    let mut machine = Machine {
        module,
        cfg,
        warps,
        global: launch.global_mem.clone(),
        metrics: Metrics::new(launch.num_warps, width),
        trace: if cfg.trace { Some(Trace::new(width)) } else { None },
        profile: if cfg.profile { Some(Profile::new()) } else { None },
        journal: cfg.journal.as_ref().map(Journal::new),
        mshrs: crate::mem::MemMshrs::new(cfg.mem.as_ref()),
        mem_scratch: crate::mem::MemScratch::default(),
        pending_mem: None,
        cycle: 0,
    };
    machine.run_to_completion()?;

    let Machine { global, mut metrics, trace, profile, journal, cycle, .. } = machine;
    metrics.cycles = cycle;
    Ok(SimOutput { metrics, global_mem: global, trace, profile, journal })
}

impl<'m> Machine<'m> {
    fn run_to_completion(&mut self) -> Result<(), SimError> {
        loop {
            let mut next_ready = u64::MAX;
            let mut all_done = true;
            for w in 0..self.warps.len() {
                if self.warps[w].done {
                    continue;
                }
                all_done = false;
                if self.warps[w].busy_until > self.cycle {
                    next_ready = next_ready.min(self.warps[w].busy_until);
                    continue;
                }
                match self.pick_group(w) {
                    Some((key, lanes)) => {
                        let mut mask = 0u64;
                        for &l in &lanes {
                            mask |= 1 << l;
                        }
                        // Reconvergence by pc collision: the pick strictly
                        // grew the group issued last — stragglers reached
                        // the same pc and merged back in.
                        if self.journal.is_some() {
                            let last = self.warps[w].last_lanes;
                            if last != 0 && mask != last && mask & last == last {
                                self.journal_push(JournalEvent::GroupMerge {
                                    cycle: self.cycle,
                                    warp: w,
                                    func: FuncId(key.0),
                                    block: BlockId(key.1),
                                    inst: key.2,
                                    mask,
                                    absorbed: mask & !last,
                                });
                            }
                        }
                        self.warps[w].last_lanes = mask;
                        let cost = self.issue(w, key, &lanes)?;
                        self.warps[w].busy_until = self.cycle + u64::from(cost.max(1));
                        next_ready = next_ready.min(self.warps[w].busy_until);
                    }
                    None => {
                        // No runnable group. Either everyone exited, or
                        // every live thread is blocked — since barriers
                        // are warp-local and release checks already ran,
                        // that is a deadlock.
                        let live: Vec<usize> = (0..self.cfg.warp_width)
                            .filter(|&l| self.warps[w].threads[l].status != Status::Exited)
                            .collect();
                        if live.is_empty() {
                            self.warps[w].done = true;
                        } else {
                            let waiting = live
                                .iter()
                                .map(|&l| {
                                    let t = &self.warps[w].threads[l];
                                    let b = match t.status {
                                        Status::Waiting(b) => b,
                                        // WaitingSync reported as barrier 0
                                        // (the diagnostic text carries the
                                        // real story).
                                        _ => BarrierId(0),
                                    };
                                    (self.location(w, l), b)
                                })
                                .collect();
                            self.journal_push(JournalEvent::DeadlockOnset {
                                cycle: self.cycle,
                                warp: w,
                            });
                            let barriers = self.barrier_dump(w);
                            return Err(SimError::Deadlock {
                                cycle: self.cycle,
                                waiting,
                                barriers,
                                recon: ReconDump::BarrierFile,
                            });
                        }
                    }
                }
            }
            if all_done {
                return Ok(());
            }
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimError::MaxCyclesExceeded { limit: self.cfg.max_cycles });
            }
            if next_ready == u64::MAX {
                // Every remaining warp became done this round.
                continue;
            }
            self.cycle = next_ready.max(self.cycle + 1);
        }
    }

    /// Records one journal event, if journaling is on.
    fn journal_push(&mut self, e: JournalEvent) {
        if let Some(j) = self.journal.as_mut() {
            j.push(e);
        }
    }

    /// Snapshot of every barrier register of warp `w` that still has
    /// live participants or waiters (the deadlock diagnostic dump).
    fn barrier_dump(&self, w: usize) -> Vec<BarrierState> {
        let warp = &self.warps[w];
        let mut live = 0u64;
        for (l, t) in warp.threads.iter().enumerate() {
            if t.status != Status::Exited {
                live |= 1 << l;
            }
        }
        let mut out = Vec::new();
        for (i, &m) in warp.masks.iter().enumerate() {
            let b = BarrierId::new(i);
            let mut waiters = 0u64;
            for (l, t) in warp.threads.iter().enumerate() {
                if t.status == Status::Waiting(b) {
                    waiters |= 1 << l;
                }
            }
            let participants = m & live;
            if participants != 0 || waiters != 0 {
                out.push(BarrierState { barrier: b, participants, waiters });
            }
        }
        out
    }

    fn location(&self, warp: usize, lane: usize) -> ThreadLocation {
        let t = &self.warps[warp].threads[lane];
        match t.frames.last() {
            Some(f) => ThreadLocation { warp, lane, func: f.func, block: f.block, inst: f.inst },
            None => ThreadLocation { warp, lane, func: FuncId(0), block: BlockId(0), inst: 0 },
        }
    }

    /// Groups runnable lanes by PC and applies the scheduler policy.
    fn pick_group(&mut self, w: usize) -> Option<(GroupKey, Vec<usize>)> {
        let warp = &mut self.warps[w];
        let mut groups: Vec<(GroupKey, Vec<usize>)> = Vec::new();
        for (lane, t) in warp.threads.iter().enumerate() {
            if t.status != Status::Runnable {
                continue;
            }
            let f = t.frame();
            let key = (f.func.0, f.block.0, f.inst);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, lanes)) => lanes.push(lane),
                None => groups.push((key, vec![lane])),
            }
        }
        select_group(self.cfg.scheduler, groups, warp.last_lanes, &mut warp.rr_cursor)
    }

    /// Issues one instruction (or terminator) for the given group; returns
    /// its cycle cost.
    fn issue(&mut self, w: usize, key: GroupKey, lanes: &[usize]) -> Result<u32, SimError> {
        let (func_id, block_id, inst_idx) = (FuncId(key.0), BlockId(key.1), key.2);
        // Reborrow through the module's own lifetime so the instruction
        // stays borrowed (not cloned) across the &mut self calls below.
        let module: &'m Module = self.module;
        let block = &module.functions[func_id].blocks[block_id];

        let waiting_lanes =
            self.warps[w].threads.iter().filter(|t| matches!(t.status, Status::Waiting(_))).count()
                as u64;
        self.metrics.stall_cycles += waiting_lanes;
        if self.journal.is_some() {
            let Machine { warps, journal, .. } = &mut *self;
            let j = journal.as_mut().expect("journal is on");
            for t in &warps[w].threads {
                if let Status::Waiting(b) = t.status {
                    j.note_stall(b, 1);
                }
            }
        }

        let cost = if inst_idx < block.insts.len() {
            self.exec_inst(w, lanes, &block.insts[inst_idx])?
        } else {
            self.exec_term(w, key, lanes, &block.term)?;
            self.cfg.latency.control
        };

        // Attribute the memory-hierarchy outcome the access parked (if
        // any), identically to the decoded engine.
        if let Some(out) = self.pending_mem.take() {
            let stall = out.total_stall();
            if stall > 0 {
                if self.journal.is_some() {
                    let level = out.levels.iter().position(|l| l.mshr_stall == stall).unwrap_or(0);
                    self.journal_push(JournalEvent::MemStall {
                        cycle: self.cycle,
                        warp: w,
                        level,
                        stall,
                    });
                }
                if let Some(profile) = &mut self.profile {
                    profile.record_mem_stall(func_id, block_id, stall);
                }
            }
        }

        // Metrics (cost-weighted: see `Metrics::active_lane_sum`).
        let weight = u64::from(cost.max(1));
        let active = lanes.len() as u64 * weight;
        self.metrics.issues += 1;
        self.metrics.issue_weight += weight;
        self.metrics.active_lane_sum += active;
        self.metrics.lane_insts += lanes.len() as u64;
        let (wi, wa) = self.metrics.per_warp[w];
        self.metrics.per_warp[w] = (wi + weight, wa + active);
        if block.roi {
            self.metrics.roi_issues += weight;
            self.metrics.roi_active_lane_sum += active;
        }

        if let Some(profile) = &mut self.profile {
            profile.record(func_id, block_id, inst_idx, lanes.len() as u64, cost);
        }
        if let Some(trace) = &mut self.trace {
            let mut mask = 0u64;
            for &l in lanes {
                mask |= 1 << l;
            }
            trace.push(TraceEvent {
                cycle: self.cycle,
                warp: w,
                func: func_id,
                block: block_id,
                inst: inst_idx,
                mask,
                cost,
                roi: block.roi,
            });
        }
        Ok(cost)
    }

    fn eval(&self, w: usize, lane: usize, op: Operand) -> Value {
        match op {
            Operand::Imm(v) => v,
            Operand::Reg(r) => self.warps[w].threads[lane].frame().regs[r.index()],
        }
    }

    fn set_reg(&mut self, w: usize, lane: usize, r: Reg, v: Value) {
        self.warps[w].threads[lane].frame_mut().regs[r.index()] = v;
    }

    fn advance(&mut self, w: usize, lane: usize) {
        self.warps[w].threads[lane].frame_mut().inst += 1;
    }

    fn exec_inst(&mut self, w: usize, lanes: &[usize], inst: &Inst) -> Result<u32, SimError> {
        let lat = &self.cfg.latency;
        let mut cost = lat.issue_cost(inst);
        match inst {
            Inst::Bin { op, dst, lhs, rhs } => {
                for &l in lanes {
                    let a = self.eval(w, l, *lhs);
                    let b = self.eval(w, l, *rhs);
                    let v = eval_bin(*op, a, b).map_err(|m| SimError::Arithmetic {
                        at: self.location(w, l),
                        message: m,
                    })?;
                    self.set_reg(w, l, *dst, v);
                    self.advance(w, l);
                }
            }
            Inst::Un { op, dst, src } => {
                for &l in lanes {
                    let a = self.eval(w, l, *src);
                    let v = eval_un(*op, a).map_err(|m| SimError::Arithmetic {
                        at: self.location(w, l),
                        message: m,
                    })?;
                    self.set_reg(w, l, *dst, v);
                    self.advance(w, l);
                }
            }
            Inst::Mov { dst, src } => {
                for &l in lanes {
                    let v = self.eval(w, l, *src);
                    self.set_reg(w, l, *dst, v);
                    self.advance(w, l);
                }
            }
            Inst::Sel { dst, cond, if_true, if_false } => {
                for &l in lanes {
                    let c = self.eval(w, l, *cond);
                    let v = if c.is_truthy() {
                        self.eval(w, l, *if_true)
                    } else {
                        self.eval(w, l, *if_false)
                    };
                    self.set_reg(w, l, *dst, v);
                    self.advance(w, l);
                }
            }
            Inst::Load { dst, space, addr } => {
                let mut addrs = Vec::with_capacity(lanes.len());
                for &l in lanes {
                    let a = self.eval(w, l, *addr).as_i64();
                    addrs.push(a);
                    let v = self.mem_read(w, l, *space, a)?;
                    self.set_reg(w, l, *dst, v);
                    self.advance(w, l);
                }
                if *space == MemSpace::Global {
                    cost = self.global_access_cost(w, &addrs, cost);
                }
            }
            Inst::Store { space, addr, value } => {
                let mut addrs = Vec::with_capacity(lanes.len());
                for &l in lanes {
                    let a = self.eval(w, l, *addr).as_i64();
                    let v = self.eval(w, l, *value);
                    addrs.push(a);
                    self.mem_write(w, l, *space, a, v)?;
                    self.advance(w, l);
                }
                if *space == MemSpace::Global {
                    // Stores write through: cost like a load, but the
                    // touched lines are invalidated in every warp (they
                    // now differ from any cached copy).
                    cost = self.global_access_cost(w, &addrs, cost);
                    self.invalidate_lines(&addrs);
                }
            }
            Inst::AtomicAdd { dst, addr, value } => {
                // Lanes are serialized in lane order, like hardware atomics
                // to the same address. Atomics bypass the cache and
                // invalidate the lines they touch.
                let mut atomic_addrs = Vec::with_capacity(lanes.len());
                for &l in lanes {
                    let a = self.eval(w, l, *addr).as_i64();
                    let v = self.eval(w, l, *value);
                    let old = self.mem_read(w, l, MemSpace::Global, a)?;
                    let new = eval_bin(BinOp::Add, old, v).map_err(|m| SimError::Arithmetic {
                        at: self.location(w, l),
                        message: m,
                    })?;
                    self.mem_write(w, l, MemSpace::Global, a, new)?;
                    self.set_reg(w, l, *dst, old);
                    atomic_addrs.push(a);
                    self.advance(w, l);
                }
                self.invalidate_lines(&atomic_addrs);
            }
            Inst::Special { dst, kind } => {
                let width = self.cfg.warp_width;
                let n_threads = (self.warps.len() * width) as i64;
                for &l in lanes {
                    let v = match kind {
                        SpecialValue::Tid => Value::I64((w * width + l) as i64),
                        SpecialValue::LaneId => Value::I64(l as i64),
                        SpecialValue::WarpId => Value::I64(w as i64),
                        SpecialValue::NumThreads => Value::I64(n_threads),
                        SpecialValue::WarpWidth => Value::I64(width as i64),
                    };
                    self.set_reg(w, l, *dst, v);
                    self.advance(w, l);
                }
            }
            Inst::Rng { dst, kind } => {
                for &l in lanes {
                    let v = match kind {
                        RngKind::U63 => Value::I64(self.warps[w].threads[l].rng.next_u63()),
                        RngKind::Unit => Value::F64(self.warps[w].threads[l].rng.next_unit()),
                    };
                    self.set_reg(w, l, *dst, v);
                    self.advance(w, l);
                }
            }
            Inst::SyncThreads => {
                let mut mask = 0u64;
                for &l in lanes {
                    self.warps[w].threads[l].status = Status::WaitingSync;
                    mask |= 1 << l;
                }
                self.journal_push(JournalEvent::SyncArrive { cycle: self.cycle, warp: w, mask });
                self.sync_release_check(w);
            }
            Inst::Vote { dst, pred } => {
                // Warp-synchronous: counts over the lanes issued together.
                let mut count = 0i64;
                for &l in lanes {
                    if self.eval(w, l, *pred).is_truthy() {
                        count += 1;
                    }
                }
                for &l in lanes {
                    self.set_reg(w, l, *dst, Value::I64(count));
                    self.advance(w, l);
                }
            }
            Inst::SeedRng { src } => {
                let launch_mix = 0x5EED_u64; // stream domain separator
                for &l in lanes {
                    let v = self.eval(w, l, *src).as_i64() as u64;
                    self.warps[w].threads[l].rng = SplitMix64::for_thread(v ^ launch_mix, v);
                    self.advance(w, l);
                }
            }
            Inst::Call { func, args, rets } => {
                let callee = match func {
                    FuncRef::Id(id) => *id,
                    FuncRef::Name(n) => {
                        return Err(SimError::UnresolvedCall {
                            at: self.location(w, lanes[0]),
                            callee: n.clone(),
                        })
                    }
                };
                let cf = &self.module.functions[callee];
                let (entry, num_regs) = (cf.entry, cf.num_regs);
                for &l in lanes {
                    let mut regs = vec![Value::default(); num_regs];
                    for (i, a) in args.iter().enumerate() {
                        regs[i] = self.eval(w, l, *a);
                    }
                    // Return to the instruction after the call.
                    self.advance(w, l);
                    self.warps[w].threads[l].frames.push(Frame {
                        func: callee,
                        block: entry,
                        inst: 0,
                        regs,
                        ret_regs: rets.clone(),
                    });
                }
            }
            Inst::Barrier(op) => self.exec_barrier(w, lanes, *op),
            Inst::Work { .. } | Inst::Nop => {
                for &l in lanes {
                    self.advance(w, l);
                }
            }
        }
        if inst.is_barrier() {
            self.metrics.barrier_ops += lanes.len() as u64;
        }
        Ok(cost)
    }

    fn exec_barrier(&mut self, w: usize, lanes: &[usize], op: BarrierOp) {
        let mut mask = 0u64;
        for &l in lanes {
            mask |= 1 << l;
        }
        match op {
            BarrierOp::Join(b) | BarrierOp::Rejoin(b) => {
                for &l in lanes {
                    self.warps[w].masks[b.index()] |= 1 << l;
                    self.advance(w, l);
                }
                self.journal_push(JournalEvent::BarrierJoin {
                    cycle: self.cycle,
                    warp: w,
                    barrier: b,
                    mask,
                });
            }
            BarrierOp::Cancel(b) => {
                for &l in lanes {
                    self.warps[w].masks[b.index()] &= !(1 << l);
                    self.advance(w, l);
                }
                self.journal_push(JournalEvent::BarrierCancel {
                    cycle: self.cycle,
                    warp: w,
                    barrier: b,
                    mask,
                });
                self.release_check(w, b);
            }
            BarrierOp::Copy { dst, src } => {
                self.warps[w].masks[dst.index()] = self.warps[w].masks[src.index()];
                for &l in lanes {
                    self.advance(w, l);
                }
                self.release_check(w, dst);
            }
            BarrierOp::ArrivedCount { dst, bar } => {
                let n = self.warps[w].masks[bar.index()].count_ones() as i64;
                for &l in lanes {
                    self.set_reg(w, l, dst, Value::I64(n));
                    self.advance(w, l);
                }
            }
            BarrierOp::Wait(b) => {
                // Block at the wait instruction; the PC advances on
                // release.
                for &l in lanes {
                    self.warps[w].threads[l].status = Status::Waiting(b);
                }
                self.journal_push(JournalEvent::BarrierWait {
                    cycle: self.cycle,
                    warp: w,
                    barrier: b,
                    mask,
                });
                self.release_check(w, b);
            }
        }
    }

    /// Releases the `__syncthreads` cohort once every live thread is at
    /// one.
    fn sync_release_check(&mut self, w: usize) {
        let warp = &mut self.warps[w];
        let all_at_sync =
            warp.threads.iter().all(|t| matches!(t.status, Status::WaitingSync | Status::Exited));
        let any = warp.threads.iter().any(|t| t.status == Status::WaitingSync);
        if all_at_sync && any {
            let mut releasing = 0u64;
            for (l, t) in warp.threads.iter_mut().enumerate() {
                if t.status == Status::WaitingSync {
                    t.status = Status::Runnable;
                    t.frame_mut().inst += 1;
                    releasing |= 1 << l;
                }
            }
            self.journal_push(JournalEvent::SyncRelease {
                cycle: self.cycle,
                warp: w,
                mask: releasing,
            });
        }
    }

    /// Releases barrier `b` if every live participant is blocked on it.
    fn release_check(&mut self, w: usize, b: BarrierId) {
        let warp = &mut self.warps[w];
        let mut live_mask = 0u64;
        let mut waiting_mask = 0u64;
        for (l, t) in warp.threads.iter().enumerate() {
            if t.status != Status::Exited {
                live_mask |= 1 << l;
            }
            if t.status == Status::Waiting(b) {
                waiting_mask |= 1 << l;
            }
        }
        if waiting_mask == 0 {
            return;
        }
        let participants = warp.masks[b.index()] & live_mask;
        if participants & !waiting_mask == 0 {
            // Release: all waiting lanes advance past their wait; the
            // barrier register is consumed.
            warp.masks[b.index()] = 0;
            for l in 0..warp.threads.len() {
                if waiting_mask & (1 << l) != 0 {
                    warp.threads[l].status = Status::Runnable;
                    warp.threads[l].frame_mut().inst += 1;
                }
            }
            self.journal_push(JournalEvent::BarrierRelease {
                cycle: self.cycle,
                warp: w,
                barrier: b,
                mask: waiting_mask,
            });
        }
    }

    fn exec_term(
        &mut self,
        w: usize,
        key: GroupKey,
        lanes: &[usize],
        term: &Terminator,
    ) -> Result<(), SimError> {
        match term {
            Terminator::Jump(t) => {
                for &l in lanes {
                    let f = self.warps[w].threads[l].frame_mut();
                    f.block = *t;
                    f.inst = 0;
                }
            }
            Terminator::Branch { cond, then_bb, else_bb, .. } => {
                let mut taken = 0u64;
                let mut mask = 0u64;
                for &l in lanes {
                    mask |= 1 << l;
                    let c = self.eval(w, l, *cond);
                    let f = self.warps[w].threads[l].frame_mut();
                    f.block = if c.is_truthy() {
                        taken |= 1 << l;
                        *then_bb
                    } else {
                        *else_bb
                    };
                    f.inst = 0;
                }
                let not_taken = mask & !taken;
                if taken != 0 && not_taken != 0 && self.journal.is_some() {
                    self.journal_push(JournalEvent::BranchDiverge {
                        cycle: self.cycle,
                        warp: w,
                        func: FuncId(key.0),
                        block: BlockId(key.1),
                        inst: key.2,
                        taken,
                        not_taken,
                    });
                }
            }
            Terminator::Return(values) => {
                let mut exited = 0u64;
                for &l in lanes {
                    let vals: Vec<Value> = values.iter().map(|v| self.eval(w, l, *v)).collect();
                    let thread = &mut self.warps[w].threads[l];
                    let frame = thread.frames.pop().expect("return without frame");
                    if thread.frames.is_empty() {
                        // Returning from the kernel frame behaves as exit
                        // (the verifier rejects this statically, but stay
                        // safe at runtime).
                        thread.status = Status::Exited;
                        thread.frames.push(frame);
                        exited |= 1 << l;
                        continue;
                    }
                    let caller = thread.frames.last_mut().expect("caller frame");
                    for (r, v) in frame.ret_regs.iter().zip(vals) {
                        caller.regs[r.index()] = v;
                    }
                }
                if exited != 0 {
                    self.on_exit_mask(w, exited);
                }
            }
            Terminator::Exit => {
                let mut mask = 0u64;
                for &l in lanes {
                    self.warps[w].threads[l].status = Status::Exited;
                    mask |= 1 << l;
                }
                self.on_exit_mask(w, mask);
            }
        }
        Ok(())
    }

    /// Drops exited lanes from every barrier and re-checks releases —
    /// the forward-progress rule. Batched over a mask so the releases
    /// (and their journal events) fire in the same order as the decoded
    /// engine's [`Machine::on_exit_mask`](crate::exec::Machine): releases
    /// are monotone in removed participants, so clearing the whole
    /// cohort before one re-check pass releases exactly the barriers
    /// that per-lane processing would.
    fn on_exit_mask(&mut self, w: usize, mask: u64) {
        let nb = self.warps[w].masks.len();
        for b in 0..nb {
            self.warps[w].masks[b] &= !mask;
        }
        for b in 0..nb {
            self.release_check(w, BarrierId::new(b));
        }
        self.sync_release_check(w);
    }

    /// Cost of a global access over the given cell addresses: coalescing
    /// segments, filtered through the optional L1 cache cost model (the
    /// cache serves no data — values always come from memory).
    fn global_access_cost(&mut self, w: usize, addrs: &[i64], base_cost: u32) -> u32 {
        let cfg = self.cfg;
        let now = self.cycle;
        if let Some(hier) = &cfg.mem {
            // Hierarchy walk at the issue cycle, identical to the
            // decoded engine's: tag fills and MSHR allocation commit
            // here; the outcome is parked for `issue` to attribute.
            let Machine { warps, metrics, mshrs, mem_scratch, pending_mem, .. } = self;
            let out =
                crate::mem::commit(hier, &mut warps[w].mem_tags, mshrs, mem_scratch, addrs, now);
            metrics.mem.record(&out);
            metrics.cache_hits += u64::from(out.levels[0].hits);
            metrics.cache_misses += u64::from(out.levels[0].misses);
            *pending_mem = Some(out);
            return out.cost;
        }
        let lat = &self.cfg.latency;
        let Some(cache) = &self.cfg.cache else {
            return base_cost + lat.mem_segment * lat.segments(addrs).saturating_sub(1);
        };
        // Unique lines touched by the access.
        let cells = cache.cells_per_line.max(1) as i64;
        let mut lines: Vec<i64> = addrs.iter().map(|a| a.div_euclid(cells)).collect();
        lines.sort_unstable();
        lines.dedup();
        let mut misses = 0u32;
        let warp = &mut self.warps[w];
        for &line in &lines {
            let slot = (line.rem_euclid(cache.lines as i64)) as usize;
            if warp.cache_tags[slot] == Some(line) {
                self.metrics.cache_hits += 1;
            } else {
                warp.cache_tags[slot] = Some(line);
                self.metrics.cache_misses += 1;
                misses += 1;
            }
        }
        if misses == 0 {
            cache.hit_cost.max(1)
        } else {
            // Pay full latency once plus a segment penalty per extra
            // missing line.
            self.cfg.latency.mem_base + self.cfg.latency.mem_segment * (misses - 1)
        }
    }

    /// Drops the lines covering `addrs` from every warp's cache (stores
    /// and atomics write through).
    fn invalidate_lines(&mut self, addrs: &[i64]) {
        if let Some(hier) = &self.cfg.mem {
            for warp in &mut self.warps {
                crate::mem::invalidate(hier, &mut warp.mem_tags, addrs);
            }
            return;
        }
        let Some(cache) = &self.cfg.cache else { return };
        let cells = cache.cells_per_line.max(1) as i64;
        for warp in &mut self.warps {
            for &a in addrs {
                let line = a.div_euclid(cells);
                let slot = (line.rem_euclid(cache.lines as i64)) as usize;
                if warp.cache_tags[slot] == Some(line) {
                    warp.cache_tags[slot] = None;
                }
            }
        }
    }

    fn mem_read(
        &self,
        w: usize,
        lane: usize,
        space: MemSpace,
        addr: i64,
    ) -> Result<Value, SimError> {
        let (mem, size) = match space {
            MemSpace::Global => (&self.global, self.global.len()),
            MemSpace::Local => {
                let t = &self.warps[w].threads[lane];
                (&t.local, t.local.len())
            }
        };
        if addr < 0 || addr as usize >= size {
            return Err(SimError::MemoryFault { at: self.location(w, lane), addr, size, space });
        }
        Ok(mem[addr as usize])
    }

    fn mem_write(
        &mut self,
        w: usize,
        lane: usize,
        space: MemSpace,
        addr: i64,
        value: Value,
    ) -> Result<(), SimError> {
        let at = self.location(w, lane);
        let (mem, size) = match space {
            MemSpace::Global => {
                let size = self.global.len();
                (&mut self.global, size)
            }
            MemSpace::Local => {
                let t = &mut self.warps[w].threads[lane];
                let size = t.local.len();
                (&mut t.local, size)
            }
        };
        if addr < 0 || addr as usize >= size {
            return Err(SimError::MemoryFault { at, addr, size, space });
        }
        mem[addr as usize] = value;
        Ok(())
    }
}
