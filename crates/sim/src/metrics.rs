//! Execution metrics: SIMT efficiency, cycles, and instruction mix.
//!
//! SIMT efficiency follows the paper's (and nvprof's) definition: the
//! average fraction of active lanes per issued warp-instruction. A
//! per-region variant restricted to blocks tagged `roi` reports efficiency
//! inside the "Expensive()" code the transformations target.

use std::fmt;

/// Aggregated execution metrics for one launch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Total cycles until the last warp finished.
    pub cycles: u64,
    /// Warp-instruction issues.
    pub issues: u64,
    /// Sum over issues of active lanes, weighted by issue cost in cycles.
    ///
    /// Cost weighting compensates for the synthetic `work` instruction
    /// compressing many real instructions into one issue: a 40-cycle
    /// `work` counts like 40 single-cycle instructions would on hardware,
    /// which keeps the efficiency metric comparable to nvprof's
    /// per-instruction definition.
    pub active_lane_sum: u64,
    /// Sum over issues of issue cost (the denominator weight).
    pub issue_weight: u64,
    /// Cost-weighted issue weight inside region-of-interest blocks.
    pub roi_issues: u64,
    /// Cost-weighted active-lane sum inside region-of-interest blocks.
    pub roi_active_lane_sum: u64,
    /// Lane-issues spent blocked on a convergence barrier: on each issue,
    /// the number of lanes sitting in a waiting state is accumulated —
    /// an idle-bubble pressure indicator (how much of the warp the
    /// reconvergence policy keeps parked).
    pub stall_cycles: u64,
    /// Dynamic count of barrier operations executed (per-lane).
    pub barrier_ops: u64,
    /// Cache-line hits (when the cache cost model is enabled; with a
    /// memory hierarchy configured, mirrors the L1 level's hits).
    pub cache_hits: u64,
    /// Cache-line misses (when the cache cost model is enabled; with a
    /// memory hierarchy configured, mirrors the L1 level's misses).
    pub cache_misses: u64,
    /// Per-level memory-hierarchy counters (hits, misses, MSHR merges
    /// and stall cycles per cache level, plus DRAM traffic). All zero
    /// unless [`SimConfig::mem`](crate::config::SimConfig::mem) is set.
    pub mem: crate::mem::MemStats,
    /// Hardware-reconvergence counters (IPDOM stack activity, warp
    /// splits and re-fusions). All zero under the default
    /// [`ReconvergenceModel::BarrierFile`](crate::config::ReconvergenceModel::BarrierFile).
    pub recon: crate::recon::ReconStats,
    /// Dynamic count of all lane-instructions executed.
    pub lane_insts: u64,
    /// Per-warp (cost-weighted issues, cost-weighted active-lane sum).
    pub per_warp: Vec<(u64, u64)>,
    /// Lanes per warp this launch used.
    pub warp_width: usize,
}

impl Metrics {
    /// Creates zeroed metrics for the given shape.
    pub fn new(num_warps: usize, warp_width: usize) -> Self {
        Self { per_warp: vec![(0, 0); num_warps], warp_width, ..Self::default() }
    }

    /// Overall SIMT efficiency in `[0, 1]` (cost-weighted average fraction
    /// of active lanes per issued warp-instruction).
    pub fn simt_efficiency(&self) -> f64 {
        if self.issue_weight == 0 {
            return 1.0;
        }
        self.active_lane_sum as f64 / (self.issue_weight as f64 * self.warp_width as f64)
    }

    /// SIMT efficiency restricted to region-of-interest blocks.
    pub fn roi_simt_efficiency(&self) -> f64 {
        if self.roi_issues == 0 {
            return 1.0;
        }
        self.roi_active_lane_sum as f64 / (self.roi_issues as f64 * self.warp_width as f64)
    }

    /// Records one warp-instruction issue from its active-lane mask.
    ///
    /// This is the hot-loop accounting path: everything derives from
    /// `mask.count_ones()` so the executor never materialises a lane
    /// list just to count it. `waiting_lanes` is the number of lanes
    /// parked on a convergence barrier at issue time (the stall-bubble
    /// indicator), captured by the caller *before* executing the
    /// instruction to match the reference engine's sampling point.
    #[inline]
    pub(crate) fn record_issue(
        &mut self,
        warp: usize,
        mask: u64,
        cost: u32,
        roi: bool,
        waiting_lanes: u32,
    ) {
        let active = u64::from(mask.count_ones());
        let cost = u64::from(cost);
        self.issues += 1;
        self.issue_weight += cost;
        self.active_lane_sum += active * cost;
        self.lane_insts += active;
        self.stall_cycles += u64::from(waiting_lanes);
        if roi {
            self.roi_issues += cost;
            self.roi_active_lane_sum += active * cost;
        }
        let pw = &mut self.per_warp[warp];
        pw.0 += cost;
        pw.1 += active * cost;
    }

    /// SIMT efficiency of one warp.
    ///
    /// # Panics
    ///
    /// Panics if `warp` is out of range.
    pub fn warp_simt_efficiency(&self, warp: usize) -> f64 {
        let (issues, active) = self.per_warp[warp];
        if issues == 0 {
            return 1.0;
        }
        active as f64 / (issues as f64 * self.warp_width as f64)
    }

    /// Cost-weighted lane-cycles lost to divergence: the gap between a
    /// fully-converged run of the same issues and what actually executed.
    /// The absolute quantity the efficiency ratio hides — attribution
    /// reports rank by it.
    pub fn lost_lane_weight(&self) -> u64 {
        (self.issue_weight * self.warp_width as u64).saturating_sub(self.active_lane_sum)
    }

    /// Per-warp [`lost_lane_weight`](Self::lost_lane_weight).
    ///
    /// # Panics
    ///
    /// Panics if `warp` is out of range.
    pub fn warp_lost_lane_weight(&self, warp: usize) -> u64 {
        let (issues, active) = self.per_warp[warp];
        (issues * self.warp_width as u64).saturating_sub(active)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles:           {}", self.cycles)?;
        writeln!(f, "issues:           {}", self.issues)?;
        writeln!(f, "lane insts:       {}", self.lane_insts)?;
        writeln!(f, "SIMT efficiency:  {:.1}%", self.simt_efficiency() * 100.0)?;
        writeln!(f, "ROI efficiency:   {:.1}%", self.roi_simt_efficiency() * 100.0)?;
        writeln!(f, "stall cycles:     {}", self.stall_cycles)?;
        write!(f, "barrier ops:      {}", self.barrier_ops)?;
        if !self.mem.is_zero() {
            for (i, l) in self.mem.levels.iter().enumerate() {
                if *l == crate::mem::MemLevelStats::default() {
                    continue;
                }
                write!(
                    f,
                    "\nL{}:               {} hits, {} misses, {} mshr merges, {} mshr stall cycles",
                    i + 1,
                    l.hits,
                    l.misses,
                    l.mshr_merges,
                    l.mshr_stall_cycles
                )?;
            }
            write!(
                f,
                "\nDRAM:             {} accesses, {} segments",
                self.mem.dram_accesses, self.mem.dram_segments
            )?;
        }
        if !self.recon.is_zero() {
            let r = &self.recon;
            if r.stack_pushes != 0 || r.stack_pops != 0 || r.stack_max_depth != 0 {
                write!(
                    f,
                    "\nipdom stack:      {} pushes, {} pops, max depth {}",
                    r.stack_pushes, r.stack_pops, r.stack_max_depth
                )?;
            }
            if r.splits != 0 || r.fusions != 0 || r.deferrals != 0 {
                write!(
                    f,
                    "\nwarp splits:      {} splits, {} fusions, {} deferrals",
                    r.splits, r.fusions, r.deferrals
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_math() {
        let mut m = Metrics::new(1, 32);
        m.issues = 10;
        m.issue_weight = 10;
        m.active_lane_sum = 160; // half the lanes on average
        assert!((m.simt_efficiency() - 0.5).abs() < 1e-12);
        assert_eq!(m.roi_simt_efficiency(), 1.0); // no roi issues recorded
    }

    #[test]
    fn zero_issues_is_full_efficiency() {
        let m = Metrics::new(1, 32);
        assert_eq!(m.simt_efficiency(), 1.0);
    }

    #[test]
    fn per_warp_efficiency() {
        let mut m = Metrics::new(2, 32);
        m.per_warp[0] = (4, 128);
        m.per_warp[1] = (4, 64);
        assert!((m.warp_simt_efficiency(0) - 1.0).abs() < 1e-12);
        assert!((m.warp_simt_efficiency(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lost_lane_weight_is_the_efficiency_gap() {
        let mut m = Metrics::new(2, 32);
        m.issue_weight = 8;
        m.active_lane_sum = 192;
        m.per_warp[0] = (4, 128);
        m.per_warp[1] = (4, 64);
        assert_eq!(m.lost_lane_weight(), 8 * 32 - 192);
        assert_eq!(m.warp_lost_lane_weight(0), 0);
        assert_eq!(m.warp_lost_lane_weight(1), 64);
    }

    #[test]
    fn display_mentions_efficiency() {
        let m = Metrics::new(1, 32);
        assert!(m.to_string().contains("SIMT efficiency"));
    }
}
