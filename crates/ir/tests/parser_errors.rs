//! Negative parser coverage: every class of malformed input is rejected
//! with a line-numbered, human-readable diagnostic (never a panic).

use simt_ir::{parse_and_link, parse_module};

fn wrap(body: &str) -> String {
    format!("kernel @k(params=0, regs=4, barriers=2, entry=bb0) {{\nbb0:\n{body}\n  exit\n}}\n")
}

fn expect_err(src: &str, needle: &str) {
    let err = parse_module(src).unwrap_err();
    assert!(
        err.message.contains(needle),
        "expected error containing {needle:?}, got line {}: {}",
        err.line,
        err.message
    );
}

#[test]
fn unknown_instruction() {
    expect_err(&wrap("  %r0 = frobnicate 1"), "unknown instruction");
}

#[test]
fn unknown_special_and_rng_kinds() {
    expect_err(&wrap("  %r0 = special.blockid"), "unknown special value");
    expect_err(&wrap("  %r0 = rng.gauss"), "unknown rng kind");
}

#[test]
fn unknown_memory_space() {
    expect_err(&wrap("  %r0 = load shared[0]"), "unknown memory space");
}

#[test]
fn malformed_register_and_barrier() {
    expect_err(&wrap("  %rx = mov 1"), "expected register number");
    expect_err(&wrap("  join q0"), "expected b<N>");
}

#[test]
fn bad_block_references() {
    expect_err(
        "kernel @k(params=0, regs=0, barriers=0, entry=bb0) {\nbb0:\n  jmp nowhere\n}\n",
        "expected bb<N>",
    );
}

#[test]
fn negative_work_rejected() {
    expect_err(&wrap("  work -3"), "non-negative");
}

#[test]
fn missing_header_fields() {
    expect_err(
        "kernel @k(params=0, regs=0, entry=bb0) {\nbb0:\n  exit\n}\n",
        "expected `barriers`",
    );
}

#[test]
fn wrong_function_keyword() {
    expect_err(
        "global @k(params=0, regs=0, barriers=0, entry=bb0) {\nbb0:\n  exit\n}\n",
        "expected `kernel` or `device`",
    );
}

#[test]
fn truncated_input() {
    let err =
        parse_module("kernel @k(params=0, regs=0, barriers=0, entry=bb0) {\nbb0:\n").unwrap_err();
    assert!(err.message.contains("unexpected end of input"));
}

#[test]
fn stray_characters() {
    expect_err(&wrap("  %r0 = mov $5"), "unexpected character");
    expect_err(&wrap("  %r0 = mov - 5"), "stray `-`");
}

#[test]
fn unknown_block_attribute() {
    expect_err(
        "kernel @k(params=0, regs=0, barriers=0, entry=bb0) {\nbb0 (hot):\n  exit\n}\n",
        "unknown block attribute",
    );
}

#[test]
fn undefined_entry_block() {
    expect_err(
        "kernel @k(params=0, regs=0, barriers=0, entry=bb7) {\nbb0:\n  exit\n}\n",
        "entry bb7 undefined",
    );
}

#[test]
fn bad_predict_targets() {
    expect_err(
        "kernel @k(params=0, regs=0, barriers=0, entry=bb0) {\n  predict bb0 -> block L1\nbb0:\n  exit\n}\n",
        "expected `label` or `func`",
    );
}

#[test]
fn error_line_numbers_point_at_the_problem() {
    let src = "kernel @k(params=0, regs=2, barriers=0, entry=bb0) {\nbb0:\n  %r0 = mov 1\n  %r1 = bogus 2\n  exit\n}\n";
    let err = parse_module(src).unwrap_err();
    assert_eq!(err.line, 4);
}

#[test]
fn linking_error_names_the_callee() {
    let src = "kernel @k(params=0, regs=1, barriers=0, entry=bb0) {\nbb0:\n  call @missing()\n  exit\n}\n";
    let err = parse_and_link(src).unwrap_err();
    assert!(err.message.contains("@missing"));
}

#[test]
fn display_of_errors_is_prefixed() {
    let err = parse_module("junk").unwrap_err();
    let msg = err.to_string();
    assert!(msg.starts_with("parse error at line 1"), "{msg}");
}

#[test]
fn comments_and_blank_lines_are_ignored() {
    let src = "\n; leading comment\nkernel @k(params=0, regs=1, barriers=0, entry=bb0) {\n\n; another\nbb0:\n  nop ; trailing\n  exit\n}\n";
    let m = parse_module(src).unwrap();
    assert_eq!(m.functions.len(), 1);
}
