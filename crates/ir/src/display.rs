//! Textual form of the IR (printer half).
//!
//! The textual syntax round-trips through [`crate::parse::parse_module`];
//! see that module for the grammar. `Display` for [`Module`] and
//! [`Function`] produce it.

use crate::function::{Function, Module, PredictTarget};
use crate::inst::{BarrierOp, Inst, Terminator};
use crate::Value;
use std::fmt::{self, Write as _};

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (_, func)) in self.functions.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} @{}(params={}, regs={}, barriers={}, entry=bb{}) {{",
            self.kind,
            self.name,
            self.num_params,
            self.num_regs,
            self.num_barriers,
            self.entry.index()
        )?;
        for p in &self.predictions {
            match &p.target {
                PredictTarget::Label(l) => {
                    write!(f, "  predict bb{} -> label {}", p.region_start.index(), l)?;
                }
                PredictTarget::Function(fr) => {
                    write!(f, "  predict bb{} -> func {}", p.region_start.index(), fr)?;
                }
            }
            match p.threshold {
                Some(t) => writeln!(f, " threshold={t}")?,
                None => writeln!(f)?,
            }
        }
        for (id, block) in self.blocks.iter() {
            let mut attrs = String::new();
            if let Some(l) = &block.label {
                let _ = write!(attrs, "label={l}");
            }
            if block.roi {
                if !attrs.is_empty() {
                    attrs.push_str(", ");
                }
                attrs.push_str("roi");
            }
            if attrs.is_empty() {
                writeln!(f, "bb{}:", id.index())?;
            } else {
                writeln!(f, "bb{} ({attrs}):", id.index())?;
            }
            for inst in &block.insts {
                writeln!(f, "  {}", DisplayInst(inst))?;
            }
            writeln!(f, "  {}", DisplayTerm(&block.term))?;
        }
        writeln!(f, "}}")
    }
}

/// Wrapper displaying a single instruction in the textual syntax.
pub struct DisplayInst<'a>(pub &'a Inst);

impl fmt::Display for DisplayInst<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Inst::Bin { op, dst, lhs, rhs } => write!(f, "{dst} = {} {lhs}, {rhs}", op.mnemonic()),
            Inst::Un { op, dst, src } => write!(f, "{dst} = {} {src}", op.mnemonic()),
            Inst::Mov { dst, src } => write!(f, "{dst} = mov {src}"),
            Inst::Sel { dst, cond, if_true, if_false } => {
                write!(f, "{dst} = sel {cond}, {if_true}, {if_false}")
            }
            Inst::Load { dst, space, addr } => {
                write!(f, "{dst} = load {}[{addr}]", space.keyword())
            }
            Inst::Store { space, addr, value } => {
                write!(f, "store {}[{addr}], {value}", space.keyword())
            }
            Inst::AtomicAdd { dst, addr, value } => {
                write!(f, "{dst} = atomic_add [{addr}], {value}")
            }
            Inst::Special { dst, kind } => write!(f, "{dst} = special.{}", kind.mnemonic()),
            Inst::Rng { dst, kind } => write!(f, "{dst} = rng.{}", kind.mnemonic()),
            Inst::SeedRng { src } => write!(f, "rngseed {src}"),
            Inst::Vote { dst, pred } => write!(f, "{dst} = vote {pred}"),
            Inst::SyncThreads => write!(f, "syncthreads"),
            Inst::Call { func, args, rets } => {
                write!(f, "call {func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
                if !rets.is_empty() {
                    write!(f, " -> (")?;
                    for (i, r) in rets.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{r}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Inst::Barrier(op) => write!(f, "{}", DisplayBarrier(op)),
            Inst::Work { amount } => write!(f, "work {amount}"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

/// Wrapper displaying a barrier operation.
pub struct DisplayBarrier<'a>(pub &'a BarrierOp);

impl fmt::Display for DisplayBarrier<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            BarrierOp::Join(b) => write!(f, "join {b}"),
            BarrierOp::Wait(b) => write!(f, "wait {b}"),
            BarrierOp::Cancel(b) => write!(f, "cancel {b}"),
            BarrierOp::Rejoin(b) => write!(f, "rejoin {b}"),
            BarrierOp::Copy { dst, src } => write!(f, "bcopy {dst}, {src}"),
            BarrierOp::ArrivedCount { dst, bar } => write!(f, "{dst} = arrived {bar}"),
        }
    }
}

/// Wrapper displaying a terminator.
pub struct DisplayTerm<'a>(pub &'a Terminator);

impl fmt::Display for DisplayTerm<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Terminator::Jump(b) => write!(f, "jmp bb{}", b.index()),
            Terminator::Branch { cond, then_bb, else_bb, divergent } => {
                let op = if *divergent { "brdiv" } else { "br" };
                write!(f, "{op} {cond}, bb{}, bb{}", then_bb.index(), else_bb.index())
            }
            Terminator::Return(values) => {
                write!(f, "ret")?;
                for (i, v) in values.iter().enumerate() {
                    if i == 0 {
                        write!(f, " {v}")?;
                    } else {
                        write!(f, ", {v}")?;
                    }
                }
                Ok(())
            }
            Terminator::Exit => write!(f, "exit"),
        }
    }
}

/// Formats a [`Value`] as an immediate in the textual syntax (floats carry
/// an `f` suffix so the parser can distinguish them).
pub fn display_imm(v: Value) -> String {
    match v {
        Value::I64(i) => i.to_string(),
        Value::F64(x) => format!("{x:?}f"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::FuncKind;
    use crate::inst::{BinOp, Operand};

    #[test]
    fn prints_simple_function() {
        let mut b = FunctionBuilder::new("k", FuncKind::Kernel, 1);
        let p = b.param(0);
        let x = b.bin(BinOp::Add, p, 1i64);
        b.store_global(x, 0i64);
        b.exit();
        let f = b.finish();
        let text = f.to_string();
        assert!(text.contains("kernel @k(params=1, regs=2, barriers=0, entry=bb0) {"));
        assert!(text.contains("%r1 = add %r0, 1"));
        assert!(text.contains("store global[0], %r1"));
        assert!(text.contains("exit"));
    }

    #[test]
    fn prints_float_immediates_with_suffix() {
        let op = Operand::imm_f64(0.5);
        assert_eq!(op.to_string(), "0.5f");
    }

    #[test]
    fn prints_barrier_ops() {
        use crate::ids::{BarrierId, Reg};
        assert_eq!(DisplayBarrier(&BarrierOp::Join(BarrierId(0))).to_string(), "join b0");
        assert_eq!(
            DisplayBarrier(&BarrierOp::Copy { dst: BarrierId(1), src: BarrierId(0) }).to_string(),
            "bcopy b1, b0"
        );
        assert_eq!(
            DisplayBarrier(&BarrierOp::ArrivedCount { dst: Reg(3), bar: BarrierId(2) }).to_string(),
            "%r3 = arrived b2"
        );
    }
}
