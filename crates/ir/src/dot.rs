//! Graphviz DOT rendering of function CFGs — developer tooling for
//! inspecting what the passes did (`specrecon dot FILE | dot -Tsvg ...`).

use crate::display::{DisplayInst, DisplayTerm};
use crate::function::{Function, Module};
use crate::inst::Terminator;
use std::fmt::Write as _;

/// Renders one function as a DOT digraph.
///
/// Blocks become record-shaped nodes listing their instructions; the
/// region-of-interest blocks are shaded; branch edges are labelled
/// `T`/`F`, with divergent branches drawn dashed.
pub fn function_to_dot(func: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", func.name);
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\", fontsize=10];");
    let _ = writeln!(out, "  labelloc=t; label=\"@{}\";", func.name);

    for (id, block) in func.blocks.iter() {
        let mut body = String::new();
        if let Some(l) = &block.label {
            let _ = write!(body, "{id} ({l})\\l");
        } else {
            let _ = write!(body, "{id}\\l");
        }
        for inst in &block.insts {
            let _ = write!(body, "  {}\\l", escape(&DisplayInst(inst).to_string()));
        }
        let _ = write!(body, "  {}\\l", escape(&DisplayTerm(&block.term).to_string()));
        let style = if block.roi {
            ", style=filled, fillcolor=\"#ffe0b0\""
        } else if id == func.entry {
            ", style=filled, fillcolor=\"#d0e8ff\""
        } else {
            ""
        };
        let _ = writeln!(out, "  \"{id}\" [label=\"{body}\"{style}];");
    }

    for (id, block) in func.blocks.iter() {
        match &block.term {
            Terminator::Jump(t) => {
                let _ = writeln!(out, "  \"{id}\" -> \"{t}\";");
            }
            Terminator::Branch { then_bb, else_bb, divergent, .. } => {
                let style = if *divergent { ", style=dashed" } else { "" };
                let _ = writeln!(out, "  \"{id}\" -> \"{then_bb}\" [label=\"T\"{style}];");
                let _ = writeln!(out, "  \"{id}\" -> \"{else_bb}\" [label=\"F\"{style}];");
            }
            Terminator::Return(_) | Terminator::Exit => {}
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders every function of a module as separate digraphs.
pub fn module_to_dot(module: &Module) -> String {
    module.functions.iter().map(|(_, f)| function_to_dot(f)).collect()
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('<', "\\<").replace('>', "\\>")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    #[test]
    fn renders_nodes_edges_and_styles() {
        let src = "kernel @k(params=0, regs=2, barriers=0, entry=bb0) {\n\
             bb0:\n  %r0 = special.lane\n  %r1 = and %r0, 1\n  brdiv %r1, bb1, bb2\n\
             bb1 (label=hot, roi):\n  work 9\n  jmp bb2\n\
             bb2:\n  exit\n}\n";
        let m = parse_module(src).unwrap();
        let f = m.functions.iter().next().unwrap().1;
        let dot = function_to_dot(f);
        assert!(dot.starts_with("digraph \"k\""));
        assert!(dot.contains("\"bb0\" -> \"bb1\" [label=\"T\", style=dashed];"));
        assert!(dot.contains("fillcolor=\"#ffe0b0\""), "roi block shaded");
        assert!(dot.contains("fillcolor=\"#d0e8ff\""), "entry block shaded");
        assert!(dot.contains("bb1 (hot)"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn module_renders_all_functions() {
        let src = "kernel @k(params=0, regs=1, barriers=0, entry=bb0) {\nbb0:\n  exit\n}\n\
                   device @f(params=0, regs=1, barriers=0, entry=bb0) {\nbb0:\n  ret\n}\n";
        let m = parse_module(src).unwrap();
        let dot = module_to_dot(&m);
        assert!(dot.contains("digraph \"k\""));
        assert!(dot.contains("digraph \"f\""));
    }
}
