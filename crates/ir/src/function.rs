//! Functions, basic blocks, modules, and the reconvergence-prediction
//! annotations of §4.1 of the paper.

use crate::ids::{BarrierId, BlockId, FuncId, IdVec, Reg};
use crate::inst::{FuncRef, Inst, Terminator};
use std::collections::HashMap;
use std::fmt;

/// A basic block: a label, a straight-line instruction list, and a
/// terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Optional source-level label (used by the textual IR and by
    /// predictions to name reconvergence points).
    pub label: Option<String>,
    /// Non-terminator instructions, in order.
    pub insts: Vec<Inst>,
    /// The block terminator.
    pub term: Terminator,
    /// Whether this block is a region-of-interest for per-region SIMT
    /// efficiency accounting (the "Expensive()" code of the paper's
    /// examples). Set by workloads; read by the simulator's metrics.
    pub roi: bool,
}

impl Block {
    /// Creates an empty block ending in `Exit` (callers typically replace
    /// the terminator).
    pub fn new(label: Option<String>) -> Self {
        Self { label, insts: Vec::new(), term: Terminator::Exit, roi: false }
    }
}

/// What a prediction names as its reconvergence point.
#[derive(Clone, Debug, PartialEq)]
pub enum PredictTarget {
    /// A labelled block within the same function (Listing 1: `Predict(L1)`).
    Label(String),
    /// The entry of a function — the interprocedural variant of §4.4
    /// (`Predict(foo)`).
    Function(FuncRef),
}

/// A user- or tool-supplied reconvergence prediction (§4.1).
///
/// The *prediction region* starts at [`Prediction::region_start`] and
/// extends as far as threads can still reach the target; the compiler
/// derives the region's extent itself. The optional
/// [`Prediction::threshold`] selects the soft-barrier variant of §4.6.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// Block containing the `Predict(...)` directive; the region start.
    pub region_start: BlockId,
    /// The predicted reconvergence point.
    pub target: PredictTarget,
    /// If set, lower to a soft barrier that releases once this many
    /// threads have arrived (0 and 1 behave like no waiting; the warp
    /// width behaves like a full barrier).
    pub threshold: Option<u32>,
}

/// Whether a function is a kernel entry point or a device subroutine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuncKind {
    /// Launchable kernel. Takes its arguments from launch parameters.
    Kernel,
    /// Device function callable from kernels or other device functions.
    Device,
}

/// A function: a CFG of [`Block`]s plus register/barrier frames and any
/// reconvergence predictions attached to it.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name (unique within a module).
    pub name: String,
    /// Kernel or device function.
    pub kind: FuncKind,
    /// Number of parameters; parameters occupy registers `0..num_params`.
    pub num_params: usize,
    /// Size of the per-thread register frame.
    pub num_regs: usize,
    /// Number of barrier registers used by this function.
    pub num_barriers: usize,
    /// Basic blocks. The entry block is [`Function::entry`].
    pub blocks: IdVec<BlockId, Block>,
    /// Entry block id.
    pub entry: BlockId,
    /// Reconvergence predictions (§4.1) attached to this function.
    pub predictions: Vec<Prediction>,
}

impl Function {
    /// Creates a function with a single empty entry block.
    pub fn new(name: impl Into<String>, kind: FuncKind, num_params: usize) -> Self {
        let mut blocks = IdVec::new();
        let entry = blocks.push(Block::new(Some("entry".to_string())));
        Self {
            name: name.into(),
            kind,
            num_params,
            num_regs: num_params,
            num_barriers: 0,
            blocks,
            entry,
            predictions: Vec::new(),
        }
    }

    /// Allocates a fresh virtual register.
    pub fn alloc_reg(&mut self) -> Reg {
        let r = Reg::new(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// Allocates a fresh barrier register.
    pub fn alloc_barrier(&mut self) -> BarrierId {
        let b = BarrierId::new(self.num_barriers);
        self.num_barriers += 1;
        b
    }

    /// Appends a new empty block (terminator `Exit`) and returns its id.
    pub fn add_block(&mut self, label: Option<String>) -> BlockId {
        self.blocks.push(Block::new(label))
    }

    /// Finds the block with the given label.
    pub fn block_by_label(&self, label: &str) -> Option<BlockId> {
        self.blocks.iter().find(|(_, b)| b.label.as_deref() == Some(label)).map(|(id, _)| id)
    }

    /// Successors of a block.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        self.blocks[b].term.successors()
    }

    /// Computes the predecessor lists for every block.
    pub fn predecessors(&self) -> IdVec<BlockId, Vec<BlockId>> {
        let mut preds: IdVec<BlockId, Vec<BlockId>> = IdVec::with_capacity(self.blocks.len());
        for _ in 0..self.blocks.len() {
            preds.push(Vec::new());
        }
        for (id, block) in self.blocks.iter() {
            for succ in block.term.successors() {
                preds[succ].push(id);
            }
        }
        preds
    }

    /// Blocks in reverse post-order from the entry (a forward-analysis
    /// friendly iteration order). Unreachable blocks are appended at the
    /// end in id order so every block is visited exactly once.
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS computing post-order.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = self.successors(b);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        for id in self.blocks.ids() {
            if !visited[id.index()] {
                post.push(id);
            }
        }
        post
    }

    /// Splits the edge `from -> to`, inserting a fresh empty block on it,
    /// and returns the new block's id.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a successor of `from`.
    pub fn split_edge(&mut self, from: BlockId, to: BlockId) -> BlockId {
        assert!(
            self.successors(from).contains(&to),
            "split_edge: {to} is not a successor of {from}"
        );
        let mid = self.add_block(None);
        self.blocks[mid].term = Terminator::Jump(to);
        self.blocks[from].term.map_successors(|s| if s == to { mid } else { s });
        mid
    }

    /// Total number of non-terminator instructions across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|(_, b)| b.insts.len()).sum()
    }

    /// Replaces the bodies of blocks unreachable from the entry with a
    /// bare `exit` and strips their labels, so they cannot confuse later
    /// passes or readers. Block ids are preserved (the table stays dense,
    /// so no references need rewriting). Returns the ids that were
    /// cleared.
    pub fn clear_unreachable_blocks(&mut self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut reachable = vec![false; n];
        let mut stack = vec![self.entry];
        reachable[self.entry.index()] = true;
        while let Some(b) = stack.pop() {
            for s in self.successors(b) {
                if !reachable[s.index()] {
                    reachable[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        let mut cleared = Vec::new();
        for id in self.blocks.ids().collect::<Vec<BlockId>>() {
            if !reachable[id.index()] {
                let block = &mut self.blocks[id];
                if !block.insts.is_empty()
                    || block.term != Terminator::Exit
                    || block.label.is_some()
                {
                    block.insts.clear();
                    block.term = Terminator::Exit;
                    block.label = None;
                    block.roi = false;
                    cleared.push(id);
                }
            }
        }
        cleared
    }
}

/// A module: a set of functions with unique names.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Module {
    /// Functions in definition order.
    pub functions: IdVec<FuncId, Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a function, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name already exists.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        assert!(self.function_by_name(&f.name).is_none(), "duplicate function name {:?}", f.name);
        self.functions.push(f)
    }

    /// Looks up a function id by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions.iter().find(|(_, f)| f.name == name).map(|(id, _)| id)
    }

    /// Resolves every by-name [`FuncRef`] (in call instructions and in
    /// interprocedural predictions) into an id reference.
    ///
    /// # Errors
    ///
    /// Returns the unresolved name if any reference does not match a
    /// function in the module.
    pub fn resolve_calls(&mut self) -> Result<(), String> {
        let names: HashMap<String, FuncId> =
            self.functions.iter().map(|(id, f)| (f.name.clone(), id)).collect();
        let resolve = |fr: &mut FuncRef| -> Result<(), String> {
            if let FuncRef::Name(n) = fr {
                match names.get(n.as_str()) {
                    Some(id) => *fr = FuncRef::Id(*id),
                    None => return Err(n.clone()),
                }
            }
            Ok(())
        };
        for (_, f) in self.functions.iter_mut() {
            for (_, block) in f.blocks.iter_mut() {
                for inst in &mut block.insts {
                    if let Inst::Call { func, .. } = inst {
                        resolve(func)?;
                    }
                }
            }
            for p in &mut f.predictions {
                if let PredictTarget::Function(fr) = &mut p.target {
                    resolve(fr)?;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for FuncKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuncKind::Kernel => write!(f, "kernel"),
            FuncKind::Device => write!(f, "device"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Operand;

    fn diamond() -> Function {
        // entry -> (a | b) -> join -> exit
        let mut f = Function::new("diamond", FuncKind::Kernel, 0);
        let a = f.add_block(Some("a".into()));
        let b = f.add_block(Some("b".into()));
        let join = f.add_block(Some("join".into()));
        f.blocks[f.entry].term = Terminator::Branch {
            cond: Operand::imm_i64(1),
            then_bb: a,
            else_bb: b,
            divergent: true,
        };
        f.blocks[a].term = Terminator::Jump(join);
        f.blocks[b].term = Terminator::Jump(join);
        f.blocks[join].term = Terminator::Exit;
        f
    }

    #[test]
    fn predecessors_of_diamond() {
        let f = diamond();
        let preds = f.predecessors();
        let join = f.block_by_label("join").unwrap();
        let mut p = preds[join].clone();
        p.sort();
        assert_eq!(p, vec![BlockId(1), BlockId(2)]);
        assert!(preds[f.entry].is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_visits_all() {
        let f = diamond();
        let rpo = f.reverse_post_order();
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), f.blocks.len());
        // join must come after both a and b
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        let join = f.block_by_label("join").unwrap();
        assert!(pos(join) > pos(BlockId(1)));
        assert!(pos(join) > pos(BlockId(2)));
    }

    #[test]
    fn split_edge_inserts_block() {
        let mut f = diamond();
        let a = f.block_by_label("a").unwrap();
        let join = f.block_by_label("join").unwrap();
        let mid = f.split_edge(a, join);
        assert_eq!(f.successors(a), vec![mid]);
        assert_eq!(f.successors(mid), vec![join]);
    }

    #[test]
    #[should_panic(expected = "not a successor")]
    fn split_nonexistent_edge_panics() {
        let mut f = diamond();
        let a = f.block_by_label("a").unwrap();
        let b = f.block_by_label("b").unwrap();
        f.split_edge(a, b);
    }

    #[test]
    fn resolve_calls_by_name() {
        let mut m = Module::new();
        let mut caller = Function::new("caller", FuncKind::Kernel, 0);
        caller.blocks[caller.entry].insts.push(Inst::Call {
            func: FuncRef::Name("callee".into()),
            args: vec![],
            rets: vec![],
        });
        m.add_function(caller);
        m.add_function(Function::new("callee", FuncKind::Device, 0));
        m.resolve_calls().unwrap();
        let caller_id = m.function_by_name("caller").unwrap();
        let f = &m.functions[caller_id];
        match &f.blocks[f.entry].insts[0] {
            Inst::Call { func: FuncRef::Id(id), .. } => {
                assert_eq!(*id, m.function_by_name("callee").unwrap());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn resolve_calls_reports_missing() {
        let mut m = Module::new();
        let mut caller = Function::new("caller", FuncKind::Kernel, 0);
        caller.blocks[caller.entry].insts.push(Inst::Call {
            func: FuncRef::Name("ghost".into()),
            args: vec![],
            rets: vec![],
        });
        m.add_function(caller);
        assert_eq!(m.resolve_calls(), Err("ghost".to_string()));
    }

    #[test]
    fn clear_unreachable_blocks_keeps_reachable() {
        let mut f = diamond();
        // Add a detached block with content.
        let dead = f.add_block(Some("dead".into()));
        f.blocks[dead].insts.push(Inst::Nop);
        f.blocks[dead].roi = true;
        let cleared = f.clear_unreachable_blocks();
        assert_eq!(cleared, vec![dead]);
        assert!(f.blocks[dead].insts.is_empty());
        assert_eq!(f.blocks[dead].label, None);
        assert!(!f.blocks[dead].roi);
        // Reachable blocks untouched; re-running is a no-op.
        assert!(f.block_by_label("join").is_some());
        assert!(f.clear_unreachable_blocks().is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_function_names_rejected() {
        let mut m = Module::new();
        m.add_function(Function::new("f", FuncKind::Kernel, 0));
        m.add_function(Function::new("f", FuncKind::Kernel, 0));
    }
}
