//! Instruction set of the kernel IR.
//!
//! The instruction set is deliberately small — just enough to express the
//! divergent Monte-Carlo-style kernels the paper evaluates — but it includes
//! first-class *convergence barrier* operations ([`BarrierOp`]) modelling
//! Volta's `BSSY` / `BSYNC` / `BREAK` instructions (Table 1 of the paper),
//! which is what the Speculative Reconvergence passes manipulate.

use crate::ids::{BarrierId, BlockId, FuncId, Reg};
use crate::value::Value;
use std::fmt;

/// An instruction operand: either a register or an immediate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Operand {
    /// Read a per-thread virtual register.
    Reg(Reg),
    /// An immediate value, identical across all threads.
    Imm(Value),
}

impl Operand {
    /// Convenience constructor for an integer immediate.
    pub fn imm_i64(v: i64) -> Operand {
        Operand::Imm(Value::I64(v))
    }

    /// Convenience constructor for a float immediate.
    pub fn imm_f64(v: f64) -> Operand {
        Operand::Imm(Value::F64(v))
    }

    /// Returns the register if this operand reads one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::imm_i64(v)
    }
}

impl From<f64> for Operand {
    fn from(v: f64) -> Self {
        Operand::imm_f64(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(Value::I64(v)) => write!(f, "{v}"),
            Operand::Imm(Value::F64(v)) => write!(f, "{v:?}f"),
        }
    }
}

/// Binary ALU operations.
///
/// Operations are polymorphic over [`Value`]: integer inputs use wrapping
/// integer semantics, and if either input is a float the operation is
/// performed in `f64`. Comparisons always produce an integer 0/1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division. Integer division by zero is a simulator fault.
    Div,
    /// Remainder. Integer remainder by zero is a simulator fault.
    Rem,
    /// Bitwise and (integer only).
    And,
    /// Bitwise or (integer only).
    Or,
    /// Bitwise xor (integer only).
    Xor,
    /// Left shift (integer only, modulo 64).
    Shl,
    /// Logical right shift (integer only, modulo 64).
    Shr,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Equality comparison, producing 0/1.
    Eq,
    /// Inequality comparison, producing 0/1.
    Ne,
    /// Less-than comparison, producing 0/1.
    Lt,
    /// Less-or-equal comparison, producing 0/1.
    Le,
    /// Greater-than comparison, producing 0/1.
    Gt,
    /// Greater-or-equal comparison, producing 0/1.
    Ge,
}

impl BinOp {
    /// The mnemonic used in the textual IR.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::Gt => "gt",
            BinOp::Ge => "ge",
        }
    }

    /// All binary ops, in mnemonic order (useful for parsing and fuzzing).
    pub fn all() -> &'static [BinOp] {
        &[
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Min,
            BinOp::Max,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ]
    }
}

/// Unary ALU operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise not (integer only).
    Not,
    /// Arithmetic negation.
    Neg,
    /// Square root (float).
    Sqrt,
    /// Natural exponential (float).
    Exp,
    /// Natural logarithm (float).
    Log,
    /// Absolute value.
    Abs,
    /// Convert integer to float.
    ItoF,
    /// Convert float to integer (truncating).
    FtoI,
}

impl UnOp {
    /// The mnemonic used in the textual IR.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Not => "not",
            UnOp::Neg => "neg",
            UnOp::Sqrt => "sqrt",
            UnOp::Exp => "exp",
            UnOp::Log => "log",
            UnOp::Abs => "abs",
            UnOp::ItoF => "itof",
            UnOp::FtoI => "ftoi",
        }
    }

    /// All unary ops, in mnemonic order.
    pub fn all() -> &'static [UnOp] {
        &[UnOp::Not, UnOp::Neg, UnOp::Sqrt, UnOp::Exp, UnOp::Log, UnOp::Abs, UnOp::ItoF, UnOp::FtoI]
    }
}

/// Thread- or launch-varying special values readable by [`Inst::Special`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpecialValue {
    /// Global thread id across the launch.
    Tid,
    /// Lane index within the warp (0..warp_width).
    LaneId,
    /// Warp index within the launch.
    WarpId,
    /// Number of threads in the launch.
    NumThreads,
    /// Warp width (number of lanes per warp).
    WarpWidth,
}

impl SpecialValue {
    /// The mnemonic used in the textual IR (after the `special.` prefix).
    pub fn mnemonic(self) -> &'static str {
        match self {
            SpecialValue::Tid => "tid",
            SpecialValue::LaneId => "lane",
            SpecialValue::WarpId => "warp",
            SpecialValue::NumThreads => "nthreads",
            SpecialValue::WarpWidth => "warpwidth",
        }
    }
}

/// Kinds of values produced by the per-thread RNG intrinsic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RngKind {
    /// A uniformly distributed non-negative 63-bit integer.
    U63,
    /// A uniform float in `[0, 1)`.
    Unit,
}

impl RngKind {
    /// The mnemonic used in the textual IR (after the `rng.` prefix).
    pub fn mnemonic(self) -> &'static str {
        match self {
            RngKind::U63 => "u63",
            RngKind::Unit => "unit",
        }
    }
}

/// Memory spaces addressable by loads and stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Launch-wide memory shared by all threads; subject to the coalescing
    /// cost model.
    Global,
    /// Per-thread scratch memory; always "coalesced" (constant cost).
    Local,
}

impl MemSpace {
    /// The keyword used in the textual IR.
    pub fn keyword(self) -> &'static str {
        match self {
            MemSpace::Global => "global",
            MemSpace::Local => "local",
        }
    }
}

/// Convergence-barrier operations (Table 1 of the paper).
///
/// Barrier registers hold per-warp participation *masks*. These four
/// primitives plus the two mask-manipulation helpers are sufficient to
/// express PDOM reconvergence, Speculative Reconvergence, deconfliction and
/// the soft-barrier lowering of Figure 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BarrierOp {
    /// `JoinBarrier<b>`: the issuing thread adds itself to the barrier's
    /// participation mask (Volta `BSSY`).
    Join(BarrierId),
    /// `WaitBarrier<b>`: block until every live participant of `b` is
    /// blocked on `b`, then release them all together (Volta `BSYNC`).
    Wait(BarrierId),
    /// `CancelBarrier<b>`: the issuing thread removes itself from the
    /// barrier's participation mask (Volta `BREAK`).
    Cancel(BarrierId),
    /// `RejoinBarrier<b>`: re-enter a barrier previously cleared by a wait;
    /// semantically identical to [`BarrierOp::Join`] but kept distinct so
    /// the passes and tests can see which primitive placed it.
    Rejoin(BarrierId),
    /// Copy the participation mask of `src` into `dst` (used by the
    /// soft-barrier lowering, Figure 6 of the paper).
    Copy {
        /// Destination barrier register.
        dst: BarrierId,
        /// Source barrier register.
        src: BarrierId,
    },
    /// Write the number of current participants of `bar` into register
    /// `dst` (the `arrivedThreads` predicate of Figure 6).
    ArrivedCount {
        /// Destination register.
        dst: Reg,
        /// Barrier whose participant count is read.
        bar: BarrierId,
    },
}

impl BarrierOp {
    /// The barrier register this operation names, when it names exactly one.
    pub fn barrier(self) -> Option<BarrierId> {
        match self {
            BarrierOp::Join(b)
            | BarrierOp::Wait(b)
            | BarrierOp::Cancel(b)
            | BarrierOp::Rejoin(b)
            | BarrierOp::ArrivedCount { bar: b, .. } => Some(b),
            BarrierOp::Copy { .. } => None,
        }
    }

    /// Whether this operation adds the thread to a participation mask
    /// (Join or Rejoin — both lower to `BSSY`).
    pub fn is_join_like(self) -> bool {
        matches!(self, BarrierOp::Join(_) | BarrierOp::Rejoin(_))
    }
}

/// Reference to a function: either by id (resolved) or by name (pre-link).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum FuncRef {
    /// A resolved reference into the module's function table.
    Id(FuncId),
    /// An unresolved, by-name reference (produced by the parser; resolved
    /// by [`crate::Module::resolve_calls`]).
    Name(String),
}

impl fmt::Display for FuncRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Resolved references print as `@fn<N>` — a reserved name the
            // parser maps back to the id (user function names of that
            // shape are rejected by the verifier).
            FuncRef::Id(id) => write!(f, "@{id}"),
            FuncRef::Name(n) => write!(f, "@{n}"),
        }
    }
}

/// A non-terminator instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Inst {
    /// Binary ALU operation: `dst = op(lhs, rhs)`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Unary ALU operation: `dst = op(src)`.
    Un {
        /// Operation.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Register move / immediate materialization.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Select: `dst = cond ? if_true : if_false` (no divergence).
    Sel {
        /// Destination register.
        dst: Reg,
        /// Condition (non-zero selects `if_true`).
        cond: Operand,
        /// Value when the condition is true.
        if_true: Operand,
        /// Value when the condition is false.
        if_false: Operand,
    },
    /// Memory load: `dst = space[addr]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Memory space.
        space: MemSpace,
        /// Cell address.
        addr: Operand,
    },
    /// Memory store: `space[addr] = value`.
    Store {
        /// Memory space.
        space: MemSpace,
        /// Cell address.
        addr: Operand,
        /// Value to store.
        value: Operand,
    },
    /// Atomic fetch-add on global memory: `dst = old; [addr] += value`.
    /// This is the work-queue primitive used by thread coarsening.
    AtomicAdd {
        /// Receives the pre-add value.
        dst: Reg,
        /// Cell address (global space).
        addr: Operand,
        /// Addend.
        value: Operand,
    },
    /// Read a special value.
    Special {
        /// Destination register.
        dst: Reg,
        /// Which special value.
        kind: SpecialValue,
    },
    /// Advance the per-thread RNG and write a sample.
    Rng {
        /// Destination register.
        dst: Reg,
        /// Sample kind.
        kind: RngKind,
    },
    /// Re-seed the per-thread RNG from a value (counter-based streams:
    /// seeding with a task id makes a task's random sequence independent
    /// of which thread runs it — how production Monte Carlo kernels use
    /// Philox-style generators).
    SeedRng {
        /// Seed source.
        src: Operand,
    },
    /// CUDA's `__syncthreads`: a *correctness* barrier — every live
    /// thread of the warp must arrive before any proceeds (§2 of the
    /// paper contrasts these with convergence barriers, which are purely
    /// performance hints). Reaching it divergently (some threads on a
    /// path that never executes it) is a programming error and deadlocks,
    /// exactly as on hardware.
    SyncThreads,
    /// Warp-synchronous vote (CUDA's `__popc(__ballot_sync(...))`): every
    /// lane in the *currently converged group* receives the number of
    /// group lanes whose predicate is non-zero. The result depends on the
    /// convergence state, which is why §6 of the paper says such
    /// operations inhibit automatic Speculative Reconvergence — the
    /// detector refuses regions containing votes.
    Vote {
        /// Destination register (receives the count).
        dst: Reg,
        /// Per-lane predicate.
        pred: Operand,
    },
    /// Call a device function. Arguments are copied into the callee's
    /// parameter registers; on return, the callee's return operands are
    /// copied into `rets`.
    Call {
        /// Callee.
        func: FuncRef,
        /// Argument operands.
        args: Vec<Operand>,
        /// Registers receiving return values.
        rets: Vec<Reg>,
    },
    /// Convergence-barrier operation.
    Barrier(BarrierOp),
    /// Synthetic compute of the given cost in cycles — the `Expensive()`
    /// knob of the paper's motivating examples. Semantically a no-op.
    Work {
        /// Issue cost in cycles.
        amount: u32,
    },
    /// No operation (unit cost).
    Nop,
}

impl Inst {
    /// Destination register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::Sel { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::AtomicAdd { dst, .. }
            | Inst::Special { dst, .. }
            | Inst::Rng { dst, .. }
            | Inst::Vote { dst, .. }
            | Inst::Barrier(BarrierOp::ArrivedCount { dst, .. }) => Some(*dst),
            Inst::Call { .. }
            | Inst::Barrier(_)
            | Inst::Store { .. }
            | Inst::SeedRng { .. }
            | Inst::SyncThreads
            | Inst::Work { .. }
            | Inst::Nop => None,
        }
    }

    /// Operands read by this instruction.
    pub fn uses(&self) -> Vec<Operand> {
        match self {
            Inst::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Un { src, .. } | Inst::Mov { src, .. } | Inst::SeedRng { src } => vec![*src],
            Inst::Vote { pred, .. } => vec![*pred],
            Inst::Sel { cond, if_true, if_false, .. } => vec![*cond, *if_true, *if_false],
            Inst::Load { addr, .. } => vec![*addr],
            Inst::Store { addr, value, .. } => vec![*addr, *value],
            Inst::AtomicAdd { addr, value, .. } => vec![*addr, *value],
            Inst::Call { args, .. } => args.clone(),
            Inst::Special { .. }
            | Inst::Rng { .. }
            | Inst::Barrier(_)
            | Inst::SyncThreads
            | Inst::Work { .. }
            | Inst::Nop => Vec::new(),
        }
    }

    /// Whether this is a barrier operation.
    pub fn is_barrier(&self) -> bool {
        matches!(self, Inst::Barrier(_))
    }

    /// Whether this instruction's result or side effect depends on the
    /// warp's convergence state or on cross-lane execution order.
    ///
    /// Such instructions must never be moved into a melded (guarded)
    /// region: a [`Inst::Vote`] reads the converged-group mask, a
    /// [`Inst::SyncThreads`] / [`Inst::Barrier`] participates in the
    /// barrier protocol, and a [`Inst::Call`] or [`Inst::AtomicAdd`] has
    /// observable ordering the mask-predication would reshuffle. The
    /// melding pass refuses to align them, and the lint rejects modules
    /// where one ended up inside a `meld_*` block anyway.
    pub fn convergence_sensitive(&self) -> bool {
        matches!(
            self,
            Inst::Vote { .. }
                | Inst::SyncThreads
                | Inst::Barrier(_)
                | Inst::Call { .. }
                | Inst::AtomicAdd { .. }
        )
    }
}

/// Block terminators.
#[derive(Clone, Debug, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on a per-thread value.
    Branch {
        /// Condition operand (non-zero takes `then_bb`).
        cond: Operand,
        /// Target when the condition is non-zero.
        then_bb: BlockId,
        /// Target when the condition is zero.
        else_bb: BlockId,
        /// Hint that the condition is expected to vary across the lanes of
        /// a warp. Used by the PDOM pass and the §4.5 detector; has no
        /// execution semantics.
        divergent: bool,
    },
    /// Return from a device function with the given values.
    Return(Vec<Operand>),
    /// Terminate the thread (kernel exit). Releases the thread from all
    /// barriers, as Volta's `EXIT` does.
    Exit,
}

impl Terminator {
    /// Successor blocks of this terminator (empty for return/exit).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch { then_bb, else_bb, .. } => {
                if then_bb == else_bb {
                    vec![*then_bb]
                } else {
                    vec![*then_bb, *else_bb]
                }
            }
            Terminator::Return(_) | Terminator::Exit => Vec::new(),
        }
    }

    /// Rewrites every successor through `f` (used by transforms that split
    /// edges or insert blocks).
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump(b) => *b = f(*b),
            Terminator::Branch { then_bb, else_bb, .. } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            Terminator::Return(_) | Terminator::Exit => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let i = Inst::Bin { op: BinOp::Add, dst: Reg(2), lhs: Reg(0).into(), rhs: 5i64.into() };
        assert_eq!(i.def(), Some(Reg(2)));
        assert_eq!(i.uses().len(), 2);

        let s = Inst::Store { space: MemSpace::Global, addr: Reg(1).into(), value: 3i64.into() };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses().len(), 2);
    }

    #[test]
    fn arrived_count_defines_register() {
        let i = Inst::Barrier(BarrierOp::ArrivedCount { dst: Reg(4), bar: BarrierId(1) });
        assert_eq!(i.def(), Some(Reg(4)));
        assert!(i.is_barrier());
    }

    #[test]
    fn branch_successors_deduplicate() {
        let t = Terminator::Branch {
            cond: Operand::imm_i64(1),
            then_bb: BlockId(3),
            else_bb: BlockId(3),
            divergent: false,
        };
        assert_eq!(t.successors(), vec![BlockId(3)]);
    }

    #[test]
    fn map_successors_rewrites_all() {
        let mut t = Terminator::Branch {
            cond: Operand::imm_i64(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
            divergent: true,
        };
        t.map_successors(|b| BlockId(b.0 + 10));
        assert_eq!(t.successors(), vec![BlockId(11), BlockId(12)]);
    }

    #[test]
    fn barrier_op_accessors() {
        assert_eq!(BarrierOp::Join(BarrierId(3)).barrier(), Some(BarrierId(3)));
        assert_eq!(BarrierOp::Copy { dst: BarrierId(0), src: BarrierId(1) }.barrier(), None);
        assert!(BarrierOp::Rejoin(BarrierId(0)).is_join_like());
        assert!(!BarrierOp::Wait(BarrierId(0)).is_join_like());
    }
}
