//! Dynamic values carried by per-thread registers and memory cells.
//!
//! The IR is dynamically typed: every register and memory cell holds a
//! [`Value`], either a 64-bit integer or a 64-bit float. Arithmetic is
//! defined on both where sensible; integer arithmetic wraps (GPU-style),
//! and invalid combinations surface as [`ValueError`]s from the simulator
//! rather than panics.

use std::fmt;

/// A dynamically-typed 64-bit value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// Signed 64-bit integer. Also used for booleans (0 = false, 1 = true)
    /// and addresses.
    I64(i64),
    /// 64-bit IEEE float.
    F64(f64),
}

impl Value {
    /// The canonical `true` value.
    pub const TRUE: Value = Value::I64(1);
    /// The canonical `false` value.
    pub const FALSE: Value = Value::I64(0);

    /// Returns the value as an integer, converting floats by truncation.
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            Value::F64(v) => v as i64,
        }
    }

    /// Returns the value as a float, converting integers exactly where
    /// possible.
    pub fn as_f64(self) -> f64 {
        match self {
            Value::I64(v) => v as f64,
            Value::F64(v) => v,
        }
    }

    /// Interprets the value as a branch condition: any non-zero value is
    /// taken as true.
    pub fn is_truthy(self) -> bool {
        match self {
            Value::I64(v) => v != 0,
            Value::F64(v) => v != 0.0,
        }
    }

    /// Builds a boolean value.
    pub fn bool(b: bool) -> Value {
        if b {
            Value::TRUE
        } else {
            Value::FALSE
        }
    }

    /// Whether this value is an integer.
    pub fn is_int(self) -> bool {
        matches!(self, Value::I64(_))
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::I64(0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::bool(v)
    }
}

/// Error produced when an operation is applied to values it is not defined
/// for (e.g. integer division by zero).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValueError {
    /// Human-readable description of the fault.
    pub message: String,
}

impl ValueError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value error: {}", self.message)
    }
}

impl std::error::Error for ValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Value::I64(42).as_i64(), 42);
        assert_eq!(Value::I64(42).as_f64(), 42.0);
        assert_eq!(Value::F64(2.5).as_i64(), 2);
        assert_eq!(Value::from(true), Value::TRUE);
        assert_eq!(Value::from(false), Value::FALSE);
    }

    #[test]
    fn truthiness() {
        assert!(Value::I64(-1).is_truthy());
        assert!(!Value::I64(0).is_truthy());
        assert!(Value::F64(0.5).is_truthy());
        assert!(!Value::F64(0.0).is_truthy());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::I64(7).to_string(), "7");
        assert_eq!(Value::F64(1.0).to_string(), "1.0");
        assert_eq!(Value::F64(0.25).to_string(), "0.25");
    }
}
