//! Structural verifier for modules.
//!
//! [`verify_module`] checks the invariants the simulator and the passes
//! rely on: in-range registers/blocks/barriers, resolved calls with
//! consistent arities, and well-formed predictions. Run it after
//! construction or after any transform; the pass pipeline in
//! `specrecon-core` runs it automatically in debug builds.

use crate::function::{FuncKind, Function, Module, PredictTarget};
use crate::ids::{BlockId, FuncId, Reg};
use crate::inst::{FuncRef, Inst, Operand, Terminator};
use std::fmt;

/// A single verifier finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the problem was found.
    pub function: String,
    /// Block in which the problem was found, if block-specific.
    pub block: Option<BlockId>,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.block {
            Some(b) => write!(f, "@{} {}: {}", self.function, b, self.message),
            None => write!(f, "@{}: {}", self.function, self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function in the module.
///
/// # Errors
///
/// Returns all violations found (never an empty vector on `Err`).
pub fn verify_module(module: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();

    // Pre-compute the return arity of each function (None = inconsistent or
    // no returns).
    let ret_arities: Vec<Option<usize>> =
        module.functions.iter().map(|(_, f)| return_arity(f)).collect();

    for (_, func) in module.functions.iter() {
        verify_function(module, func, &ret_arities, &mut errors);
    }

    verify_barrier_discipline(module, &mut errors);

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Barrier discipline: a `wait` on a barrier register that no code in the
/// module ever populates (via `join`, `rejoin`, or a `bcopy` destination)
/// is almost certainly a bug — it can only ever pass through on an empty
/// mask. Barrier state is warp-global, so the check is module-wide (the
/// interprocedural pass joins in the caller and waits in the callee).
fn verify_barrier_discipline(module: &Module, errors: &mut Vec<VerifyError>) {
    use crate::inst::BarrierOp;
    let mut defined = std::collections::HashSet::new();
    for (_, f) in module.functions.iter() {
        for (_, block) in f.blocks.iter() {
            for inst in &block.insts {
                match inst {
                    Inst::Barrier(BarrierOp::Join(b)) | Inst::Barrier(BarrierOp::Rejoin(b)) => {
                        defined.insert(*b);
                    }
                    Inst::Barrier(BarrierOp::Copy { dst, .. }) => {
                        defined.insert(*dst);
                    }
                    _ => {}
                }
            }
        }
    }
    for (_, f) in module.functions.iter() {
        for (bb, block) in f.blocks.iter() {
            for inst in &block.insts {
                if let Inst::Barrier(BarrierOp::Wait(b)) = inst {
                    if !defined.contains(b) {
                        errors.push(VerifyError {
                            function: f.name.clone(),
                            block: Some(bb),
                            message: format!(
                                "wait on barrier {b} that nothing in the module ever joins or copies into"
                            ),
                        });
                    }
                }
            }
        }
    }
}

fn return_arity(f: &Function) -> Option<usize> {
    let mut arity: Option<usize> = None;
    for (_, block) in f.blocks.iter() {
        if let Terminator::Return(vals) = &block.term {
            match arity {
                None => arity = Some(vals.len()),
                Some(a) if a == vals.len() => {}
                Some(_) => return None,
            }
        }
    }
    arity
}

fn verify_function(
    module: &Module,
    func: &Function,
    ret_arities: &[Option<usize>],
    errors: &mut Vec<VerifyError>,
) {
    let mut err = |block: Option<BlockId>, message: String| {
        errors.push(VerifyError { function: func.name.clone(), block, message });
    };

    if func.blocks.get(func.entry).is_none() {
        err(None, format!("entry block {} out of range", func.entry));
        return;
    }
    // `fn<N>` is the textual form of resolved function references; a user
    // function with such a name would make the syntax ambiguous.
    if let Some(digits) = func.name.strip_prefix("fn") {
        if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
            err(None, format!("function name @{} is reserved (fn<N>)", func.name));
        }
    }
    if func.num_params > func.num_regs {
        err(None, format!("num_params {} exceeds num_regs {}", func.num_params, func.num_regs));
    }

    let check_reg = |r: Reg| r.index() < func.num_regs;
    let check_operand = |o: Operand| match o {
        Operand::Reg(r) => check_reg(r),
        Operand::Imm(_) => true,
    };

    let mut ret_arity_here: Option<usize> = None;

    for (bb, block) in func.blocks.iter() {
        for inst in &block.insts {
            if let Some(d) = inst.def() {
                if !check_reg(d) {
                    err(Some(bb), format!("destination register {d} out of range"));
                }
            }
            for u in inst.uses() {
                if !check_operand(u) {
                    err(Some(bb), format!("operand {u} out of range"));
                }
            }
            match inst {
                Inst::Barrier(op) => {
                    let mut check_bar = |b: crate::ids::BarrierId| {
                        if b.index() >= func.num_barriers {
                            err(Some(bb), format!("barrier register {b} out of range"));
                        }
                    };
                    match op {
                        crate::inst::BarrierOp::Copy { dst, src } => {
                            check_bar(*dst);
                            check_bar(*src);
                        }
                        other => {
                            if let Some(b) = other.barrier() {
                                check_bar(b);
                            }
                        }
                    }
                }
                Inst::Call { func: fr, args, rets } => match fr {
                    FuncRef::Name(n) => {
                        err(Some(bb), format!("unresolved call to @{n} (run resolve_calls)"));
                    }
                    FuncRef::Id(id) => match module.functions.get(*id) {
                        None => err(Some(bb), format!("call to out-of-range function {id}")),
                        Some(callee) => {
                            if callee.kind != FuncKind::Device {
                                err(
                                    Some(bb),
                                    format!("call to non-device function @{}", callee.name),
                                );
                            }
                            if args.len() != callee.num_params {
                                err(
                                    Some(bb),
                                    format!(
                                        "call to @{} passes {} args, expected {}",
                                        callee.name,
                                        args.len(),
                                        callee.num_params
                                    ),
                                );
                            }
                            if !rets.is_empty() {
                                match ret_arities[id.index()] {
                                    Some(a) if rets.len() <= a => {}
                                    Some(a) => err(
                                        Some(bb),
                                        format!(
                                            "call to @{} binds {} returns, callee returns {}",
                                            callee.name,
                                            rets.len(),
                                            a
                                        ),
                                    ),
                                    None => err(
                                        Some(bb),
                                        format!(
                                            "call to @{} binds returns but callee has inconsistent or no returns",
                                            callee.name
                                        ),
                                    ),
                                }
                            }
                            for r in rets {
                                if !check_reg(*r) {
                                    err(Some(bb), format!("return register {r} out of range"));
                                }
                            }
                        }
                    },
                },
                _ => {}
            }
        }
        match &block.term {
            Terminator::Jump(t) => {
                if func.blocks.get(*t).is_none() {
                    err(Some(bb), format!("jump target {t} out of range"));
                }
            }
            Terminator::Branch { cond, then_bb, else_bb, .. } => {
                if !check_operand(*cond) {
                    err(Some(bb), format!("branch condition {cond} out of range"));
                }
                for t in [then_bb, else_bb] {
                    if func.blocks.get(*t).is_none() {
                        err(Some(bb), format!("branch target {t} out of range"));
                    }
                }
            }
            Terminator::Return(vals) => {
                if func.kind == FuncKind::Kernel {
                    err(Some(bb), "kernel function contains `ret` (use `exit`)".to_string());
                }
                for v in vals {
                    if !check_operand(*v) {
                        err(Some(bb), format!("return operand {v} out of range"));
                    }
                }
                match ret_arity_here {
                    None => ret_arity_here = Some(vals.len()),
                    Some(a) if a != vals.len() => {
                        err(
                            Some(bb),
                            format!("inconsistent return arity ({} vs {})", vals.len(), a),
                        );
                    }
                    Some(_) => {}
                }
            }
            Terminator::Exit => {}
        }
    }

    for p in &func.predictions {
        if func.blocks.get(p.region_start).is_none() {
            err(None, format!("prediction region start {} out of range", p.region_start));
        }
        match &p.target {
            PredictTarget::Label(l) => {
                if func.block_by_label(l).is_none() {
                    err(None, format!("prediction targets unknown label `{l}`"));
                }
            }
            PredictTarget::Function(FuncRef::Name(n)) => {
                err(None, format!("prediction targets unresolved function @{n}"));
            }
            PredictTarget::Function(FuncRef::Id(id)) => {
                if module.functions.get(*id).is_none() {
                    err(None, format!("prediction targets out-of-range function {id}"));
                }
            }
        }
        if let Some(t) = p.threshold {
            if t > 1024 {
                err(None, format!("prediction threshold {t} is implausibly large"));
            }
        }
    }
}

/// Convenience: verify and panic with a readable message on failure.
/// Intended for tests and debug assertions.
///
/// # Panics
///
/// Panics if verification fails.
pub fn assert_verified(module: &Module) {
    if let Err(errors) = verify_module(module) {
        let mut msg = String::from("IR verification failed:\n");
        for e in &errors {
            msg.push_str(&format!("  - {e}\n"));
        }
        panic!("{msg}");
    }
}

/// Looks up a function and panics with a clear message if absent.
/// Convenience for tests and examples.
///
/// # Panics
///
/// Panics if no function with that name exists.
pub fn expect_function(module: &Module, name: &str) -> FuncId {
    module.function_by_name(name).unwrap_or_else(|| panic!("module has no function named @{name}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;

    #[test]
    fn valid_module_passes() {
        let mut b = FunctionBuilder::new("k", FuncKind::Kernel, 1);
        let p = b.param(0);
        let x = b.bin(BinOp::Add, p, 1i64);
        b.store_global(x, 0i64);
        b.exit();
        let mut m = Module::new();
        m.add_function(b.finish());
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn out_of_range_register_detected() {
        let mut b = FunctionBuilder::new("k", FuncKind::Kernel, 0);
        b.exit();
        let mut f = b.finish();
        f.blocks[f.entry].insts.push(Inst::Mov { dst: Reg(99), src: Operand::imm_i64(0) });
        let mut m = Module::new();
        m.add_function(f);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("destination register")));
    }

    #[test]
    fn unresolved_call_detected() {
        let mut b = FunctionBuilder::new("k", FuncKind::Kernel, 0);
        b.call("ghost", vec![], 0);
        b.exit();
        let mut m = Module::new();
        m.add_function(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unresolved call")));
    }

    #[test]
    fn kernel_with_ret_detected() {
        let mut b = FunctionBuilder::new("k", FuncKind::Kernel, 0);
        b.ret(vec![]);
        let mut m = Module::new();
        m.add_function(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("contains `ret`")));
    }

    #[test]
    fn prediction_with_unknown_label_detected() {
        let mut b = FunctionBuilder::new("k", FuncKind::Kernel, 0);
        b.predict_label("nowhere", None);
        b.exit();
        let mut m = Module::new();
        m.add_function(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unknown label")));
    }

    #[test]
    fn reserved_function_name_detected() {
        let mut m = Module::new();
        m.add_function(Function::new("fn3", FuncKind::Kernel, 0));
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("reserved")));
    }

    #[test]
    fn resolved_call_round_trips_through_text() {
        let src = "kernel @k(params=0, regs=2, barriers=0, entry=bb0) {\nbb0:\n  call @f(1) -> (%r0)\n  exit\n}\ndevice @f(params=1, regs=2, barriers=0, entry=bb0) {\nbb0:\n  %r1 = add %r0, 1\n  ret %r1\n}\n";
        let m = crate::parse::parse_and_link(src).unwrap();
        let printed = m.to_string();
        assert!(printed.contains("call @fn1(1)"), "{printed}");
        let reparsed = crate::parse::parse_module(&printed).unwrap();
        assert_eq!(m, reparsed);
    }

    #[test]
    fn wait_on_never_joined_barrier_detected() {
        let src =
            "kernel @k(params=0, regs=1, barriers=1, entry=bb0) {\nbb0:\n  wait b0\n  exit\n}\n";
        let m = crate::parse::parse_module(src).unwrap();
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("ever joins")));
    }

    #[test]
    fn wait_on_copied_barrier_is_fine() {
        let src = "kernel @k(params=0, regs=1, barriers=2, entry=bb0) {\nbb0:\n  join b0\n  bcopy b1, b0\n  wait b1\n  wait b0\n  exit\n}\n";
        let m = crate::parse::parse_module(src).unwrap();
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn wait_joined_in_other_function_is_fine() {
        let src = "kernel @k(params=0, regs=1, barriers=1, entry=bb0) {\nbb0:\n  join b0\n  call @f()\n  exit\n}\ndevice @f(params=0, regs=1, barriers=1, entry=bb0) {\nbb0:\n  wait b0\n  ret\n}\n";
        let m = crate::parse::parse_and_link(src).unwrap();
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn call_arity_mismatch_detected() {
        let src = "kernel @k(params=0, regs=1, barriers=0, entry=bb0) {\nbb0:\n  call @f(1, 2)\n  exit\n}\ndevice @f(params=1, regs=1, barriers=0, entry=bb0) {\nbb0:\n  ret\n}\n";
        let m = crate::parse::parse_and_link(src).unwrap();
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("passes 2 args")));
    }
}
