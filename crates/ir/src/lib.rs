//! # simt-ir — kernel IR for the Speculative Reconvergence reproduction
//!
//! This crate defines the compiler IR shared by the whole workspace: a
//! small CFG-based kernel language with first-class *convergence barrier*
//! instructions modelling NVIDIA Volta's `BSSY` / `BSYNC` / `BREAK`
//! (Table 1 of *Speculative Reconvergence for Improved SIMT Efficiency*,
//! CGO 2020), plus the `Predict(...)` reconvergence annotations of §4.1.
//!
//! The pieces:
//!
//! - [`Module`] / [`Function`] / [`Block`] — the CFG ([`function`]);
//! - [`Inst`] / [`Terminator`] / [`BarrierOp`] — the instruction set
//!   ([`inst`]);
//! - [`FunctionBuilder`] — fluent construction ([`builder`]);
//! - a textual syntax with a printer ([`display`]) and parser ([`parse`])
//!   that round-trip;
//! - a structural verifier ([`verify`]).
//!
//! ```
//! use simt_ir::{FunctionBuilder, FuncKind, BinOp, Module, verify_module};
//!
//! let mut b = FunctionBuilder::new("inc", FuncKind::Kernel, 0);
//! let tid = b.special(simt_ir::SpecialValue::Tid);
//! let v = b.load_global(tid);
//! let v2 = b.bin(BinOp::Add, v, 1i64);
//! b.store_global(v2, tid);
//! b.exit();
//!
//! let mut module = Module::new();
//! module.add_function(b.finish());
//! verify_module(&module).unwrap();
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod display;
pub mod dot;
pub mod function;
pub mod ids;
pub mod inst;
pub mod parse;
pub mod value;
pub mod verify;

pub use builder::FunctionBuilder;
pub use dot::{function_to_dot, module_to_dot};
pub use function::{Block, FuncKind, Function, Module, PredictTarget, Prediction};
pub use ids::{BarrierId, BlockId, FuncId, IdVec, Reg};
pub use inst::{
    BarrierOp, BinOp, FuncRef, Inst, MemSpace, Operand, RngKind, SpecialValue, Terminator, UnOp,
};
pub use parse::{parse_and_link, parse_module, ParseError};
pub use value::{Value, ValueError};
pub use verify::{assert_verified, expect_function, verify_module, VerifyError};
