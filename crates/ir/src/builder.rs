//! Fluent construction of IR functions.
//!
//! [`FunctionBuilder`] keeps a *current block* cursor; instruction-emitting
//! methods append to it and allocate destination registers. Workloads and
//! tests use this instead of pushing [`crate::Inst`]s by hand.
//!
//! ```
//! use simt_ir::{FunctionBuilder, FuncKind, BinOp};
//!
//! let mut b = FunctionBuilder::new("axpy", FuncKind::Kernel, 2);
//! let (a, x) = (b.param(0), b.param(1));
//! let ax = b.bin(BinOp::Mul, a, x);
//! let out = b.bin(BinOp::Add, ax, 1i64);
//! b.store_global(out, 0i64);
//! b.exit();
//! let f = b.finish();
//! assert_eq!(f.num_params, 2);
//! ```

use crate::function::{FuncKind, Function, PredictTarget, Prediction};
use crate::ids::{BarrierId, BlockId, Reg};
use crate::inst::{
    BarrierOp, BinOp, FuncRef, Inst, MemSpace, Operand, RngKind, SpecialValue, Terminator, UnOp,
};

/// Incrementally builds a [`Function`].
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    terminated: bool,
}

impl FunctionBuilder {
    /// Starts a function with `num_params` parameters. The cursor is placed
    /// on the entry block.
    pub fn new(name: impl Into<String>, kind: FuncKind, num_params: usize) -> Self {
        let func = Function::new(name, kind, num_params);
        let current = func.entry;
        Self { func, current, terminated: false }
    }

    /// The `i`-th parameter register.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> Reg {
        assert!(i < self.func.num_params, "parameter index {i} out of range");
        Reg::new(i)
    }

    /// Allocates a fresh register without emitting an instruction.
    pub fn fresh_reg(&mut self) -> Reg {
        self.func.alloc_reg()
    }

    /// Allocates a fresh barrier register.
    pub fn fresh_barrier(&mut self) -> BarrierId {
        self.func.alloc_barrier()
    }

    /// Creates a new (empty, unterminated) block and returns its id without
    /// moving the cursor.
    pub fn block(&mut self, label: impl Into<String>) -> BlockId {
        self.func.add_block(Some(label.into()))
    }

    /// Creates a new anonymous block.
    pub fn anon_block(&mut self) -> BlockId {
        self.func.add_block(None)
    }

    /// Moves the cursor to `block`.
    ///
    /// # Panics
    ///
    /// Panics if the current block has not been terminated (which would
    /// silently leave an `Exit` fallthrough behind).
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            self.terminated || self.block_is_empty(self.current),
            "switch_to: block {} was left unterminated",
            self.current
        );
        self.current = block;
        self.terminated = false;
    }

    fn block_is_empty(&self, b: BlockId) -> bool {
        self.func.blocks[b].insts.is_empty()
    }

    /// The block the cursor is on.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Marks the current block as a region-of-interest for per-region SIMT
    /// efficiency accounting.
    pub fn mark_roi(&mut self) {
        self.func.blocks[self.current].roi = true;
    }

    /// Attaches a label to the current block (overwriting any existing
    /// label).
    pub fn label_current(&mut self, label: impl Into<String>) {
        self.func.blocks[self.current].label = Some(label.into());
    }

    fn push(&mut self, inst: Inst) {
        assert!(!self.terminated, "emitting into terminated block {}", self.current);
        self.func.blocks[self.current].insts.push(inst);
    }

    // ---- instruction emitters -------------------------------------------

    /// Emits a binary operation into a fresh register.
    pub fn bin(&mut self, op: BinOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        let dst = self.func.alloc_reg();
        self.push(Inst::Bin { op, dst, lhs: lhs.into(), rhs: rhs.into() });
        dst
    }

    /// Emits a binary operation into an existing register.
    pub fn bin_into(
        &mut self,
        dst: Reg,
        op: BinOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) {
        self.push(Inst::Bin { op, dst, lhs: lhs.into(), rhs: rhs.into() });
    }

    /// Emits a unary operation into a fresh register.
    pub fn un(&mut self, op: UnOp, src: impl Into<Operand>) -> Reg {
        let dst = self.func.alloc_reg();
        self.push(Inst::Un { op, dst, src: src.into() });
        dst
    }

    /// Emits a move into a fresh register.
    pub fn mov(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.func.alloc_reg();
        self.push(Inst::Mov { dst, src: src.into() });
        dst
    }

    /// Emits a move into an existing register.
    pub fn mov_into(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.push(Inst::Mov { dst, src: src.into() });
    }

    /// Emits a select into a fresh register.
    pub fn sel(
        &mut self,
        cond: impl Into<Operand>,
        if_true: impl Into<Operand>,
        if_false: impl Into<Operand>,
    ) -> Reg {
        let dst = self.func.alloc_reg();
        self.push(Inst::Sel {
            dst,
            cond: cond.into(),
            if_true: if_true.into(),
            if_false: if_false.into(),
        });
        dst
    }

    /// Emits a global-memory load.
    pub fn load_global(&mut self, addr: impl Into<Operand>) -> Reg {
        let dst = self.func.alloc_reg();
        self.push(Inst::Load { dst, space: MemSpace::Global, addr: addr.into() });
        dst
    }

    /// Emits a local-memory load.
    pub fn load_local(&mut self, addr: impl Into<Operand>) -> Reg {
        let dst = self.func.alloc_reg();
        self.push(Inst::Load { dst, space: MemSpace::Local, addr: addr.into() });
        dst
    }

    /// Emits a global-memory store.
    pub fn store_global(&mut self, value: impl Into<Operand>, addr: impl Into<Operand>) {
        self.push(Inst::Store { space: MemSpace::Global, addr: addr.into(), value: value.into() });
    }

    /// Emits a local-memory store.
    pub fn store_local(&mut self, value: impl Into<Operand>, addr: impl Into<Operand>) {
        self.push(Inst::Store { space: MemSpace::Local, addr: addr.into(), value: value.into() });
    }

    /// Emits an atomic fetch-add on global memory (the work-queue
    /// primitive).
    pub fn atomic_add(&mut self, addr: impl Into<Operand>, value: impl Into<Operand>) -> Reg {
        let dst = self.func.alloc_reg();
        self.push(Inst::AtomicAdd { dst, addr: addr.into(), value: value.into() });
        dst
    }

    /// Reads a special value.
    pub fn special(&mut self, kind: SpecialValue) -> Reg {
        let dst = self.func.alloc_reg();
        self.push(Inst::Special { dst, kind });
        dst
    }

    /// Draws a uniform float in `[0, 1)` from the per-thread RNG.
    pub fn rng_unit(&mut self) -> Reg {
        let dst = self.func.alloc_reg();
        self.push(Inst::Rng { dst, kind: RngKind::Unit });
        dst
    }

    /// Re-seeds the per-thread RNG from an operand (e.g. a task id), so
    /// the subsequent random stream is a function of the value rather
    /// than of the executing thread.
    pub fn seed_rng(&mut self, src: impl Into<Operand>) {
        self.push(Inst::SeedRng { src: src.into() });
    }

    /// Warp-synchronous vote: every lane of the currently converged
    /// group receives the count of group lanes whose predicate is
    /// non-zero.
    pub fn vote(&mut self, pred: impl Into<Operand>) -> Reg {
        let dst = self.func.alloc_reg();
        self.push(Inst::Vote { dst, pred: pred.into() });
        dst
    }

    /// Draws a uniform non-negative integer from the per-thread RNG.
    pub fn rng_u63(&mut self) -> Reg {
        let dst = self.func.alloc_reg();
        self.push(Inst::Rng { dst, kind: RngKind::U63 });
        dst
    }

    /// Emits a call by callee name; returns `n_rets` fresh registers that
    /// receive the return values.
    pub fn call(&mut self, callee: &str, args: Vec<Operand>, n_rets: usize) -> Vec<Reg> {
        let rets: Vec<Reg> = (0..n_rets).map(|_| self.func.alloc_reg()).collect();
        self.push(Inst::Call { func: FuncRef::Name(callee.to_string()), args, rets: rets.clone() });
        rets
    }

    /// Emits a synthetic `work` instruction of the given cycle cost.
    pub fn work(&mut self, amount: u32) {
        self.push(Inst::Work { amount });
    }

    /// Emits a barrier operation.
    pub fn barrier(&mut self, op: BarrierOp) {
        self.push(Inst::Barrier(op));
    }

    // ---- terminators -----------------------------------------------------

    /// Terminates the current block with an unconditional jump.
    pub fn jmp(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Terminates the current block with a non-divergent conditional
    /// branch.
    pub fn br(&mut self, cond: impl Into<Operand>, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::Branch {
            cond: cond.into(),
            then_bb,
            else_bb,
            divergent: false,
        });
    }

    /// Terminates the current block with a branch hinted as divergent.
    pub fn br_div(&mut self, cond: impl Into<Operand>, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::Branch { cond: cond.into(), then_bb, else_bb, divergent: true });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, values: Vec<Operand>) {
        self.terminate(Terminator::Return(values));
    }

    /// Terminates the current block with a thread exit.
    pub fn exit(&mut self) {
        self.terminate(Terminator::Exit);
    }

    fn terminate(&mut self, term: Terminator) {
        assert!(!self.terminated, "block {} terminated twice", self.current);
        self.func.blocks[self.current].term = term;
        self.terminated = true;
    }

    // ---- predictions ------------------------------------------------------

    /// Records a `Predict(<label>)` directive (§4.1) whose region starts at
    /// the current block.
    pub fn predict_label(&mut self, label: impl Into<String>, threshold: Option<u32>) {
        let region_start = self.current;
        self.func.predictions.push(Prediction {
            region_start,
            target: PredictTarget::Label(label.into()),
            threshold,
        });
    }

    /// Records a `Predict(<function>)` directive (§4.4) whose region starts
    /// at the current block.
    pub fn predict_function(&mut self, callee: &str, threshold: Option<u32>) {
        let region_start = self.current;
        self.func.predictions.push(Prediction {
            region_start,
            target: PredictTarget::Function(FuncRef::Name(callee.to_string())),
            threshold,
        });
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if the current block was left unterminated.
    pub fn finish(self) -> Function {
        assert!(self.terminated, "finish: block {} was left unterminated", self.current);
        self.func
    }

    /// Accesses the function under construction (for advanced tweaks the
    /// fluent API does not cover).
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }
}

/// Direct access to the underlying [`crate::Block`] list, for tests that need to
/// inspect emitted code.
impl AsRef<Function> for FunctionBuilder {
    fn as_ref(&self) -> &Function {
        &self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_kernel() {
        let mut b = FunctionBuilder::new("k", FuncKind::Kernel, 1);
        let p = b.param(0);
        let x = b.bin(BinOp::Add, p, 1i64);
        b.store_global(x, 0i64);
        b.exit();
        let f = b.finish();
        assert_eq!(f.blocks[f.entry].insts.len(), 2);
        assert_eq!(f.blocks[f.entry].term, Terminator::Exit);
    }

    #[test]
    fn branches_and_blocks() {
        let mut b = FunctionBuilder::new("k", FuncKind::Kernel, 0);
        let t = b.block("then");
        let e = b.block("else");
        let c = b.rng_unit();
        let half = b.bin(BinOp::Lt, c, 0.5f64);
        b.br_div(half, t, e);
        b.switch_to(t);
        b.exit();
        b.switch_to(e);
        b.exit();
        let f = b.finish();
        assert_eq!(f.blocks.len(), 3);
        assert!(matches!(f.blocks[f.entry].term, Terminator::Branch { divergent: true, .. }));
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminate_panics() {
        let mut b = FunctionBuilder::new("k", FuncKind::Kernel, 0);
        b.exit();
        b.exit();
    }

    #[test]
    #[should_panic(expected = "unterminated")]
    fn finish_unterminated_panics() {
        let b = FunctionBuilder::new("k", FuncKind::Kernel, 0);
        b.finish();
    }

    #[test]
    fn predictions_attach_to_current_block() {
        let mut b = FunctionBuilder::new("k", FuncKind::Kernel, 0);
        b.predict_label("L1", Some(16));
        b.exit();
        let f = b.finish();
        assert_eq!(f.predictions.len(), 1);
        assert_eq!(f.predictions[0].region_start, f.entry);
        assert_eq!(f.predictions[0].threshold, Some(16));
    }
}
