//! Strongly-typed identifiers used throughout the IR, and [`IdVec`], a thin
//! vector indexed by those identifiers.
//!
//! Every entity in a [`crate::Function`] — basic blocks, virtual registers,
//! barrier registers — is referred to by a dense index newtype rather than a
//! raw `usize`, so that the type system prevents mixing them up
//! (C-NEWTYPE).

use std::fmt;
use std::marker::PhantomData;

/// Implements a dense index newtype with `Display`/`Debug` using a sigil
/// prefix (e.g. `bb3`, `%7`, `b2`).
macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflow"))
            }

            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type! {
    /// Identifier of a basic block within a [`crate::Function`].
    BlockId, "bb"
}

id_type! {
    /// Identifier of a per-thread virtual register within a function frame.
    Reg, "%r"
}

id_type! {
    /// Identifier of a warp-level convergence-barrier register.
    ///
    /// Barrier registers hold *participation masks* (one bit per lane), the
    /// model used by Volta's `BSSY`/`BSYNC`/`BREAK` instructions.
    BarrierId, "b"
}

id_type! {
    /// Identifier of a function within a [`crate::Module`].
    FuncId, "fn"
}

/// A vector whose elements are addressed by a dense id newtype.
///
/// This is a minimal "index vector": it only exposes the operations the IR
/// and analyses need, and it guarantees at the type level that a `BlockId`
/// can never index a register table, etc.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IdVec<I, T> {
    items: Vec<T>,
    _marker: PhantomData<fn(I) -> I>,
}

impl<I, T> IdVec<I, T>
where
    I: Copy + Into<usize> + From32,
{
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self { items: Vec::new(), _marker: PhantomData }
    }

    /// Creates an empty vector with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { items: Vec::with_capacity(cap), _marker: PhantomData }
    }

    /// Appends an element and returns its id.
    pub fn push(&mut self, item: T) -> I {
        let id = I::from_index(self.items.len());
        self.items.push(item);
        id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over `(id, &element)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.items.iter().enumerate().map(|(i, t)| (I::from_index(i), t))
    }

    /// Iterates over `(id, &mut element)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (I, &mut T)> {
        self.items.iter_mut().enumerate().map(|(i, t)| (I::from_index(i), t))
    }

    /// Iterates over all ids.
    pub fn ids(&self) -> impl Iterator<Item = I> + 'static
    where
        I: 'static,
    {
        (0..self.items.len()).map(I::from_index)
    }

    /// Returns a reference to the element, or `None` if out of range.
    pub fn get(&self, id: I) -> Option<&T> {
        self.items.get(id.into())
    }

    /// Returns a mutable reference to the element, or `None` if out of range.
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        self.items.get_mut(id.into())
    }
}

impl<I, T> Default for IdVec<I, T>
where
    I: Copy + Into<usize> + From32,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<I, T> std::ops::Index<I> for IdVec<I, T>
where
    I: Copy + Into<usize> + From32,
{
    type Output = T;
    fn index(&self, id: I) -> &T {
        &self.items[id.into()]
    }
}

impl<I, T> std::ops::IndexMut<I> for IdVec<I, T>
where
    I: Copy + Into<usize> + From32,
{
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.items[id.into()]
    }
}

impl<I, T: fmt::Debug> fmt::Debug for IdVec<I, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.items.iter()).finish()
    }
}

/// Construction of an id from a raw index; implemented by all id newtypes.
pub trait From32 {
    /// Creates the id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    fn from_index(index: usize) -> Self;
}

macro_rules! impl_from32 {
    ($($t:ty),*) => {
        $(impl From32 for $t {
            fn from_index(index: usize) -> Self {
                Self::new(index)
            }
        })*
    };
}

impl_from32!(BlockId, Reg, BarrierId, FuncId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_uses_sigils() {
        assert_eq!(BlockId(3).to_string(), "bb3");
        assert_eq!(Reg(7).to_string(), "%r7");
        assert_eq!(BarrierId(0).to_string(), "b0");
        assert_eq!(FuncId(1).to_string(), "fn1");
    }

    #[test]
    fn idvec_push_and_index() {
        let mut v: IdVec<BlockId, &str> = IdVec::new();
        let a = v.push("a");
        let b = v.push("b");
        assert_eq!(a, BlockId(0));
        assert_eq!(b, BlockId(1));
        assert_eq!(v[a], "a");
        assert_eq!(v[b], "b");
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }

    #[test]
    fn idvec_iterators_yield_ids_in_order() {
        let mut v: IdVec<Reg, i32> = IdVec::new();
        v.push(10);
        v.push(20);
        let collected: Vec<_> = v.iter().map(|(id, val)| (id.index(), *val)).collect();
        assert_eq!(collected, vec![(0, 10), (1, 20)]);
        let ids: Vec<_> = v.ids().collect();
        assert_eq!(ids, vec![Reg(0), Reg(1)]);
    }

    #[test]
    fn idvec_get_out_of_range_is_none() {
        let v: IdVec<BlockId, u8> = IdVec::new();
        assert!(v.get(BlockId(0)).is_none());
    }
}
