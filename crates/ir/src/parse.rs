//! Textual form of the IR (parser half).
//!
//! Grammar (one item per line; `;` starts a comment running to end of line):
//!
//! ```text
//! module   := function*
//! function := ("kernel"|"device") "@" NAME
//!             "(" "params=" INT "," "regs=" INT "," "barriers=" INT ","
//!                 "entry=" BB ")" "{" predict* block* "}"
//! predict  := "predict" BB "->" ("label" NAME | "func" "@" NAME)
//!             [ "threshold=" INT ]
//! block    := BB [ "(" attrs ")" ] ":" line*
//! attrs    := ("label=" NAME | "roi") ("," ...)*
//! line     := instruction | terminator          (see crate::display)
//! ```
//!
//! `BB` is `bb<N>`, registers are `%r<N>`, barriers are `b<N>`. Float
//! immediates carry an `f` suffix (`0.5f`); bare numbers are integers.

use crate::function::{Block, FuncKind, Function, Module, PredictTarget, Prediction};
use crate::ids::{BarrierId, BlockId, IdVec, Reg};
use crate::inst::{
    BarrierOp, BinOp, FuncRef, Inst, MemSpace, Operand, RngKind, SpecialValue, Terminator, UnOp,
};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Error produced by [`parse_module`], carrying a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the error was detected.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self { line, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Reg(u32),
    Int(i64),
    Float(f64),
    At,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Eq,
    Arrow,
    Dot,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Reg(n) => write!(f, "%r{n}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}f"),
            Tok::At => write!(f, "@"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Colon => write!(f, ":"),
            Tok::Eq => write!(f, "="),
            Tok::Arrow => write!(f, "->"),
            Tok::Dot => write!(f, "."),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut out = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line_num = lineno + 1;
        let line = match line.find(';') {
            Some(i) => &line[..i],
            None => line,
        };
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            match c {
                ' ' | '\t' | '\r' => i += 1,
                '@' => {
                    out.push((line_num, Tok::At));
                    i += 1;
                }
                '(' => {
                    out.push((line_num, Tok::LParen));
                    i += 1;
                }
                ')' => {
                    out.push((line_num, Tok::RParen));
                    i += 1;
                }
                '{' => {
                    out.push((line_num, Tok::LBrace));
                    i += 1;
                }
                '}' => {
                    out.push((line_num, Tok::RBrace));
                    i += 1;
                }
                '[' => {
                    out.push((line_num, Tok::LBracket));
                    i += 1;
                }
                ']' => {
                    out.push((line_num, Tok::RBracket));
                    i += 1;
                }
                ',' => {
                    out.push((line_num, Tok::Comma));
                    i += 1;
                }
                ':' => {
                    out.push((line_num, Tok::Colon));
                    i += 1;
                }
                '=' => {
                    out.push((line_num, Tok::Eq));
                    i += 1;
                }
                '.' => {
                    out.push((line_num, Tok::Dot));
                    i += 1;
                }
                '-' => {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                        out.push((line_num, Tok::Arrow));
                        i += 2;
                    } else if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                        let (tok, len) = lex_number(&line[i..], line_num)?;
                        out.push((line_num, tok));
                        i += len;
                    } else {
                        return Err(ParseError::new(line_num, "stray `-`"));
                    }
                }
                '%' => {
                    // %r<digits>
                    if line[i..].len() >= 2 && &line[i + 1..i + 2] == "r" {
                        let rest = &line[i + 2..];
                        let digits: String =
                            rest.chars().take_while(|c| c.is_ascii_digit()).collect();
                        if digits.is_empty() {
                            return Err(ParseError::new(
                                line_num,
                                "expected register number after %r",
                            ));
                        }
                        let n: u32 = digits
                            .parse()
                            .map_err(|_| ParseError::new(line_num, "register number too large"))?;
                        out.push((line_num, Tok::Reg(n)));
                        i += 2 + digits.len();
                    } else {
                        return Err(ParseError::new(line_num, "expected `%r<N>`"));
                    }
                }
                c if c.is_ascii_digit() => {
                    let (tok, len) = lex_number(&line[i..], line_num)?;
                    out.push((line_num, tok));
                    i += len;
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let word: String = line[i..]
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    i += word.len();
                    out.push((line_num, Tok::Ident(word)));
                }
                other => {
                    return Err(ParseError::new(
                        line_num,
                        format!("unexpected character {other:?}"),
                    ))
                }
            }
        }
    }
    Ok(out)
}

fn lex_number(s: &str, line: usize) -> Result<(Tok, usize), ParseError> {
    let bytes = s.as_bytes();
    let mut i = 0;
    if bytes[0] == b'-' {
        i = 1;
    }
    let mut is_float = false;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        // Only a float exponent if followed by digits or sign+digits.
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let has_suffix = i < bytes.len() && bytes[i] == b'f';
    let text = &s[..i];
    if has_suffix || is_float {
        let v: f64 = text
            .parse()
            .map_err(|_| ParseError::new(line, format!("bad float literal {text:?}")))?;
        Ok((Tok::Float(v), i + usize::from(has_suffix)))
    } else {
        let v: i64 = text
            .parse()
            .map_err(|_| ParseError::new(line, format!("bad integer literal {text:?}")))?;
        Ok((Tok::Int(v), i))
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map_or(0, |(l, _)| *l)
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseError::new(self.line(), "unexpected end of input"))?;
        self.pos += 1;
        Ok(t.1)
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        let line = self.line();
        let t = self.next()?;
        if t == tok {
            Ok(())
        } else {
            Err(ParseError::new(line, format!("expected {tok}, found {t}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        let line = self.line();
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError::new(line, format!("expected identifier, found {other}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let line = self.line();
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(ParseError::new(line, format!("expected `{kw}`, found `{id}`")))
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        let line = self.line();
        match self.next()? {
            Tok::Int(v) => Ok(v),
            other => Err(ParseError::new(line, format!("expected integer, found {other}"))),
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_block_ref(&mut self) -> Result<BlockId, ParseError> {
        let line = self.line();
        let id = self.expect_ident()?;
        parse_bb_name(&id)
            .ok_or_else(|| ParseError::new(line, format!("expected bb<N>, found `{id}`")))
    }

    fn expect_barrier_ref(&mut self) -> Result<BarrierId, ParseError> {
        let line = self.line();
        let id = self.expect_ident()?;
        parse_barrier_name(&id)
            .ok_or_else(|| ParseError::new(line, format!("expected b<N>, found `{id}`")))
    }

    fn expect_reg(&mut self) -> Result<Reg, ParseError> {
        let line = self.line();
        match self.next()? {
            Tok::Reg(n) => Ok(Reg(n)),
            other => Err(ParseError::new(line, format!("expected register, found {other}"))),
        }
    }

    fn expect_operand(&mut self) -> Result<Operand, ParseError> {
        let line = self.line();
        match self.next()? {
            Tok::Reg(n) => Ok(Operand::Reg(Reg(n))),
            Tok::Int(v) => Ok(Operand::Imm(Value::I64(v))),
            Tok::Float(v) => Ok(Operand::Imm(Value::F64(v))),
            other => Err(ParseError::new(line, format!("expected operand, found {other}"))),
        }
    }
}

fn parse_bb_name(s: &str) -> Option<BlockId> {
    let digits = s.strip_prefix("bb")?;
    let n: u32 = digits.parse().ok()?;
    Some(BlockId(n))
}

/// `fn<N>` idents are the printed form of resolved function references.
fn parse_func_ref(name: String) -> FuncRef {
    if let Some(digits) = name.strip_prefix("fn") {
        if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(n) = digits.parse::<u32>() {
                return FuncRef::Id(crate::ids::FuncId(n));
            }
        }
    }
    FuncRef::Name(name)
}

fn parse_barrier_name(s: &str) -> Option<BarrierId> {
    let digits = s.strip_prefix('b')?;
    if digits.is_empty() || digits.starts_with('b') {
        return None;
    }
    let n: u32 = digits.parse().ok()?;
    Some(BarrierId(n))
}

/// Parses a whole module from its textual form.
///
/// By-name call references are left unresolved; call
/// [`Module::resolve_calls`] afterwards (or use [`parse_and_link`]).
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number on malformed input.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut module = Module::new();
    while p.peek().is_some() {
        let func = parse_function(&mut p)?;
        module.functions.push(func);
    }
    Ok(module)
}

/// Parses a module and resolves all by-name call references.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or on a call to an undefined
/// function.
pub fn parse_and_link(src: &str) -> Result<Module, ParseError> {
    let mut m = parse_module(src)?;
    m.resolve_calls()
        .map_err(|name| ParseError::new(0, format!("call to undefined function @{name}")))?;
    Ok(m)
}

fn parse_function(p: &mut Parser) -> Result<Function, ParseError> {
    let line = p.line();
    let kind = match p.expect_ident()?.as_str() {
        "kernel" => FuncKind::Kernel,
        "device" => FuncKind::Device,
        other => {
            return Err(ParseError::new(
                line,
                format!("expected `kernel` or `device`, found `{other}`"),
            ))
        }
    };
    p.expect(Tok::At)?;
    let name = p.expect_ident()?;
    p.expect(Tok::LParen)?;
    p.expect_keyword("params")?;
    p.expect(Tok::Eq)?;
    let num_params = p.expect_int()? as usize;
    p.expect(Tok::Comma)?;
    p.expect_keyword("regs")?;
    p.expect(Tok::Eq)?;
    let num_regs = p.expect_int()? as usize;
    p.expect(Tok::Comma)?;
    p.expect_keyword("barriers")?;
    p.expect(Tok::Eq)?;
    let num_barriers = p.expect_int()? as usize;
    p.expect(Tok::Comma)?;
    p.expect_keyword("entry")?;
    p.expect(Tok::Eq)?;
    let entry = p.expect_block_ref()?;
    p.expect(Tok::RParen)?;
    p.expect(Tok::LBrace)?;

    let mut predictions = Vec::new();
    while p.peek() == Some(&Tok::Ident("predict".to_string())) {
        p.next()?;
        let region_start = p.expect_block_ref()?;
        p.expect(Tok::Arrow)?;
        let line = p.line();
        let target = match p.expect_ident()?.as_str() {
            "label" => PredictTarget::Label(p.expect_ident()?),
            "func" => {
                p.expect(Tok::At)?;
                PredictTarget::Function(parse_func_ref(p.expect_ident()?))
            }
            other => {
                return Err(ParseError::new(
                    line,
                    format!("expected `label` or `func`, found `{other}`"),
                ))
            }
        };
        let threshold = if p.peek() == Some(&Tok::Ident("threshold".to_string())) {
            p.next()?;
            p.expect(Tok::Eq)?;
            Some(p.expect_int()? as u32)
        } else {
            None
        };
        predictions.push(Prediction { region_start, target, threshold });
    }

    // Blocks.
    let mut blocks: HashMap<u32, Block> = HashMap::new();
    let mut order: Vec<u32> = Vec::new();
    while !p.eat(&Tok::RBrace) {
        let line = p.line();
        let bb = p.expect_block_ref()?;
        let mut block = Block::new(None);
        if p.eat(&Tok::LParen) {
            loop {
                let attr_line = p.line();
                match p.expect_ident()?.as_str() {
                    "label" => {
                        p.expect(Tok::Eq)?;
                        block.label = Some(p.expect_ident()?);
                    }
                    "roi" => block.roi = true,
                    other => {
                        return Err(ParseError::new(
                            attr_line,
                            format!("unknown block attribute `{other}`"),
                        ))
                    }
                }
                if !p.eat(&Tok::Comma) {
                    break;
                }
            }
            p.expect(Tok::RParen)?;
        }
        p.expect(Tok::Colon)?;
        let term = parse_block_body(p, &mut block)?;
        block.term = term;
        if blocks.insert(bb.0, block).is_some() {
            return Err(ParseError::new(line, format!("duplicate block bb{}", bb.0)));
        }
        order.push(bb.0);
    }

    // Materialize a dense block table.
    let max = order.iter().copied().max().map_or(0, |m| m + 1);
    let mut table: IdVec<BlockId, Block> = IdVec::with_capacity(max as usize);
    for i in 0..max {
        match blocks.remove(&i) {
            Some(b) => {
                table.push(b);
            }
            None => {
                return Err(ParseError::new(0, format!("function @{name}: block bb{i} is missing")))
            }
        }
    }
    if table.is_empty() {
        return Err(ParseError::new(0, format!("function @{name} has no blocks")));
    }
    if entry.index() >= table.len() {
        return Err(ParseError::new(
            0,
            format!("function @{name}: entry bb{} undefined", entry.index()),
        ));
    }

    Ok(Function {
        name,
        kind,
        num_params,
        num_regs,
        num_barriers,
        blocks: table,
        entry,
        predictions,
    })
}

/// Parses instructions until a terminator; returns the terminator.
fn parse_block_body(p: &mut Parser, block: &mut Block) -> Result<Terminator, ParseError> {
    loop {
        let line = p.line();
        match p.next()? {
            // Terminators ---------------------------------------------------
            Tok::Ident(kw) if kw == "jmp" => {
                return Ok(Terminator::Jump(p.expect_block_ref()?));
            }
            Tok::Ident(kw) if kw == "br" || kw == "brdiv" => {
                let cond = p.expect_operand()?;
                p.expect(Tok::Comma)?;
                let then_bb = p.expect_block_ref()?;
                p.expect(Tok::Comma)?;
                let else_bb = p.expect_block_ref()?;
                return Ok(Terminator::Branch { cond, then_bb, else_bb, divergent: kw == "brdiv" });
            }
            Tok::Ident(kw) if kw == "ret" => {
                let mut values = Vec::new();
                if matches!(p.peek(), Some(Tok::Reg(_) | Tok::Int(_) | Tok::Float(_))) {
                    values.push(p.expect_operand()?);
                    while p.eat(&Tok::Comma) {
                        values.push(p.expect_operand()?);
                    }
                }
                return Ok(Terminator::Return(values));
            }
            Tok::Ident(kw) if kw == "exit" => {
                return Ok(Terminator::Exit);
            }
            // dst-less instructions ----------------------------------------
            Tok::Ident(kw) if kw == "store" => {
                let space = parse_space(p)?;
                p.expect(Tok::LBracket)?;
                let addr = p.expect_operand()?;
                p.expect(Tok::RBracket)?;
                p.expect(Tok::Comma)?;
                let value = p.expect_operand()?;
                block.insts.push(Inst::Store { space, addr, value });
            }
            Tok::Ident(kw) if kw == "call" => {
                p.expect(Tok::At)?;
                let callee = p.expect_ident()?;
                p.expect(Tok::LParen)?;
                let mut args = Vec::new();
                if p.peek() != Some(&Tok::RParen) {
                    args.push(p.expect_operand()?);
                    while p.eat(&Tok::Comma) {
                        args.push(p.expect_operand()?);
                    }
                }
                p.expect(Tok::RParen)?;
                let mut rets = Vec::new();
                if p.eat(&Tok::Arrow) {
                    p.expect(Tok::LParen)?;
                    rets.push(p.expect_reg()?);
                    while p.eat(&Tok::Comma) {
                        rets.push(p.expect_reg()?);
                    }
                    p.expect(Tok::RParen)?;
                }
                block.insts.push(Inst::Call { func: parse_func_ref(callee), args, rets });
            }
            Tok::Ident(kw) if kw == "work" => {
                let amount = p.expect_int()?;
                if amount < 0 {
                    return Err(ParseError::new(line, "work amount must be non-negative"));
                }
                block.insts.push(Inst::Work { amount: amount as u32 });
            }
            Tok::Ident(kw) if kw == "nop" => block.insts.push(Inst::Nop),
            Tok::Ident(kw) if kw == "syncthreads" => block.insts.push(Inst::SyncThreads),
            Tok::Ident(kw) if kw == "rngseed" => {
                let src = p.expect_operand()?;
                block.insts.push(Inst::SeedRng { src });
            }
            Tok::Ident(kw) if kw == "join" => {
                block.insts.push(Inst::Barrier(BarrierOp::Join(p.expect_barrier_ref()?)));
            }
            Tok::Ident(kw) if kw == "wait" => {
                block.insts.push(Inst::Barrier(BarrierOp::Wait(p.expect_barrier_ref()?)));
            }
            Tok::Ident(kw) if kw == "cancel" => {
                block.insts.push(Inst::Barrier(BarrierOp::Cancel(p.expect_barrier_ref()?)));
            }
            Tok::Ident(kw) if kw == "rejoin" => {
                block.insts.push(Inst::Barrier(BarrierOp::Rejoin(p.expect_barrier_ref()?)));
            }
            Tok::Ident(kw) if kw == "bcopy" => {
                let dst = p.expect_barrier_ref()?;
                p.expect(Tok::Comma)?;
                let src = p.expect_barrier_ref()?;
                block.insts.push(Inst::Barrier(BarrierOp::Copy { dst, src }));
            }
            // dst = ... instructions ----------------------------------------
            Tok::Reg(n) => {
                let dst = Reg(n);
                p.expect(Tok::Eq)?;
                let inst = parse_rhs(p, dst)?;
                block.insts.push(inst);
            }
            other => {
                return Err(ParseError::new(
                    line,
                    format!("unexpected token {other} in block body"),
                ))
            }
        }
    }
}

fn parse_space(p: &mut Parser) -> Result<MemSpace, ParseError> {
    let line = p.line();
    match p.expect_ident()?.as_str() {
        "global" => Ok(MemSpace::Global),
        "local" => Ok(MemSpace::Local),
        other => Err(ParseError::new(line, format!("unknown memory space `{other}`"))),
    }
}

fn parse_rhs(p: &mut Parser, dst: Reg) -> Result<Inst, ParseError> {
    let line = p.line();
    let mnem = p.expect_ident()?;

    if let Some(&op) = BinOp::all().iter().find(|op| op.mnemonic() == mnem) {
        let lhs = p.expect_operand()?;
        p.expect(Tok::Comma)?;
        let rhs = p.expect_operand()?;
        return Ok(Inst::Bin { op, dst, lhs, rhs });
    }
    if let Some(&op) = UnOp::all().iter().find(|op| op.mnemonic() == mnem) {
        let src = p.expect_operand()?;
        return Ok(Inst::Un { op, dst, src });
    }
    match mnem.as_str() {
        "mov" => Ok(Inst::Mov { dst, src: p.expect_operand()? }),
        "sel" => {
            let cond = p.expect_operand()?;
            p.expect(Tok::Comma)?;
            let if_true = p.expect_operand()?;
            p.expect(Tok::Comma)?;
            let if_false = p.expect_operand()?;
            Ok(Inst::Sel { dst, cond, if_true, if_false })
        }
        "load" => {
            let space = parse_space(p)?;
            p.expect(Tok::LBracket)?;
            let addr = p.expect_operand()?;
            p.expect(Tok::RBracket)?;
            Ok(Inst::Load { dst, space, addr })
        }
        "atomic_add" => {
            p.expect(Tok::LBracket)?;
            let addr = p.expect_operand()?;
            p.expect(Tok::RBracket)?;
            p.expect(Tok::Comma)?;
            let value = p.expect_operand()?;
            Ok(Inst::AtomicAdd { dst, addr, value })
        }
        "special" => {
            p.expect(Tok::Dot)?;
            let line = p.line();
            let kind = match p.expect_ident()?.as_str() {
                "tid" => SpecialValue::Tid,
                "lane" => SpecialValue::LaneId,
                "warp" => SpecialValue::WarpId,
                "nthreads" => SpecialValue::NumThreads,
                "warpwidth" => SpecialValue::WarpWidth,
                other => {
                    return Err(ParseError::new(line, format!("unknown special value `{other}`")))
                }
            };
            Ok(Inst::Special { dst, kind })
        }
        "rng" => {
            p.expect(Tok::Dot)?;
            let line = p.line();
            let kind = match p.expect_ident()?.as_str() {
                "u63" => RngKind::U63,
                "unit" => RngKind::Unit,
                other => return Err(ParseError::new(line, format!("unknown rng kind `{other}`"))),
            };
            Ok(Inst::Rng { dst, kind })
        }
        "arrived" => {
            let bar = p.expect_barrier_ref()?;
            Ok(Inst::Barrier(BarrierOp::ArrivedCount { dst, bar }))
        }
        "vote" => {
            let pred = p.expect_operand()?;
            Ok(Inst::Vote { dst, pred })
        }
        other => Err(ParseError::new(line, format!("unknown instruction `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
kernel @k(params=1, regs=6, barriers=2, entry=bb0) {
  predict bb0 -> label L1 threshold=16
bb0:
  %r1 = add %r0, 1
  %r2 = lt %r1, 10
  join b0
  brdiv %r2, bb1, bb2
bb1 (label=L1, roi):
  %r3 = rng.unit
  wait b0
  work 40
  jmp bb2
bb2:
  %r4 = special.tid
  store global[%r4], %r1
  exit
}
"#;

    #[test]
    fn parses_sample() {
        let m = parse_module(SAMPLE).unwrap();
        assert_eq!(m.functions.len(), 1);
        let f = &m.functions[crate::ids::FuncId(0)];
        assert_eq!(f.name, "k");
        assert_eq!(f.num_regs, 6);
        assert_eq!(f.num_barriers, 2);
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.predictions.len(), 1);
        assert_eq!(f.predictions[0].threshold, Some(16));
        let bb1 = f.block_by_label("L1").unwrap();
        assert!(f.blocks[bb1].roi);
    }

    #[test]
    fn round_trips_through_display() {
        let m = parse_module(SAMPLE).unwrap();
        let printed = m.to_string();
        let reparsed = parse_module(&printed).unwrap();
        assert_eq!(m, reparsed);
    }

    #[test]
    fn parses_negative_and_float_immediates() {
        let src = "kernel @k(params=0, regs=2, barriers=0, entry=bb0) {\nbb0:\n  %r0 = mov -5\n  %r1 = mov 0.25f\n  exit\n}\n";
        let m = parse_module(src).unwrap();
        let f = &m.functions[crate::ids::FuncId(0)];
        assert_eq!(
            f.blocks[f.entry].insts[0],
            Inst::Mov { dst: Reg(0), src: Operand::imm_i64(-5) }
        );
        assert_eq!(
            f.blocks[f.entry].insts[1],
            Inst::Mov { dst: Reg(1), src: Operand::imm_f64(0.25) }
        );
    }

    #[test]
    fn error_carries_line_number() {
        let src = "kernel @k(params=0, regs=0, barriers=0, entry=bb0) {\nbb0:\n  %r0 = bogus 1\n  exit\n}\n";
        let err = parse_module(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn missing_block_is_reported() {
        let src = "kernel @k(params=0, regs=0, barriers=0, entry=bb0) {\nbb0:\n  jmp bb2\nbb2:\n  exit\n}\n";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("bb1 is missing"), "{err}");
    }

    #[test]
    fn duplicate_block_is_reported() {
        let src =
            "kernel @k(params=0, regs=0, barriers=0, entry=bb0) {\nbb0:\n  exit\nbb0:\n  exit\n}\n";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("duplicate block"));
    }

    #[test]
    fn parse_and_link_reports_undefined_callee() {
        let src = "kernel @k(params=0, regs=0, barriers=0, entry=bb0) {\nbb0:\n  call @nope()\n  exit\n}\n";
        let err = parse_and_link(src).unwrap_err();
        assert!(err.message.contains("undefined function"));
    }

    #[test]
    fn parses_calls_with_rets() {
        let src = "kernel @k(params=0, regs=4, barriers=0, entry=bb0) {\nbb0:\n  call @f(%r0, 3) -> (%r1, %r2)\n  exit\n}\ndevice @f(params=2, regs=2, barriers=0, entry=bb0) {\nbb0:\n  ret %r0, %r1\n}\n";
        let m = parse_and_link(src).unwrap();
        assert_eq!(m.functions.len(), 2);
    }
}
