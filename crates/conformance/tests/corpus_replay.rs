//! Replays the fixed corpora on every run, independent of the random
//! case schedule: the named edge-case specs and the ingested proptest
//! regression file.

use conformance::corpus::corpus;
use conformance::oracle::check;
use conformance::regressions;

#[test]
fn named_corpus_passes_the_oracle() {
    let mut ran = Vec::new();
    for (name, spec) in corpus() {
        if let Err(violation) = check(&spec) {
            panic!("corpus case {name:?} violated SR equivalence:\n{violation}");
        }
        ran.push(name);
    }
    assert!(ran.len() >= 8, "corpus unexpectedly small: {ran:?}");
}

#[test]
fn interproc_corpus_case_actually_runs_the_interproc_variant() {
    let (_, spec) = corpus()
        .into_iter()
        .find(|(name, _)| *name == "interproc_common_call")
        .expect("corpus must pin the Figure 2b shape");
    let report = check(&spec).expect("interproc corpus case must pass");
    assert!(
        report.variants_run.iter().any(|v| v == "spec-dynamic"),
        "interprocedural prediction was skipped rather than compiled: {report:?}"
    );
}

#[test]
fn repair_variants_pass_the_oracle_when_enabled() {
    // Env mutation is process-global: any concurrently running check()
    // simply gains the melding variants, which must pass regardless.
    std::env::set_var("CONFORMANCE_REPAIRS", "meld sr+meld");
    let outcome = (|| {
        for (name, spec) in corpus().into_iter().take(4) {
            let report = check(&spec).map_err(|v| format!("corpus case {name:?}:\n{v}"))?;
            for repair in ["repair-meld", "repair-sr+meld"] {
                if !report.variants_run.iter().any(|v| v == repair) {
                    return Err(format!(
                        "corpus case {name:?} never ran the {repair} variant: {report:?}"
                    ));
                }
            }
        }
        Ok(())
    })();
    std::env::remove_var("CONFORMANCE_REPAIRS");
    if let Err(msg) = outcome {
        panic!("{msg}");
    }
}

#[test]
fn regression_file_cases_replay_clean() {
    let cases = regressions::cases().expect("regression corpus must parse");
    assert!(!cases.is_empty());
    for (i, case) in cases.iter().enumerate() {
        if let Err(msg) = regressions::replay(case) {
            panic!("regression case #{i} ({case:?}) disagreed with the analyses:\n{msg}");
        }
    }
}
