//! Negative test for the barrier-safety lint: a correctly-compiled
//! module must lint clean, and deliberately corrupting its barrier
//! placement must produce an error-severity finding. This is the
//! end-to-end check that the pipeline's debug-assert stage would catch
//! a transform that emits a Wait with no reaching Join.

use conformance::build_module;
use conformance::corpus::corpus;
use simt_ir::{BarrierOp, Inst};
use specrecon_core::{compile, lint_errors, CompileOptions, LintRule, LintSeverity};

fn compiled_speculative() -> specrecon_core::Compiled {
    let (_, spec) = corpus()
        .into_iter()
        .find(|(name, _)| *name == "empty_else_arm")
        .expect("corpus must contain the empty_else_arm case");
    let module = build_module(&spec);
    let mut opts = CompileOptions::speculative();
    opts.warp_width = spec.warp_width as u32;
    opts.lint = false;
    compile(&module, &opts).expect("corpus case must compile speculatively")
}

#[test]
fn well_formed_output_lints_clean() {
    let compiled = compiled_speculative();
    assert_eq!(lint_errors(&compiled), Vec::<String>::new());
}

#[test]
fn corrupted_barrier_placement_is_flagged() {
    let mut compiled = compiled_speculative();

    // Strip every Join/Rejoin from the kernel, leaving its Waits
    // orphaned — the canonical "transform forgot the Join" corruption.
    let mut removed = 0usize;
    for (_, f) in compiled.module.functions.iter_mut() {
        for (_, block) in f.blocks.iter_mut() {
            let before = block.insts.len();
            block
                .insts
                .retain(|i| !matches!(i, Inst::Barrier(BarrierOp::Join(_) | BarrierOp::Rejoin(_))));
            removed += before - block.insts.len();
        }
    }
    assert!(removed > 0, "speculative compilation should have inserted joins");

    let findings = specrecon_core::lint_compiled(&compiled);
    assert!(
        findings
            .iter()
            .any(|f| f.severity == LintSeverity::Error && f.rule == LintRule::WaitNeverJoined),
        "orphaned waits must be flagged as errors, got: {findings:?}"
    );
    assert!(!lint_errors(&compiled).is_empty());
}

#[test]
fn pipeline_lint_stage_rejects_corruption_end_to_end() {
    // The same corruption, but exercised through `compile` itself: the
    // join exists (so the module-level verifier is satisfied) yet sits
    // *after* the wait, so no path establishes the barrier before it —
    // exactly the flow-sensitive case only the lint stage can reject.
    let src = "kernel @k(params=0, regs=1, barriers=1, entry=bb0) {\n\
               bb0:\n  wait b0\n  jmp bb1\n\
               bb1:\n  join b0\n  wait b0\n  exit\n}\n";
    let module = simt_ir::parse_module(src).unwrap();
    let mut opts = CompileOptions::baseline();
    opts.lint = true;
    match compile(&module, &opts) {
        Err(specrecon_core::PassError::Lint(msg)) => {
            assert!(msg.contains("wait-never-joined"), "unexpected lint message: {msg}");
        }
        other => panic!("expected a lint failure, got {other:?}"),
    }
}
