//! Differential conformance for the memory-hierarchy cost model's
//! degenerate configurations.
//!
//! The hierarchy ([`SimConfig::mem`]) replaces both legacy global-access
//! cost paths — the flat coalescing fold and the single-level
//! [`CacheConfig`] model — and claims two exact degenerate cases:
//!
//! - [`MemHierarchy::flat`] (no cache levels) reproduces the flat
//!   coalescing cost `mem_base + mem_segment * (segments - 1)`;
//! - [`MemHierarchy::l1`] (one level mirroring a `CacheConfig`)
//!   reproduces the legacy cache cost and hit/miss counters.
//!
//! For random programs from the conformance genome, this test runs the
//! legacy config and its degenerate hierarchy twin on **all three
//! engines** (tree-walking reference, decoded hot loop, seed-sweep
//! cohort) under **every scheduler policy** and asserts bit-identical
//! results: metrics (with the hierarchy's own per-level counters
//! stripped — they are new observability, not a cost change), final
//! global memory, and errors.
//!
//! Case count defaults to 64 and is capped by `CONFORMANCE_CASES`.

use conformance::oracle::POLICIES;
use conformance::program::spec_strategy;
use conformance::{build_module, ProgramSpec};
use proptest::prelude::*;
use simt_sim::{
    run, run_reference, run_sweep, CacheConfig, Launch, MemHierarchy, MemStats, Metrics, SimConfig,
    SimOutput, SweepLaunch, DEFAULT_SEED,
};

/// Instances per sweep comparison (small: the sweep engine's own
/// differential covers cohort mechanics; this test targets the cost
/// model).
const INSTANCES: u64 = 4;

/// Cycle budget per run (mirrors the oracle's).
const MAX_CYCLES: u64 = 5_000_000;

/// Metrics with the hierarchy-only counters removed, so a legacy run
/// (which never populates them) compares equal to its hierarchy twin.
fn strip_mem(m: &Metrics) -> Metrics {
    let mut m = m.clone();
    m.mem = MemStats::default();
    m
}

fn compare_outputs(
    legacy: &Result<SimOutput, simt_sim::SimError>,
    hier: &Result<SimOutput, simt_sim::SimError>,
    what: &str,
) -> Result<(), String> {
    match (legacy, hier) {
        (Ok(l), Ok(h)) => {
            if l.metrics != strip_mem(&h.metrics) {
                return Err(format!(
                    "{what}: metrics diverge\nlegacy: {:?}\nhier:   {:?}",
                    l.metrics, h.metrics
                ));
            }
            if l.global_mem != h.global_mem {
                return Err(format!("{what}: global memory diverges"));
            }
            Ok(())
        }
        (Err(a), Err(b)) if a == b => Ok(()),
        (a, b) => Err(format!(
            "{what}: outcomes diverge\nlegacy: {:?}\nhier:   {:?}",
            a.as_ref().map(|_| "ok"),
            b.as_ref().map(|_| "ok"),
        )),
    }
}

/// Runs `legacy_cfg` and `hier_cfg` over the spec's program on all
/// three engines and demands identical observable results.
fn check_degenerate(
    spec: &ProgramSpec,
    legacy_cfg: &SimConfig,
    hier_cfg: &SimConfig,
    what: &str,
) -> Result<(), String> {
    let module = build_module(spec);
    let mut base = Launch::new("main", spec.warps);
    base.global_mem = vec![simt_ir::Value::I64(0); conformance::build::mem_cells(spec)];

    // Decoded hot loop.
    let l = run(&module, legacy_cfg, &base);
    let h = run(&module, hier_cfg, &base);
    compare_outputs(&l, &h, &format!("{what}/decoded"))?;

    // Tree-walking reference oracle.
    let l = run_reference(&module, legacy_cfg, &base);
    let h = run_reference(&module, hier_cfg, &base);
    compare_outputs(&l, &h, &format!("{what}/reference"))?;

    // Seed-sweep cohort, per seed.
    let seed_lo = DEFAULT_SEED.wrapping_add(spec.seed & 0xFFFF);
    let sweep = SweepLaunch::new(base, seed_lo, seed_lo + INSTANCES);
    let ls = run_sweep(&module, legacy_cfg, &sweep)
        .map_err(|e| format!("{what}/sweep: legacy sweep failed: {e}"))?;
    let hs = run_sweep(&module, hier_cfg, &sweep)
        .map_err(|e| format!("{what}/sweep: hier sweep failed: {e}"))?;
    for (lr, hr) in ls.runs.iter().zip(hs.runs.iter()) {
        compare_outputs(&lr.result, &hr.result, &format!("{what}/sweep seed {}", lr.seed))?;
    }
    Ok(())
}

fn check(spec: &ProgramSpec) -> Result<(), String> {
    for policy in POLICIES {
        let base_cfg = SimConfig {
            warp_width: spec.warp_width,
            scheduler: policy,
            max_cycles: MAX_CYCLES,
            ..SimConfig::default()
        };

        // Depth 0: flat coalescing fold vs an empty-levels hierarchy.
        let legacy = base_cfg.clone();
        let hier =
            SimConfig { mem: Some(MemHierarchy::flat(&base_cfg.latency)), ..base_cfg.clone() };
        check_degenerate(spec, &legacy, &hier, &format!("{policy:?}/flat"))?;

        // Depth 1: legacy CacheConfig vs its one-level hierarchy twin.
        let cache = CacheConfig::default();
        let legacy = SimConfig { cache: Some(cache.clone()), ..base_cfg.clone() };
        let hier = SimConfig {
            mem: Some(MemHierarchy::l1(&cache, &base_cfg.latency)),
            ..base_cfg.clone()
        };
        check_degenerate(spec, &legacy, &hier, &format!("{policy:?}/l1"))?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: conformance::configured_cases(64),
        .. ProptestConfig::default()
    })]

    #[test]
    fn degenerate_hierarchies_reproduce_legacy_costs(spec in spec_strategy()) {
        if let Err(violation) = check(&spec) {
            prop_assert!(
                false,
                "generator seed {:#018x} violated hierarchy degeneracy:\n{violation}",
                spec.seed
            );
        }
    }
}

/// Replays a single genome seed from `CONFORMANCE_SEED` (mirrors
/// `fuzz_equivalence::replay_env_seed`).
#[test]
fn replay_env_seed() {
    let Some(seed) = std::env::var("CONFORMANCE_SEED").ok().and_then(|v| {
        let v = v.trim();
        v.strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16).ok())
            .unwrap_or_else(|| v.parse().ok())
    }) else {
        return;
    };
    let spec = ProgramSpec::generate(seed);
    if let Err(violation) = check(&spec) {
        panic!("seed {seed:#018x}:\n{violation}");
    }
}
