//! The main conformance fuzz loop.
//!
//! Generates random divergent programs and checks every SR transform
//! variant against the PDOM baseline across all scheduler policies
//! (see `conformance::oracle`). The case count defaults to 256 and is
//! capped by the `CONFORMANCE_CASES` environment variable (CI's smoke
//! job sets a small value). On failure the spec is minimized with the
//! genome shrinker and dumped to `$CONFORMANCE_ARTIFACT_DIR` (or
//! `target/conformance/`) so the case can be replayed from its seed.

use conformance::program::spec_strategy;
use conformance::{build_module, check, shrink, ProgramSpec};
use proptest::prelude::*;

fn artifact_dir() -> std::path::PathBuf {
    match std::env::var_os("CONFORMANCE_ARTIFACT_DIR") {
        Some(d) => std::path::PathBuf::from(d),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/conformance"),
    }
}

fn write_artifact(original: &ProgramSpec, minimized: &ProgramSpec, violation: &str) -> String {
    let dir = artifact_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return format!("<failed to create {}: {e}>", dir.display());
    }
    let path = dir.join(format!("seed-{:016x}.txt", original.seed));
    let minimized_violation =
        check(minimized).err().unwrap_or_else(|| "<minimized spec no longer fails>".to_string());
    let body = format!(
        "conformance failure\n===================\n\
         replay: CONFORMANCE_SEED={:#018x} cargo test -p conformance --test fuzz_equivalence -- replay_env_seed\n\n\
         original spec:\n{original:#?}\n\noriginal violation:\n{violation}\n\n\
         minimized spec:\n{minimized:#?}\n\nminimized module:\n{}\n\nminimized violation:\n{minimized_violation}\n",
        original.seed,
        build_module(minimized),
    );
    match std::fs::write(&path, body) {
        Ok(()) => path.display().to_string(),
        Err(e) => format!("<failed to write {}: {e}>", path.display()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: conformance::configured_cases(256),
        .. ProptestConfig::default()
    })]

    #[test]
    fn every_variant_matches_the_baseline(spec in spec_strategy()) {
        if let Err(violation) = check(&spec) {
            let minimized = shrink(&spec, conformance::shrink::DEFAULT_BUDGET);
            let artifact = write_artifact(&spec, &minimized, &violation);
            prop_assert!(
                false,
                "generator seed {:#018x} violated SR equivalence:\n{}\nminimized artifact: {}",
                spec.seed, violation, artifact
            );
        }
    }
}

/// Replays a single seed from `CONFORMANCE_SEED` (used by the artifact
/// instructions); a no-op when the variable is unset.
#[test]
fn replay_env_seed() {
    let Some(seed) = std::env::var("CONFORMANCE_SEED").ok().and_then(|v| {
        let v = v.trim();
        v.strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16).ok())
            .unwrap_or_else(|| v.parse().ok())
    }) else {
        return;
    };
    let spec = ProgramSpec::generate(seed);
    if let Err(violation) = check(&spec) {
        panic!("seed {seed:#018x}:\n{violation}");
    }
}
