//! Differential conformance for the reconvergence-model axis.
//!
//! Two claims, for random programs from the conformance genome:
//!
//! 1. **`BarrierFile` is the pre-existing engine.** With the default
//!    model the decoded engine and the tree-walking reference agree
//!    bit-for-bit — metrics, final global memory, errors — and the new
//!    per-model counters ([`Metrics::recon`]) stay zero. The recon
//!    plumbing must be unobservable on the Volta path.
//! 2. **Hardware repair is value-equal to compiler repair.** The same
//!    program — both the raw PDOM module and, when the compiler
//!    accepts it, its SR-transformed twin — lands on the same final
//!    global memory under the IPDOM stack and warp-split models as
//!    under the barrier file, for every scheduler policy and launch
//!    seed, and every run terminates. On the stack model the push/pop
//!    ledger must balance. This is the triangulation: pre-Volta
//!    hardware reconvergence, Volta barriers, and speculative
//!    reconvergence barriers (inert on pre-Volta) are three routes to
//!    the same architectural result.
//!
//! Case count defaults to 64 and is capped by `CONFORMANCE_CASES`.

use conformance::oracle::POLICIES;
use conformance::program::spec_strategy;
use conformance::{build_module, ProgramSpec};
use proptest::prelude::*;
use simt_ir::{Module, Value};
use simt_sim::{run, run_reference, Launch, ReconvergenceModel, SimConfig};
use specrecon_core::{compile, CompileOptions, PassError};

/// Cycle budget per run (mirrors the oracle's).
const MAX_CYCLES: u64 = 5_000_000;

/// The hardware models under test: the IPDOM stack, bare warp
/// splitting, and warp splitting with a re-fusion window plus subwarp
/// compaction.
const HW_MODELS: [ReconvergenceModel; 3] = [
    ReconvergenceModel::IpdomStack,
    ReconvergenceModel::WarpSplit { window: 0, compact: false },
    ReconvergenceModel::WarpSplit { window: 4, compact: true },
];

fn cfg(
    spec: &ProgramSpec,
    policy: simt_sim::SchedulerPolicy,
    recon: ReconvergenceModel,
) -> SimConfig {
    SimConfig {
        warp_width: spec.warp_width,
        scheduler: policy,
        max_cycles: MAX_CYCLES,
        recon,
        ..SimConfig::default()
    }
}

fn launch(spec: &ProgramSpec, seed: u64) -> Launch {
    let mut l = Launch::new("main", spec.warps);
    l.global_mem = vec![Value::I64(0); conformance::build::mem_cells(spec)];
    l.seed = seed;
    l
}

/// The modules to cross with the models: the raw PDOM program, plus
/// its SR-transformed twin when the compiler accepts it (a rejection
/// is a legitimate skip, exactly as in the oracle).
fn modules(spec: &ProgramSpec) -> Result<Vec<(&'static str, Module)>, String> {
    let module = build_module(spec);
    let mut out = vec![("pdom", module.clone())];
    let mut opts = CompileOptions::speculative();
    opts.warp_width = spec.warp_width as u32;
    opts.lint = false;
    match compile(&module, &opts) {
        Ok(c) => out.push(("spec", c.module)),
        Err(PassError::BadPrediction(_) | PassError::SpeculativeConflict(_)) => {}
        Err(e) => return Err(format!("speculative compile failed unexpectedly: {e}")),
    }
    Ok(out)
}

fn check_models(spec: &ProgramSpec) -> Result<(), String> {
    let seeds =
        [spec.seed ^ 0xA5A5_5A5A_A5A5_5A5A, spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1];
    for (name, module) in modules(spec)? {
        for &policy in &POLICIES {
            for &ls in &seeds {
                let l = launch(spec, ls);

                // Claim 1: BarrierFile decoded == reference, bit for bit,
                // with the per-model counters silent.
                let volta_cfg = cfg(spec, policy, ReconvergenceModel::BarrierFile);
                let decoded = run(&module, &volta_cfg, &l);
                let reference = run_reference(&module, &volta_cfg, &l);
                let volta = match (&decoded, &reference) {
                    (Ok(d), Ok(r)) => {
                        if d.metrics != r.metrics {
                            return Err(format!(
                                "[{name}] {policy:?} seed {ls:#x}: decoded/reference metrics \
                                 diverge under barrier-file\ndecoded:   {:?}\nreference: {:?}",
                                d.metrics, r.metrics
                            ));
                        }
                        if d.global_mem != r.global_mem {
                            return Err(format!(
                                "[{name}] {policy:?} seed {ls:#x}: decoded/reference memory \
                                 diverges under barrier-file"
                            ));
                        }
                        if !d.metrics.recon.is_zero() {
                            return Err(format!(
                                "[{name}] {policy:?} seed {ls:#x}: barrier-file run touched \
                                 hardware-model counters: {:?}",
                                d.metrics.recon
                            ));
                        }
                        d
                    }
                    (Err(a), Err(b)) if a == b => {
                        return Err(format!(
                            "[{name}] {policy:?} seed {ls:#x}: generated program failed: {a}"
                        ));
                    }
                    (a, b) => {
                        return Err(format!(
                            "[{name}] {policy:?} seed {ls:#x}: engines disagree under \
                             barrier-file\ndecoded:   {:?}\nreference: {:?}",
                            a.as_ref().map(|_| "ok"),
                            b.as_ref().map(|_| "ok"),
                        ));
                    }
                };

                // Claim 2: every hardware model reaches the same memory.
                for &model in &HW_MODELS {
                    let out = run(&module, &cfg(spec, policy, model), &l).map_err(|e| {
                        format!(
                            "[{name}] {policy:?} seed {ls:#x}: run failed under {}: {e}\n\
                                 module:\n{module}",
                            model.spec()
                        )
                    })?;
                    if out.global_mem != volta.global_mem {
                        let cell = out
                            .global_mem
                            .iter()
                            .zip(&volta.global_mem)
                            .position(|(a, b)| a != b)
                            .unwrap_or(usize::MAX);
                        return Err(format!(
                            "[{name}] {policy:?} seed {ls:#x}: {} memory diverges from \
                             barrier-file at cell {cell}\nmodule:\n{module}",
                            model.spec()
                        ));
                    }
                    if matches!(model, ReconvergenceModel::IpdomStack)
                        && out.metrics.recon.stack_pushes != out.metrics.recon.stack_pops
                    {
                        return Err(format!(
                            "[{name}] {policy:?} seed {ls:#x}: unbalanced ipdom stack: \
                             {} pushes, {} pops",
                            out.metrics.recon.stack_pushes, out.metrics.recon.stack_pops
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: conformance::configured_cases(64),
        .. ProptestConfig::default()
    })]

    #[test]
    fn hardware_models_match_the_barrier_file(spec in spec_strategy()) {
        if let Err(violation) = check_models(&spec) {
            prop_assert!(
                false,
                "generator seed {:#018x} violated reconvergence-model equivalence:\n{violation}",
                spec.seed
            );
        }
    }
}

/// Replays a single genome seed from `CONFORMANCE_SEED` (mirrors
/// `fuzz_equivalence::replay_env_seed`).
#[test]
fn replay_env_seed() {
    let Some(seed) = std::env::var("CONFORMANCE_SEED").ok().and_then(|v| {
        let v = v.trim();
        v.strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16).ok())
            .unwrap_or_else(|| v.parse().ok())
    }) else {
        return;
    };
    let spec = ProgramSpec::generate(seed);
    if let Err(violation) = check_models(&spec) {
        panic!("seed {seed:#018x}:\n{violation}");
    }
}
