//! Differential conformance for the lockstep seed-sweep engine.
//!
//! For random programs from the conformance genome, runs a seed sweep
//! ([`simt_sim::run_sweep`]) and N independent scalar runs of the same
//! seeds under **every scheduler policy × reconvergence model**, and
//! asserts the sweep's per-seed results are bit-identical: metrics,
//! final global memory, and errors. This is the enforcement teeth
//! behind the sweep engine's exactness contract — lockstep execution,
//! detach fallback, and group-merge rejoin must be unobservable under
//! the barrier file, and the hardware models' scalar fallback must be
//! exact by the same standard.
//!
//! Case count defaults to 96 and is capped by `CONFORMANCE_CASES`,
//! like the main fuzz loop.

use conformance::oracle::POLICIES;
use conformance::program::spec_strategy;
use conformance::{build_module, ProgramSpec};
use proptest::prelude::*;
use simt_sim::{run, run_sweep, Launch, ReconvergenceModel, SimConfig, SweepLaunch, DEFAULT_SEED};

/// Every reconvergence model crosses the sweep contract: the barrier
/// file exercises the lockstep cohort, the hardware models exercise
/// the per-seed scalar fallback.
const MODELS: [ReconvergenceModel; 3] = [
    ReconvergenceModel::BarrierFile,
    ReconvergenceModel::IpdomStack,
    ReconvergenceModel::WarpSplit { window: 4, compact: true },
];

/// Instances per sweep: enough to exercise detach/rejoin across a
/// cohort, small enough to keep the case budget useful.
const INSTANCES: u64 = 6;

/// Cycle budget per run (mirrors the oracle's).
const MAX_CYCLES: u64 = 5_000_000;

fn check_sweep(spec: &ProgramSpec) -> Result<(), String> {
    let module = build_module(spec);
    // Root the range at the shared default seed, displaced per spec so
    // different programs sweep different seed neighborhoods.
    let seed_lo = DEFAULT_SEED.wrapping_add(spec.seed & 0xFFFF);
    for policy in POLICIES {
        for model in MODELS {
            let what = format!("{policy:?}/{}", model.spec());
            let cfg = SimConfig {
                warp_width: spec.warp_width,
                scheduler: policy,
                max_cycles: MAX_CYCLES,
                recon: model,
                ..SimConfig::default()
            };
            let mut base = Launch::new("main", spec.warps);
            base.global_mem = vec![simt_ir::Value::I64(0); conformance::build::mem_cells(spec)];
            let sweep = SweepLaunch::new(base.clone(), seed_lo, seed_lo + INSTANCES);
            let out = run_sweep(&module, &cfg, &sweep)
                .map_err(|e| format!("{what}: whole sweep failed: {e}"))?;
            if out.runs.len() != INSTANCES as usize {
                return Err(format!("{what}: {} runs for {INSTANCES} seeds", out.runs.len()));
            }
            // The barrier file runs the lockstep cohort; every other
            // model must take the exact per-seed scalar fallback.
            if matches!(model, ReconvergenceModel::BarrierFile) {
                if out.stats.scalar_steps != 0 {
                    return Err(format!(
                        "{what}: barrier-file sweep took {} scalar steps",
                        out.stats.scalar_steps
                    ));
                }
            } else if out.stats.lockstep_issues != 0 || out.stats.forks != 0 {
                return Err(format!(
                    "{what}: hardware-model sweep ran the lockstep cohort \
                     ({} issues, {} forks)",
                    out.stats.lockstep_issues, out.stats.forks
                ));
            }
            for run_entry in &out.runs {
                let mut launch = base.clone();
                launch.seed = run_entry.seed;
                let scalar = run(&module, &cfg, &launch);
                match (&run_entry.result, &scalar) {
                    (Ok(s), Ok(r)) => {
                        if s.metrics != r.metrics {
                            return Err(format!(
                                "{what} seed {}: metrics diverge\nsweep:  {:?}\nscalar: {:?}",
                                run_entry.seed, s.metrics, r.metrics
                            ));
                        }
                        if s.global_mem != r.global_mem {
                            let cell = s
                                .global_mem
                                .iter()
                                .zip(&r.global_mem)
                                .position(|(a, b)| a != b)
                                .unwrap_or(usize::MAX);
                            return Err(format!(
                                "{what} seed {}: global memory diverges at cell {cell}",
                                run_entry.seed
                            ));
                        }
                    }
                    (Err(a), Err(b)) => {
                        if a != b {
                            return Err(format!(
                                "{what} seed {}: errors diverge\nsweep:  {a}\nscalar: {b}",
                                run_entry.seed
                            ));
                        }
                    }
                    (a, b) => {
                        return Err(format!(
                            "{what} seed {}: sweep {} but scalar {}",
                            run_entry.seed,
                            if a.is_ok() { "succeeded" } else { "failed" },
                            if b.is_ok() { "succeeded" } else { "failed" },
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: conformance::configured_cases(96),
        .. ProptestConfig::default()
    })]

    #[test]
    fn sweep_is_bit_identical_to_independent_runs(spec in spec_strategy()) {
        if let Err(violation) = check_sweep(&spec) {
            prop_assert!(
                false,
                "generator seed {:#018x} violated sweep exactness:\n{violation}",
                spec.seed
            );
        }
    }
}

/// Replays a single genome seed from `CONFORMANCE_SEED` against the
/// sweep differential (mirrors `fuzz_equivalence::replay_env_seed`).
#[test]
fn replay_env_seed() {
    let Some(seed) = std::env::var("CONFORMANCE_SEED").ok().and_then(|v| {
        let v = v.trim();
        v.strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16).ok())
            .unwrap_or_else(|| v.parse().ok())
    }) else {
        return;
    };
    let spec = ProgramSpec::generate(seed);
    if let Err(violation) = check_sweep(&spec) {
        panic!("seed {seed:#018x}:\n{violation}");
    }
}
