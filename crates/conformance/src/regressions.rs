//! Regression-corpus ingestion (satellite of the conformance suite).
//!
//! The repository's root proptest suite persists minimized failure
//! cases to `tests/proptest_barrier_oracle.proptest-regressions`. The
//! vendored proptest core replays the *seed hashes* in that file, but
//! the hashes are only meaningful to the strategy that produced them.
//! The human-readable `# shrinks to …` annotation, however, fully
//! describes the minimized CFG — so this module parses those
//! annotations, rebuilds each CFG exactly as the original test did,
//! and re-checks both §4.2.1 dataflow analyses against the same
//! path-enumeration oracles. The corpus is embedded at compile time;
//! regressions stay pinned even if the proptest seed format changes.

use simt_analysis::{BarrierJoined, BarrierLiveness};
use simt_ir::{BarrierId, BarrierOp, BlockId, FuncKind, Function, Inst, Operand, Terminator};

/// Barriers per CFG, matching the original test's `NB`.
pub const NB: usize = 3;

/// The embedded regression corpus file.
const CORPUS: &str = include_str!("../../../tests/proptest_barrier_oracle.proptest-regressions");

/// One minimized regression case: the arguments the shrunk test ran
/// with.
#[derive(Clone, Debug, PartialEq)]
pub struct RegressionCase {
    /// Number of blocks actually instantiated.
    pub n: usize,
    /// Instruction templates, indexed modulo their length.
    pub blocks: Vec<Vec<Inst>>,
    /// `(then, else, is_branch)` link templates, indexed modulo length.
    pub links: Vec<(usize, usize, bool)>,
}

fn parse_inst(tok: &str) -> Result<Inst, String> {
    let tok = tok.trim();
    if tok == "Nop" {
        return Ok(Inst::Nop);
    }
    let inner = tok
        .strip_prefix("Barrier(")
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| format!("unrecognized instruction token {tok:?}"))?;
    let (op, rest) =
        inner.split_once('(').ok_or_else(|| format!("malformed barrier op {inner:?}"))?;
    let idx: u32 = rest
        .strip_suffix(')')
        .and_then(|s| s.strip_prefix('b'))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed barrier id in {inner:?}"))?;
    let b = BarrierId(idx);
    Ok(Inst::Barrier(match op {
        "Join" => BarrierOp::Join(b),
        "Rejoin" => BarrierOp::Rejoin(b),
        "Wait" => BarrierOp::Wait(b),
        "Cancel" => BarrierOp::Cancel(b),
        other => return Err(format!("unknown barrier op {other:?}")),
    }))
}

/// Splits the contents of a bracketed list at top-level commas.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' | '(' => {
                depth += 1;
                cur.push(c);
            }
            ']' | ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Extracts `key = [...]`, returning the bracketed body.
fn extract_list<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("{key} = [");
    let start = line.find(&pat).ok_or_else(|| format!("missing {key:?} in {line:?}"))? + pat.len();
    let mut depth = 1usize;
    for (off, c) in line[start..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(&line[start..start + off]);
                }
            }
            _ => {}
        }
    }
    Err(format!("unterminated {key:?} list in {line:?}"))
}

fn parse_case(annotation: &str) -> Result<RegressionCase, String> {
    let n: usize = annotation
        .split("n = ")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| format!("missing n in {annotation:?}"))?;

    let blocks_src = extract_list(annotation, "blocks")?;
    let mut blocks = Vec::new();
    for item in split_top_level(blocks_src) {
        let body = item
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| format!("malformed block list {item:?}"))?;
        let insts = if body.trim().is_empty() {
            Vec::new()
        } else {
            split_top_level(body).iter().map(|t| parse_inst(t)).collect::<Result<_, _>>()?
        };
        blocks.push(insts);
    }
    if blocks.is_empty() {
        return Err(format!("empty blocks list in {annotation:?}"));
    }

    let links_src = extract_list(annotation, "links")?;
    let mut links = Vec::new();
    for item in split_top_level(links_src) {
        let body = item
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| format!("malformed link tuple {item:?}"))?;
        let parts: Vec<&str> = body.split(',').map(str::trim).collect();
        if parts.len() != 3 {
            return Err(format!("link tuple arity != 3 in {item:?}"));
        }
        let a = parts[0].parse().map_err(|_| format!("bad link index {:?}", parts[0]))?;
        let b = parts[1].parse().map_err(|_| format!("bad link index {:?}", parts[1]))?;
        let branch = match parts[2] {
            "true" => true,
            "false" => false,
            other => return Err(format!("bad link flag {other:?}")),
        };
        links.push((a, b, branch));
    }
    if links.is_empty() {
        return Err(format!("empty links list in {annotation:?}"));
    }

    Ok(RegressionCase { n, blocks, links })
}

/// Parses every `# shrinks to …` annotation out of the embedded
/// corpus.
pub fn cases() -> Result<Vec<RegressionCase>, String> {
    let mut out = Vec::new();
    for line in CORPUS.lines() {
        let line = line.trim();
        if !line.starts_with("cc ") {
            continue;
        }
        let Some((_, annotation)) = line.split_once("# shrinks to ") else {
            continue;
        };
        out.push(parse_case(annotation)?);
    }
    Ok(out)
}

/// Rebuilds the CFG exactly as `tests/proptest_barrier_oracle.rs` does.
pub fn build_cfg(case: &RegressionCase) -> Function {
    let RegressionCase { n, blocks, links } = case;
    let n = *n;
    let mut f = Function::new("oracle", FuncKind::Kernel, 0);
    f.num_barriers = NB;
    for _ in 1..n {
        f.add_block(None);
    }
    for bi in 0..n {
        let id = BlockId::new(bi);
        f.blocks[id].insts = blocks[bi % blocks.len()].clone();
        let (a, b, branch) = links[bi % links.len()];
        f.blocks[id].term = if bi == n - 1 {
            Terminator::Exit
        } else if branch {
            Terminator::Branch {
                cond: Operand::imm_i64(1),
                then_bb: BlockId::new(a % n),
                else_bb: BlockId::new(b % n),
                divergent: false,
            }
        } else {
            Terminator::Jump(BlockId::new(a % n))
        };
    }
    f
}

fn apply_forward_ops(insts: &[Inst], state: &mut [bool; NB]) {
    for inst in insts {
        if let Inst::Barrier(op) = inst {
            match op {
                BarrierOp::Join(b) | BarrierOp::Rejoin(b) => state[b.index()] = true,
                BarrierOp::Wait(b) | BarrierOp::Cancel(b) => state[b.index()] = false,
                _ => {}
            }
        }
    }
}

fn brute_joined_in(f: &Function, max_visits: usize) -> Vec<[bool; NB]> {
    let n = f.blocks.len();
    let mut result = vec![[false; NB]; n];
    let mut stack: Vec<(BlockId, [bool; NB], Vec<usize>)> =
        vec![(f.entry, [false; NB], vec![0; n])];
    while let Some((b, state, mut visits)) = stack.pop() {
        if visits[b.index()] >= max_visits {
            continue;
        }
        visits[b.index()] += 1;
        for (i, &on) in state.iter().enumerate() {
            result[b.index()][i] |= on;
        }
        let mut out = state;
        apply_forward_ops(&f.blocks[b].insts, &mut out);
        for s in f.successors(b) {
            stack.push((s, out, visits.clone()));
        }
    }
    result
}

fn apply_backward_ops(insts: &[Inst], state: &mut [bool; NB]) {
    for inst in insts.iter().rev() {
        if let Inst::Barrier(op) = inst {
            match op {
                BarrierOp::Wait(b) => state[b.index()] = true,
                BarrierOp::Join(b) | BarrierOp::Rejoin(b) => state[b.index()] = false,
                _ => {}
            }
        }
    }
}

fn brute_live_in(f: &Function, max_visits: usize) -> Vec<[bool; NB]> {
    let n = f.blocks.len();
    let mut result = vec![[false; NB]; n];
    let mut stack: Vec<(BlockId, Vec<BlockId>, Vec<usize>)> = vec![(f.entry, vec![], vec![0; n])];
    while let Some((b, mut path, mut visits)) = stack.pop() {
        if visits[b.index()] >= max_visits {
            continue;
        }
        visits[b.index()] += 1;
        path.push(b);
        let succs = f.successors(b);
        if succs.is_empty() {
            let mut state = [false; NB];
            for &blk in path.iter().rev() {
                apply_backward_ops(&f.blocks[blk].insts, &mut state);
                for (i, &on) in state.iter().enumerate() {
                    result[blk.index()][i] |= on;
                }
            }
        } else {
            for s in succs {
                stack.push((s, path.clone(), visits.clone()));
            }
        }
    }
    result
}

/// Re-checks one regression case against both analyses; `Err` carries
/// the first disagreement.
#[allow(clippy::needless_range_loop)] // indices name blocks/barriers in the error text
pub fn replay(case: &RegressionCase) -> Result<(), String> {
    let f = build_cfg(case);
    let joined = BarrierJoined::analyze(&f);
    let brute_joined = brute_joined_in(&f, 4);
    for b in 0..case.n {
        let id = BlockId::new(b);
        if brute_joined[b] == [false; NB] && joined.joined_in(id).is_empty() {
            continue;
        }
        for bar in 0..NB {
            if joined.joined_in(id).contains(bar) != brute_joined[b][bar] {
                return Err(format!("joined_in(bb{b}, b{bar}) mismatch on:\n{f}"));
            }
        }
    }
    let live = BarrierLiveness::analyze(&f);
    let brute_live = brute_live_in(&f, 3);
    for b in 0..case.n {
        let id = BlockId::new(b);
        for bar in 0..NB {
            if brute_live[b][bar] && !live.live_in(id).contains(bar) {
                return Err(format!("live_in(bb{b}, b{bar}) missing on:\n{f}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses_and_is_nonempty() {
        let cs = cases().unwrap();
        assert!(!cs.is_empty(), "regression corpus should contain at least one case");
        let first = &cs[0];
        assert_eq!(first.n, 4);
        assert_eq!(first.blocks, vec![vec![Inst::Barrier(BarrierOp::Join(BarrierId(0)))]]);
        assert_eq!(first.links.len(), 6);
        assert_eq!(first.links[0], (3, 3, false));
    }

    #[test]
    fn parse_inst_handles_all_ops() {
        assert_eq!(parse_inst("Nop").unwrap(), Inst::Nop);
        assert_eq!(
            parse_inst("Barrier(Wait(b2))").unwrap(),
            Inst::Barrier(BarrierOp::Wait(BarrierId(2)))
        );
        assert_eq!(
            parse_inst("Barrier(Rejoin(b1))").unwrap(),
            Inst::Barrier(BarrierOp::Rejoin(BarrierId(1)))
        );
        assert!(parse_inst("Barrier(Explode(b9))").is_err());
    }
}
