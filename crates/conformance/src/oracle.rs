//! Semantic-equivalence oracle.
//!
//! For one [`ProgramSpec`] the oracle:
//!
//! 1. compiles the PDOM **baseline** and runs it under every scheduler
//!    policy × two launch seeds, checking the baseline itself is
//!    schedule-invariant (final global memory identical);
//! 2. compiles every applicable SR **variant** — soft/hard speculative
//!    barriers, static/dynamic deconfliction, barrier allocation,
//!    autodetect — and runs each under the same policy × seed matrix;
//! 3. asserts each variant's final global memory (which encodes every
//!    thread's architectural result, since the kernel epilogue stores
//!    the accumulator to `global[tid]`) is bit-identical to the
//!    baseline, that every run terminates, and that the transformed
//!    module is clean under the barrier-safety lint.
//!
//! A variant that the compiler legitimately rejects (`BadPrediction`
//! for a prediction outside a reducible region, or a
//! `SpeculativeConflict` that survives the dynamic-deconfliction
//! retry) is *skipped*, not failed — the oracle checks semantics of
//! accepted programs, not acceptance itself.
//!
//! The matrix has a fourth axis: the simulator's hardware
//! **reconvergence model** ([`recon_models`]). By default every run
//! uses the Volta barrier register file; setting
//! `CONFORMANCE_RECON_MODELS=all` crosses every (variant, policy,
//! seed) cell with the IPDOM stack and warp-split models too. This is
//! the triangulation between compiler-side repair (SR variants) and
//! hardware-side repair (stack reconvergence, warp splitting): every
//! combination must land on the same final memory. Generated programs
//! only place `syncthreads` in uniform top-level control, so the
//! pre-Volta models cannot legitimately deadlock — any hang is a bug.
//!
//! And a fifth axis: the compiler-side **repair strategy**
//! ([`repairs`]). Setting `CONFORMANCE_REPAIRS=all` appends a variant
//! per melding-bearing [`RepairStrategy`] (`meld`, `sr+meld`, `auto`)
//! to the list, so control-flow melding is triangulated against the
//! same baseline across every policy, seed, and hardware model.

use crate::build::{build_module, mem_cells};
use crate::program::ProgramSpec;
use simt_ir::{Module, Value};
use simt_sim::{run, Launch, ReconvergenceModel, SchedulerPolicy, SimConfig};
use specrecon_core::{
    compile, lint_errors, CompileOptions, Compiled, DeconflictMode, DetectOptions, PassError,
    RepairStrategy,
};

/// Every scheduler policy the simulator offers.
pub const POLICIES: [SchedulerPolicy; 5] = [
    SchedulerPolicy::Greedy,
    SchedulerPolicy::MinPc,
    SchedulerPolicy::MaxPc,
    SchedulerPolicy::MostThreads,
    SchedulerPolicy::RoundRobin,
];

/// Reconvergence models the matrix crosses, from the
/// `CONFORMANCE_RECON_MODELS` environment variable:
///
/// - unset, empty, or `default` — the Volta barrier file only (the
///   model every pre-existing conformance result was produced under);
/// - `all` — barrier file, IPDOM stack, and warp-split with a re-fusion
///   window and subwarp compaction;
/// - anything else — whitespace-separated model specs in
///   [`ReconvergenceModel::parse`] syntax.
///
/// A malformed spec panics: a silently ignored model list would let CI
/// believe it ran a matrix it did not.
pub fn recon_models() -> Vec<ReconvergenceModel> {
    let var = std::env::var("CONFORMANCE_RECON_MODELS").unwrap_or_default();
    let var = var.trim();
    match var {
        "" | "default" => vec![ReconvergenceModel::BarrierFile],
        "all" => vec![
            ReconvergenceModel::BarrierFile,
            ReconvergenceModel::IpdomStack,
            ReconvergenceModel::WarpSplit { window: 4, compact: true },
        ],
        list => list
            .split_whitespace()
            .map(|spec| {
                ReconvergenceModel::parse(spec).unwrap_or_else(|e| {
                    panic!("CONFORMANCE_RECON_MODELS: bad model spec {spec:?}: {e}")
                })
            })
            .collect(),
    }
}

/// Repair strategies appended to the variant matrix, from the
/// `CONFORMANCE_REPAIRS` environment variable:
///
/// - unset, empty, or `default` — none: the historical variant list
///   (PDOM baseline, the SR variants, autodetect) runs unchanged;
/// - `all` — every melding-bearing strategy: `meld`, `sr+meld`, and
///   `auto` (the baseline and plain-SR strategies are already covered
///   by the historical variants);
/// - anything else — whitespace-separated strategy names in
///   [`RepairStrategy::parse`] syntax (`pdom` and `sr` are accepted
///   and simply re-check the historical cells).
///
/// A malformed name panics: a silently ignored repair list would let
/// CI believe it ran a matrix it did not.
pub fn repairs() -> Vec<RepairStrategy> {
    let var = std::env::var("CONFORMANCE_REPAIRS").unwrap_or_default();
    let var = var.trim();
    match var {
        "" | "default" => vec![],
        "all" => vec![RepairStrategy::Meld, RepairStrategy::SrMeld, RepairStrategy::Auto],
        list => list
            .split_whitespace()
            .map(|name| {
                RepairStrategy::parse(name).unwrap_or_else(|e| {
                    panic!("CONFORMANCE_REPAIRS: bad strategy name {name:?}: {e}")
                })
            })
            .collect(),
    }
}

/// Cycle budget per run; generated programs finish in well under this,
/// so hitting it means a transform introduced a deadlock or livelock.
const MAX_CYCLES: u64 = 5_000_000;

/// What the oracle did for one spec.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// Variant names that compiled and ran through the full matrix.
    pub variants_run: Vec<String>,
    /// Variant names skipped with the compiler's rejection reason.
    pub variants_skipped: Vec<(String, String)>,
}

fn sim_config(spec: &ProgramSpec, policy: SchedulerPolicy, recon: ReconvergenceModel) -> SimConfig {
    SimConfig {
        warp_width: spec.warp_width,
        scheduler: policy,
        max_cycles: MAX_CYCLES,
        recon,
        ..SimConfig::default()
    }
}

fn launch(spec: &ProgramSpec, seed: u64) -> Launch {
    let mut l = Launch::new("main", spec.warps);
    l.global_mem = vec![Value::I64(0); mem_cells(spec)];
    l.seed = seed;
    l
}

fn launch_seeds(spec: &ProgramSpec) -> [u64; 2] {
    [spec.seed ^ 0xA5A5_5A5A_A5A5_5A5A, spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1]
}

fn with_warp_width(mut opts: CompileOptions, spec: &ProgramSpec) -> CompileOptions {
    opts.warp_width = spec.warp_width as u32;
    // The oracle checks the lint explicitly (release builds included),
    // so keep the pipeline's own debug-assert stage out of the way.
    opts.lint = false;
    opts
}

/// Outcome of trying to compile one variant.
enum VariantOutcome {
    Ready(Compiled),
    Skipped(String),
}

/// Compiles `module` with `opts`, retrying with dynamic run-time
/// deconfliction when static analysis reports an irreconcilable
/// speculative conflict (§4.3's escape hatch).
fn compile_variant(module: &Module, opts: &CompileOptions) -> Result<VariantOutcome, String> {
    match compile(module, opts) {
        Ok(c) => Ok(VariantOutcome::Ready(c)),
        Err(PassError::BadPrediction(msg)) => Ok(VariantOutcome::Skipped(msg)),
        Err(PassError::SpeculativeConflict(msg)) if !opts.spec_deconflict => {
            let mut retry = opts.clone();
            retry.spec_deconflict = true;
            match compile(module, &retry) {
                Ok(c) => Ok(VariantOutcome::Ready(c)),
                Err(PassError::BadPrediction(m) | PassError::SpeculativeConflict(m)) => {
                    Ok(VariantOutcome::Skipped(format!("{msg}; retry: {m}")))
                }
                Err(e) => Err(format!("dynamic-deconfliction retry failed: {e}")),
            }
        }
        Err(PassError::SpeculativeConflict(msg)) => Ok(VariantOutcome::Skipped(msg)),
        Err(e) => Err(format!("variant failed to compile: {e}")),
    }
}

/// Strips soft-barrier thresholds, turning every prediction into a
/// hard-barrier one.
fn strip_thresholds(module: &Module) -> Module {
    let mut m = module.clone();
    for (_, f) in m.functions.iter_mut() {
        for p in &mut f.predictions {
            p.threshold = None;
        }
    }
    m
}

/// Strips predictions entirely (input for the autodetect variant).
fn strip_predictions(module: &Module) -> Module {
    let mut m = module.clone();
    for (_, f) in m.functions.iter_mut() {
        f.predictions.clear();
    }
    m
}

/// The variant matrix for `spec`: name, source module, options.
fn variants(spec: &ProgramSpec, module: &Module) -> Vec<(String, Module, CompileOptions)> {
    let spec_opts = with_warp_width(CompileOptions::speculative(), spec);
    let mut out = vec![("spec-dynamic".to_string(), module.clone(), spec_opts.clone())];

    let mut st = spec_opts.clone();
    st.deconflict = DeconflictMode::Static;
    out.push(("spec-static".to_string(), module.clone(), st));

    let mut alloc = spec_opts.clone();
    alloc.barrier_allocation = true;
    // The oracle checks semantics, not hardware fit: deeply nested
    // generated programs may legitimately need more registers than Volta
    // exposes once the allocator declines every unsound merge.
    alloc.barrier_limit = None;
    out.push(("spec-alloc".to_string(), module.clone(), alloc));

    if spec.predictions.iter().any(|p| p.threshold.is_some()) {
        out.push(("spec-hard".to_string(), strip_thresholds(module), spec_opts));
    }

    out.push((
        "auto".to_string(),
        strip_predictions(module),
        with_warp_width(CompileOptions::automatic(DetectOptions::default()), spec),
    ));

    for r in repairs() {
        // Auto synthesizes its own predictions, so hand it the bare
        // module; the fixed strategies keep the spec's annotations
        // (melding ignores them, sr+meld consumes them).
        let source = match r {
            RepairStrategy::Auto => strip_predictions(module),
            _ => module.clone(),
        };
        out.push((format!("repair-{r}"), source, with_warp_width(r.options(), spec)));
    }
    out
}

fn render_mem(mem: &[Value]) -> String {
    mem.iter().map(|v| format!("{v:?}")).collect::<Vec<_>>().join(", ")
}

/// Runs `compiled` across the policy × seed × reconvergence-model
/// matrix, comparing final memory against `reference` (one snapshot
/// per launch seed). The snapshot for each seed is taken from the
/// matrix's first cell (under the default and `all` model lists that
/// is the barrier-file model); every other cell — including all
/// hardware-model runs — must reproduce it exactly.
fn run_matrix(
    name: &str,
    spec: &ProgramSpec,
    compiled: &Compiled,
    reference: Option<&[Vec<Value>]>,
) -> Result<Vec<Vec<Value>>, String> {
    let seeds = launch_seeds(spec);
    let models = recon_models();
    let mut snapshots: Vec<Vec<Value>> = Vec::new();
    for (si, &ls) in seeds.iter().enumerate() {
        for &policy in &POLICIES {
            for &model in &models {
                let cfg = sim_config(spec, policy, model);
                let out = run(&compiled.module, &cfg, &launch(spec, ls)).map_err(|e| {
                    format!(
                        "[{name}] run failed under {policy:?}/{} (launch seed {ls:#x}): {e}\n\
                         transformed module:\n{}",
                        model.spec(),
                        compiled.module
                    )
                })?;
                if let Some(reference) = reference {
                    if out.global_mem != reference[si] {
                        return Err(format!(
                            "[{name}] memory mismatch vs baseline under {policy:?}/{} \
                             (launch seed {ls:#x}):\n  baseline: {}\n  variant:  {}\n\
                             transformed module:\n{}",
                            model.spec(),
                            render_mem(&reference[si]),
                            render_mem(&out.global_mem),
                            compiled.module
                        ));
                    }
                }
                match snapshots.get(si) {
                    None => snapshots.push(out.global_mem),
                    Some(first) => {
                        if *first != out.global_mem {
                            return Err(format!(
                                "[{name}] not schedule-invariant: {policy:?}/{} disagrees \
                                 with {:?}/{} (launch seed {ls:#x}):\n  first: {}\n  now:   {}",
                                model.spec(),
                                POLICIES[0],
                                models[0].spec(),
                                render_mem(first),
                                render_mem(&out.global_mem)
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(snapshots)
}

/// Checks one spec end to end. `Err` carries a human-readable
/// violation report (including the offending module text).
pub fn check(spec: &ProgramSpec) -> Result<OracleReport, String> {
    let module = build_module(spec);

    let base_opts = with_warp_width(CompileOptions::baseline(), spec);
    let baseline = compile(&module, &base_opts)
        .map_err(|e| format!("[baseline] compile failed: {e}\nsource module:\n{module}"))?;
    let reference = run_matrix("baseline", spec, &baseline, None)?;

    let mut report = OracleReport::default();
    for (name, source, opts) in variants(spec, &module) {
        match compile_variant(&source, &opts)
            .map_err(|e| format!("[{name}] {e}\nsource module:\n{source}"))?
        {
            VariantOutcome::Skipped(reason) => report.variants_skipped.push((name, reason)),
            VariantOutcome::Ready(compiled) => {
                let lint = lint_errors(&compiled);
                if !lint.is_empty() {
                    return Err(format!(
                        "[{name}] barrier-safety lint rejected the transformed module:\n{}\n\
                         transformed module:\n{}",
                        lint.join("\n"),
                        compiled.module
                    ));
                }
                run_matrix(&name, spec, &compiled, Some(&reference))?;
                report.variants_run.push(name);
            }
        }
    }
    Ok(report)
}
