//! # conformance — generative conformance suite for Speculative Reconvergence
//!
//! Property-based end-to-end testing of the whole SR stack. The suite
//! has three layers:
//!
//! 1. **Generator** ([`program`], [`build`]) — a seed-driven genome
//!    ([`program::ProgramSpec`]) of well-formed divergent programs
//!    (nested loops, data-dependent branches, shared calls, early
//!    exits), biased toward the paper's Iteration-Delay, Loop-Merge,
//!    and Common-Call shapes, lowered to verified IR.
//! 2. **Oracle** ([`oracle`]) — compiles each program as the PDOM
//!    baseline and as every SR variant (soft/hard barriers,
//!    static/dynamic deconfliction, barrier allocation, autodetect)
//!    and asserts final per-thread state is bit-identical across all
//!    five scheduler policies and two launch seeds, that every run
//!    terminates, and that the barrier-safety lint stays clean.
//! 3. **Shrinker & corpora** ([`shrink`], [`corpus`], [`regressions`])
//!    — failing seeds are minimized at the genome level, a fixed named
//!    corpus pins known-fragile shapes, and the root proptest
//!    regression file is ingested and replayed against the dataflow
//!    oracles.
//!
//! Entry points are the integration tests under `tests/`; the
//! `CONFORMANCE_CASES` environment variable caps the number of random
//! cases (default 256 — see `docs/TESTING.md`), and
//! `CONFORMANCE_RECON_MODELS=all` crosses the oracle's matrix with the
//! simulator's hardware reconvergence models
//! ([`oracle::recon_models`]).

#![warn(missing_docs)]

pub mod build;
pub mod corpus;
pub mod oracle;
pub mod program;
pub mod regressions;
pub mod shrink;

pub use build::build_module;
pub use oracle::{check, OracleReport};
pub use program::{ProgramSpec, Shape};
pub use shrink::shrink;

/// Number of random cases the fuzz tests run: `CONFORMANCE_CASES` or
/// the given default.
pub fn configured_cases(default: u32) -> u32 {
    std::env::var("CONFORMANCE_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}
