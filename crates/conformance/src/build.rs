//! Lowers a [`ProgramSpec`] to a well-formed [`simt_ir::Module`].
//!
//! The lowering is intentionally boring: each `Stmt` maps to a fixed
//! instruction sequence, so any behavioural difference the oracle sees
//! is attributable to the SR transforms, not to the generator. Two
//! invariants matter for the oracle:
//!
//! - **RNG alignment** — every transform variant executes the same
//!   `rng.*` instructions in the same per-thread order, so the
//!   per-thread RNG streams (and thus control decisions) agree across
//!   variants.
//! - **Order-independent memory** — stores are per-thread
//!   (`global[tid]`) and shared cells are only touched by discarded
//!   `atomic_add`s, so final memory is schedule-invariant.

use crate::program::{CalleeSpec, Cond, Escape, PredTarget, ProgramSpec, Stmt};
use simt_ir::{
    BinOp, BlockId, FuncKind, Function, FunctionBuilder, Inst, Module, Operand, Reg, SpecialValue,
};

/// Scratch cells (for `AtomicBump`) placed after the per-thread cells.
pub const SCRATCH_CELLS: usize = 4;

/// Global-memory cells a launch of `spec` needs: one per thread plus
/// the shared scratch cells (with a little slack).
pub fn mem_cells(spec: &ProgramSpec) -> usize {
    spec.num_threads() + SCRATCH_CELLS + 4
}

struct Emitter<'a> {
    b: &'a mut FunctionBuilder,
    acc: Reg,
    tid: Reg,
    nthreads: Reg,
    call_depth: Option<u32>,
}

impl Emitter<'_> {
    fn cond(&mut self, c: Cond) -> Reg {
        match c {
            Cond::RngLt(p) => {
                let r = self.b.rng_unit();
                self.b.bin(BinOp::Lt, r, f64::from(p) / 100.0)
            }
            Cond::TidBit(k) => {
                let m = self.b.bin(BinOp::And, self.tid, 1i64 << k);
                self.b.bin(BinOp::Ne, m, 0i64)
            }
            Cond::AccBit(k) => {
                let m = self.b.bin(BinOp::And, self.acc, 1i64 << k);
                self.b.bin(BinOp::Ne, m, 0i64)
            }
        }
    }

    fn emit_all(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.emit(s);
        }
    }

    fn emit(&mut self, s: &Stmt) {
        match *s {
            Stmt::Work(n) => self.b.work(n),
            Stmt::AccAdd(k) => self.b.bin_into(self.acc, BinOp::Add, self.acc, k),
            Stmt::AccXor(k) => self.b.bin_into(self.acc, BinOp::Xor, self.acc, k),
            Stmt::AccXorTid => self.b.bin_into(self.acc, BinOp::Xor, self.acc, self.tid),
            Stmt::StoreAcc => self.b.store_global(self.acc, self.tid),
            Stmt::LoadMix => {
                let v = self.b.load_global(self.tid);
                self.b.bin_into(self.acc, BinOp::Add, self.acc, v);
            }
            Stmt::AtomicBump(site) => {
                let a =
                    self.b.bin(BinOp::Add, self.nthreads, i64::from(site) % SCRATCH_CELLS as i64);
                let _ = self.b.atomic_add(a, 1i64);
            }
            Stmt::Sync => {
                let cur = self.b.current_block();
                self.b.func_mut().blocks[cur].insts.push(Inst::SyncThreads);
            }
            Stmt::CallShared => {
                let mut args: Vec<Operand> = vec![self.acc.into()];
                if let Some(depth) = self.call_depth {
                    args.push(i64::from(depth).into());
                }
                let rets = self.b.call("helper", args, 1);
                self.b.mov_into(self.acc, rets[0]);
            }
            Stmt::If { cond, ref then_b, ref else_b, id } => {
                let cv = self.cond(cond);
                let then_bb = self.b.anon_block();
                let else_bb = self.b.anon_block();
                let join_bb = self.b.anon_block();
                self.b.br_div(cv, then_bb, else_bb);
                self.b.switch_to(then_bb);
                self.b.label_current(format!("L{id}"));
                self.b.mark_roi();
                self.emit_all(then_b);
                self.b.jmp(join_bb);
                self.b.switch_to(else_bb);
                self.emit_all(else_b);
                self.b.jmp(join_bb);
                self.b.switch_to(join_bb);
            }
            Stmt::Loop { trips, rng_trips, early, ref body, id } => {
                self.emit_loop(trips, rng_trips, early, body, id);
            }
        }
    }

    fn emit_loop(
        &mut self,
        trips: u32,
        rng_trips: bool,
        early: Option<(Cond, Escape)>,
        body: &[Stmt],
        id: u32,
    ) {
        let i = self.b.mov(0i64);
        // Per-thread trip counts are drawn once, before the loop, so the
        // count is stable across iterations.
        let trips_op: Operand = if rng_trips {
            let r = self.b.rng_u63();
            let m = self.b.bin(BinOp::Rem, r, 4i64);
            self.b.bin(BinOp::Add, m, 1i64).into()
        } else {
            i64::from(trips.max(1)).into()
        };
        let header = self.b.anon_block();
        let exit_bb = self.b.anon_block();
        self.b.jmp(header);
        self.b.switch_to(header);
        self.b.label_current(format!("L{id}"));
        self.b.mark_roi();
        if let Some((c, esc)) = early {
            let stay = self.b.anon_block();
            let cv = self.cond(c);
            match esc {
                Escape::Break => self.b.br_div(cv, exit_bb, stay),
                Escape::ThreadExit => {
                    let dead = self.b.anon_block();
                    self.b.br_div(cv, dead, stay);
                    self.b.switch_to(dead);
                    self.b.exit();
                }
            }
            self.b.switch_to(stay);
        }
        self.emit_all(body);
        self.b.bin_into(i, BinOp::Add, i, 1i64);
        let more = self.b.bin(BinOp::Lt, i, trips_op);
        if rng_trips || early.is_some() {
            self.b.br_div(more, header, exit_bb);
        } else {
            self.b.br(more, header, exit_bb);
        }
        self.b.switch_to(exit_bb);
    }
}

fn build_kernel(spec: &ProgramSpec) -> Function {
    let mut b = FunctionBuilder::new("main", FuncKind::Kernel, 0);
    let tid = b.special(SpecialValue::Tid);
    let nthreads = b.special(SpecialValue::NumThreads);
    let acc = b.mov(0i64);
    // All predictions anchor their region at the entry block, the same
    // placement as the paper's Listing 1.
    for p in &spec.predictions {
        match p.target {
            PredTarget::Construct(id) => b.predict_label(format!("L{id}"), p.threshold),
            PredTarget::Callee => b.predict_function("helper", p.threshold),
        }
    }
    let call_depth = spec.callee.as_ref().and_then(|c| c.recursion);
    let mut e = Emitter { b: &mut b, acc, tid, nthreads, call_depth };
    e.emit_all(&spec.stmts);
    b.store_global(acc, tid);
    b.exit();
    b.finish()
}

fn build_callee(spec: &CalleeSpec) -> Function {
    let recursive = spec.recursion.is_some();
    let mut b = FunctionBuilder::new("helper", FuncKind::Device, if recursive { 2 } else { 1 });
    let p0 = b.param(0);
    let acc = b.mov(p0);
    let tid = b.special(SpecialValue::Tid);
    let nthreads = b.special(SpecialValue::NumThreads);
    let mut e = Emitter { b: &mut b, acc, tid, nthreads, call_depth: None };
    e.emit_all(&spec.stmts);
    if recursive {
        // Uniform bounded recursion: every call site passes the same
        // depth, so this branch never diverges.
        let depth = b.param(1);
        let more = b.bin(BinOp::Gt, depth, 0i64);
        let recurse: BlockId = b.anon_block();
        let done = b.anon_block();
        b.br(more, recurse, done);
        b.switch_to(recurse);
        let d1 = b.bin(BinOp::Sub, depth, 1i64);
        let rets = b.call("helper", vec![acc.into(), d1.into()], 1);
        b.mov_into(acc, rets[0]);
        b.jmp(done);
        b.switch_to(done);
    }
    b.ret(vec![acc.into()]);
    b.finish()
}

/// Builds the IR module for `spec` (kernel `main`, plus device
/// `helper` when the spec has a callee) with calls resolved.
pub fn build_module(spec: &ProgramSpec) -> Module {
    let mut m = Module::new();
    m.add_function(build_kernel(spec));
    if let Some(c) = &spec.callee {
        m.add_function(build_callee(c));
    }
    m.resolve_calls().expect("generated module references only the helper it defines");
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramSpec;

    #[test]
    fn generated_modules_pass_the_verifier() {
        for seed in 0..128u64 {
            let spec = ProgramSpec::generate(seed);
            let m = build_module(&spec);
            if let Err(errors) = simt_ir::verify_module(&m) {
                panic!("seed {seed}: verifier rejected generated module: {errors:?}\n{m}");
            }
        }
    }

    #[test]
    fn roundtrips_through_the_text_format() {
        for seed in 0..32u64 {
            let spec = ProgramSpec::generate(seed);
            let m = build_module(&spec);
            let text = m.to_string();
            let reparsed = simt_ir::parse_module(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{text}"));
            assert_eq!(text, reparsed.to_string(), "seed {seed}");
        }
    }
}
