//! The generator's program genome.
//!
//! A [`ProgramSpec`] is a small, structured description of a divergent
//! kernel — a statement tree plus launch shape and `Predict`
//! annotations — from which [`crate::build::build_module`] constructs
//! well-formed IR. Generation is driven entirely by a `u64` seed
//! (deterministic, replayable), which also makes custom shrinking
//! possible: the shrinker mutates the spec, not raw IR.
//!
//! The distribution is biased toward the three shapes Speculative
//! Reconvergence targets (§2 of the paper): **Iteration Delay** (a
//! rarely-taken expensive branch inside a loop), **Loop Merge**
//! (data-dependent trip counts), and **Common Call** (an expensive
//! callee shared across branch sides).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which paper pattern a generated program is biased toward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Expensive, data-dependent branch body inside a loop (Listing 1).
    IterationDelay,
    /// Loop with per-thread trip counts (Figure 2a).
    LoopMerge,
    /// Expensive call shared across both sides of a branch (Figure 2b).
    CommonCall,
    /// Free-form mix of the above ingredients.
    Mixed,
}

/// A branch condition, all warp-divergent in practice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cond {
    /// `rng_unit() < p/100` — independent per thread and per evaluation.
    RngLt(u8),
    /// Bit `k` of the thread id — divergent but launch-stable.
    TidBit(u8),
    /// Bit `k` of the running accumulator — data-dependent.
    AccBit(u8),
}

/// What an early loop escape does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Escape {
    /// Jump past the loop (an SR region escape edge).
    Break,
    /// Terminate the thread (exit-path cancellation).
    ThreadExit,
}

/// One statement of the generated program.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Synthetic work of the given cycle cost.
    Work(u32),
    /// `acc += k`.
    AccAdd(i64),
    /// `acc ^= k`.
    AccXor(i64),
    /// `acc ^= tid`.
    AccXorTid,
    /// `global[tid] = acc`.
    StoreAcc,
    /// `acc += global[tid]`.
    LoadMix,
    /// `atomic_add(global[num_threads + site], 1)`, result discarded —
    /// the final cell value is order-independent.
    AtomicBump(u8),
    /// Block-wide `syncthreads`; the generator only places this at the
    /// kernel's top level (uniform control).
    Sync,
    /// Call the shared `helper` callee, threading `acc` through it.
    CallShared,
    /// Two-sided divergent branch. `id` names the then-arm label `L<id>`.
    If {
        /// Branch condition.
        cond: Cond,
        /// Then-side statements (the labelled, ROI side).
        then_b: Vec<Stmt>,
        /// Else-side statements (may be empty).
        else_b: Vec<Stmt>,
        /// Construct id; the then-arm gets label `L<id>`.
        id: u32,
    },
    /// Counted loop. `id` names the header label `L<id>`.
    Loop {
        /// Trip count when `rng_trips` is false (1..=6).
        trips: u32,
        /// Per-thread random trip count in 1..=4 instead (divergent
        /// back edge — the Loop-Merge shape).
        rng_trips: bool,
        /// Optional early escape tested at the top of each iteration.
        early: Option<(Cond, Escape)>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Construct id; the header gets label `L<id>`.
        id: u32,
    },
}

/// The shared device callee, when the program has one.
#[derive(Clone, Debug, PartialEq)]
pub struct CalleeSpec {
    /// Callee body (never contains `Sync`, `CallShared`, or
    /// `ThreadExit` escapes).
    pub stmts: Vec<Stmt>,
    /// Bounded self-recursion depth, when present (1..=2).
    pub recursion: Option<u32>,
}

/// What a generated prediction points at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredTarget {
    /// The label `L<id>` of an `If` then-arm or `Loop` header.
    Construct(u32),
    /// The shared callee's entry (§4.4 interprocedural SR).
    Callee,
}

/// One `Predict` annotation; the region always starts at the kernel
/// entry, like the paper's Listing 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredSpec {
    /// Reconvergence target.
    pub target: PredTarget,
    /// Soft-barrier threshold (§4.6); degenerate values (0, 1, or the
    /// warp width) exercise the hard-barrier fallback.
    pub threshold: Option<u32>,
}

/// A complete generated program: launch shape + statement tree +
/// predictions.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgramSpec {
    /// The generator seed this spec was derived from (replay handle).
    pub seed: u64,
    /// Pattern bias used during generation.
    pub shape: Shape,
    /// Warps to launch (1..=3).
    pub warps: usize,
    /// Lanes per warp (4 or 8 — small widths exercise masks faster).
    pub warp_width: usize,
    /// The shared callee, when the program calls one.
    pub callee: Option<CalleeSpec>,
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
    /// `Predict` annotations (0..=2; overlapping pairs exercise §6
    /// exclusive-prediction arbitration).
    pub predictions: Vec<PredSpec>,
}

struct Gen {
    rng: SmallRng,
    next_id: u32,
    has_callee: bool,
}

impl Gen {
    fn id(&mut self) -> u32 {
        self.next_id += 1;
        self.next_id - 1
    }

    fn cond(&mut self) -> Cond {
        // Biased 4/6 toward `RngLt`: the RNG stream is the only
        // launch-seed-dependent input, so these are the branches where a
        // seed sweep's instances disagree — the sub-cohort fork/merge
        // paths the sweep differential exists to cross-check. `TidBit`
        // and `AccBit` stay in the mix for launch-stable and
        // data-dependent divergence.
        match self.rng.gen_range(0u32..6) {
            0..=3 => Cond::RngLt(self.rng.gen_range(15u32..60) as u8),
            4 => Cond::TidBit(self.rng.gen_range(0u32..3) as u8),
            _ => Cond::AccBit(self.rng.gen_range(0u32..4) as u8),
        }
    }

    fn leaf(&mut self, in_callee: bool) -> Stmt {
        match self.rng.gen_range(0u32..8) {
            0 | 1 => Stmt::Work(self.rng.gen_range(1u32..48)),
            2 => Stmt::AccAdd(self.rng.gen_range(1i64..100)),
            3 => Stmt::AccXor(self.rng.gen_range(1i64..256)),
            4 => Stmt::AccXorTid,
            5 => Stmt::StoreAcc,
            6 => Stmt::LoadMix,
            _ => {
                if in_callee {
                    Stmt::Work(self.rng.gen_range(1u32..24))
                } else {
                    Stmt::AtomicBump(self.rng.gen_range(0u32..4) as u8)
                }
            }
        }
    }

    /// A random statement; depth caps nesting, `top_level` gates `Sync`
    /// and `in_callee` gates calls/atomics/exits. Nesting runs to depth
    /// 3 so branches-in-branches (and branches inside data-dependent
    /// loops) are routine: nested divergence multiplies the sweep
    /// engine's sub-cohort classes, which is exactly the regime the
    /// sweep differential needs to stress.
    fn stmt(&mut self, depth: u32, top_level: bool, in_callee: bool) -> Stmt {
        let roll = self.rng.gen_range(0u32..100);
        if depth >= 3 || roll < 45 {
            return self.leaf(in_callee);
        }
        if top_level && roll < 50 {
            return Stmt::Sync;
        }
        if !in_callee && self.has_callee && roll < 58 {
            return Stmt::CallShared;
        }
        if roll < 80 {
            Stmt::If {
                cond: self.cond(),
                then_b: self.stmts(depth + 1, in_callee),
                else_b: if self.rng.gen_range(0u32..4) == 0 {
                    Vec::new() // empty else-arm edge case
                } else {
                    self.stmts(depth + 1, in_callee)
                },
                id: self.id(),
            }
        } else {
            let rng_trips = self.rng.gen::<bool>();
            let early = if !in_callee && self.rng.gen_range(0u32..3) == 0 {
                let esc = if self.rng.gen::<bool>() { Escape::Break } else { Escape::ThreadExit };
                Some((self.cond(), esc))
            } else {
                None
            };
            Stmt::Loop {
                trips: self.rng.gen_range(1u32..6),
                rng_trips,
                early,
                body: self.stmts(depth + 1, in_callee),
                id: self.id(),
            }
        }
    }

    fn stmts(&mut self, depth: u32, in_callee: bool) -> Vec<Stmt> {
        let n = self.rng.gen_range(1usize..4);
        (0..n).map(|_| self.stmt(depth, false, in_callee)).collect()
    }

    fn top_stmts(&mut self) -> Vec<Stmt> {
        let n = self.rng.gen_range(2usize..5);
        (0..n).map(|_| self.stmt(0, true, false)).collect()
    }
}

/// Collects the ids of every `If`/`Loop` construct, outer-first.
pub fn collect_constructs(stmts: &[Stmt]) -> Vec<u32> {
    let mut out = Vec::new();
    fn walk(stmts: &[Stmt], out: &mut Vec<u32>) {
        for s in stmts {
            match s {
                Stmt::If { then_b, else_b, id, .. } => {
                    out.push(*id);
                    walk(then_b, out);
                    walk(else_b, out);
                }
                Stmt::Loop { body, id, .. } => {
                    out.push(*id);
                    walk(body, out);
                }
                _ => {}
            }
        }
    }
    walk(stmts, &mut out);
    out
}

/// Whether any statement (recursively) is a `CallShared`.
pub fn contains_call(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::CallShared => true,
        Stmt::If { then_b, else_b, .. } => contains_call(then_b) || contains_call(else_b),
        Stmt::Loop { body, .. } => contains_call(body),
        _ => false,
    })
}

impl ProgramSpec {
    /// Deterministically derives a program from `seed`.
    pub fn generate(seed: u64) -> ProgramSpec {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0DE_D1CE);
        let shape = match rng.gen_range(0u32..10) {
            0..=2 => Shape::IterationDelay,
            3..=5 => Shape::LoopMerge,
            6..=7 => Shape::CommonCall,
            _ => Shape::Mixed,
        };
        let warps = rng.gen_range(1usize..4);
        let warp_width = if rng.gen::<bool>() { 4 } else { 8 };

        let wants_callee = shape == Shape::CommonCall || rng.gen_range(0u32..4) == 0;
        let mut g = Gen { rng, next_id: 0, has_callee: wants_callee };
        let mut callee = if wants_callee {
            let stmts = g.stmts(1, true);
            let recursion =
                if g.rng.gen_range(0u32..4) == 0 { Some(g.rng.gen_range(1u32..3)) } else { None };
            Some(CalleeSpec { stmts, recursion })
        } else {
            None
        };

        let mut stmts = match shape {
            Shape::IterationDelay => {
                let then_b = vec![Stmt::Work(g.rng.gen_range(24u32..48)), g.leaf(false)];
                let else_b = if g.rng.gen::<bool>() { vec![g.leaf(false)] } else { Vec::new() };
                let inner = Stmt::If { cond: g.cond(), then_b, else_b, id: g.id() };
                let body = vec![inner, g.leaf(false)];
                vec![
                    g.leaf(false),
                    Stmt::Loop {
                        trips: g.rng.gen_range(3u32..6),
                        rng_trips: g.rng.gen::<bool>(),
                        early: None,
                        body,
                        id: g.id(),
                    },
                ]
            }
            Shape::LoopMerge => {
                let body = vec![Stmt::Work(g.rng.gen_range(16u32..40)), g.leaf(false)];
                let early = if g.rng.gen_range(0u32..3) == 0 {
                    Some((g.cond(), Escape::Break))
                } else {
                    None
                };
                vec![
                    Stmt::Loop { trips: 4, rng_trips: true, early, body, id: g.id() },
                    g.leaf(false),
                ]
            }
            Shape::CommonCall => {
                let then_b = vec![g.leaf(false), Stmt::CallShared];
                let else_b = vec![Stmt::CallShared, g.leaf(false)];
                vec![g.leaf(false), Stmt::If { cond: g.cond(), then_b, else_b, id: g.id() }]
            }
            Shape::Mixed => g.top_stmts(),
        };
        stmts.push(Stmt::StoreAcc);

        // Drop an unused callee (Mixed may roll one but never call it).
        if callee.is_some() && !contains_call(&stmts) {
            callee = None;
        }

        // Predictions: mostly one, sometimes none or an overlapping pair.
        let constructs = collect_constructs(&stmts);
        let mut targets: Vec<PredTarget> =
            constructs.iter().map(|&id| PredTarget::Construct(id)).collect();
        let callee_predictable =
            callee.as_ref().is_some_and(|c| c.recursion.is_none()) && contains_call(&stmts);
        if callee_predictable {
            targets.push(PredTarget::Callee);
        }
        if shape == Shape::CommonCall && callee_predictable {
            // Bias the Common-Call shape toward the interprocedural pass.
            targets.push(PredTarget::Callee);
        }
        let n_preds = if targets.is_empty() {
            0
        } else {
            match g.rng.gen_range(0u32..100) {
                0..=9 => 0,
                10..=84 => 1,
                _ => 2.min(targets.len()),
            }
        };
        let mut predictions = Vec::new();
        for _ in 0..n_preds {
            let target = targets[g.rng.gen_range(0usize..targets.len())];
            if predictions.iter().any(|p: &PredSpec| p.target == target) {
                continue;
            }
            let threshold = if g.rng.gen_range(0u32..100) < 35 {
                let ww = warp_width as u32;
                let opts = [0, 1, 2, ww / 2, ww - 1, ww];
                Some(opts[g.rng.gen_range(0usize..opts.len())])
            } else {
                None
            };
            predictions.push(PredSpec { target, threshold });
        }

        ProgramSpec { seed, shape, warps, warp_width, callee, stmts, predictions }
    }

    /// Total threads this spec launches.
    pub fn num_threads(&self) -> usize {
        self.warps * self.warp_width
    }
}

/// Proptest adapter: draws a seed and derives the spec from it, so a
/// failing case is always replayable from one `u64`.
pub fn spec_strategy() -> impl proptest::strategy::Strategy<Value = ProgramSpec> {
    use proptest::strategy::Strategy as _;
    proptest::strategy::any::<u64>().prop_map(ProgramSpec::generate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(ProgramSpec::generate(seed), ProgramSpec::generate(seed));
        }
    }

    #[test]
    fn shapes_all_occur() {
        let mut seen = [false; 4];
        for seed in 0..64u64 {
            let s = ProgramSpec::generate(seed);
            seen[match s.shape {
                Shape::IterationDelay => 0,
                Shape::LoopMerge => 1,
                Shape::CommonCall => 2,
                Shape::Mixed => 3,
            }] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn predictions_reference_real_targets() {
        for seed in 0..256u64 {
            let s = ProgramSpec::generate(seed);
            let constructs = collect_constructs(&s.stmts);
            for p in &s.predictions {
                match p.target {
                    PredTarget::Construct(id) => {
                        assert!(constructs.contains(&id), "seed {seed}: dangling L{id}")
                    }
                    PredTarget::Callee => {
                        assert!(s.callee.is_some() && contains_call(&s.stmts), "seed {seed}")
                    }
                }
            }
        }
    }
}
