//! Fixed, named corpus of edge-case programs.
//!
//! Unlike the random stream, these specs pin down shapes that have
//! historically been fragile (or that the paper calls out explicitly)
//! so every test run exercises them regardless of the seed schedule:
//! empty else-arms, predictions whose Join lands in a loop preheader,
//! bounded recursive common calls, degenerate soft-barrier thresholds,
//! and overlapping prediction pairs.

use crate::program::{CalleeSpec, Cond, Escape, PredSpec, PredTarget, ProgramSpec, Shape, Stmt};

fn base(seed: u64, shape: Shape) -> ProgramSpec {
    ProgramSpec {
        seed,
        shape,
        warps: 2,
        warp_width: 4,
        callee: None,
        stmts: Vec::new(),
        predictions: Vec::new(),
    }
}

/// The named corpus; names are stable and show up in failure output.
pub fn corpus() -> Vec<(&'static str, ProgramSpec)> {
    let mut out = Vec::new();

    // A predicted branch whose else-arm is empty: the reconvergence
    // point is the branch's own immediate post-dominator, and the ROI
    // side is the only interesting arm.
    let mut s = base(1, Shape::IterationDelay);
    s.stmts = vec![
        Stmt::AccAdd(5),
        Stmt::Loop {
            trips: 4,
            rng_trips: false,
            early: None,
            body: vec![Stmt::If {
                cond: Cond::RngLt(30),
                then_b: vec![Stmt::Work(32), Stmt::AccAdd(1)],
                else_b: vec![],
                id: 0,
            }],
            id: 1,
        },
        Stmt::StoreAcc,
    ];
    s.predictions = vec![PredSpec { target: PredTarget::Construct(0), threshold: None }];
    out.push(("empty_else_arm", s));

    // Prediction targeting a loop header: the speculative Join is
    // placed in the preheader (the region runs from kernel entry), so
    // the barrier is joined exactly once but waited every iteration.
    let mut s = base(2, Shape::LoopMerge);
    s.stmts = vec![
        Stmt::AccXorTid,
        Stmt::Loop {
            trips: 4,
            rng_trips: true,
            early: None,
            body: vec![Stmt::Work(24), Stmt::AccAdd(3)],
            id: 0,
        },
        Stmt::StoreAcc,
    ];
    s.predictions = vec![PredSpec { target: PredTarget::Construct(0), threshold: None }];
    out.push(("barrier_in_loop_preheader", s));

    // Bounded recursive common call: the callee recurses, so the
    // interprocedural pass must NOT be pointed at it (a speculative
    // Wait re-executing in inner frames could deadlock); instead the
    // surrounding branch is predicted.
    let mut s = base(3, Shape::CommonCall);
    s.callee =
        Some(CalleeSpec { stmts: vec![Stmt::Work(16), Stmt::AccAdd(7)], recursion: Some(2) });
    s.stmts = vec![
        Stmt::If {
            cond: Cond::TidBit(0),
            then_b: vec![Stmt::Work(8), Stmt::CallShared],
            else_b: vec![Stmt::CallShared, Stmt::AccXor(5)],
            id: 0,
        },
        Stmt::StoreAcc,
    ];
    s.predictions = vec![PredSpec { target: PredTarget::Construct(0), threshold: None }];
    out.push(("recursive_common_call", s));

    // Non-recursive common call with an interprocedural prediction —
    // the paper's Figure 2b shape (§4.4).
    let mut s = base(4, Shape::CommonCall);
    s.callee = Some(CalleeSpec { stmts: vec![Stmt::Work(24), Stmt::AccAdd(11)], recursion: None });
    s.stmts = vec![
        Stmt::If {
            cond: Cond::RngLt(45),
            then_b: vec![Stmt::AccAdd(1), Stmt::CallShared],
            else_b: vec![Stmt::CallShared],
            id: 0,
        },
        Stmt::StoreAcc,
    ];
    s.predictions = vec![PredSpec { target: PredTarget::Callee, threshold: None }];
    out.push(("interproc_common_call", s));

    // Soft barrier with a meaningful threshold plus the degenerate
    // values that must fall back to a hard barrier (§4.6).
    for (name, threshold) in [
        ("threshold_soft", Some(2u32)),
        ("threshold_zero_hard_fallback", Some(0)),
        ("threshold_full_width_hard_fallback", Some(4)),
    ] {
        let mut s = base(5, Shape::IterationDelay);
        s.stmts = vec![
            Stmt::Loop {
                trips: 3,
                rng_trips: false,
                early: None,
                body: vec![Stmt::If {
                    cond: Cond::RngLt(25),
                    then_b: vec![Stmt::Work(40)],
                    else_b: vec![Stmt::AccAdd(1)],
                    id: 0,
                }],
                id: 1,
            },
            Stmt::StoreAcc,
        ];
        s.predictions = vec![PredSpec { target: PredTarget::Construct(0), threshold }];
        out.push((name, s));
    }

    // Two predictions over nested constructs — exercises speculative
    // conflict handling and the dynamic-deconfliction retry.
    let mut s = base(6, Shape::Mixed);
    s.stmts = vec![
        Stmt::Loop {
            trips: 3,
            rng_trips: false,
            early: None,
            body: vec![Stmt::If {
                cond: Cond::RngLt(35),
                then_b: vec![Stmt::Work(28)],
                else_b: vec![],
                id: 0,
            }],
            id: 1,
        },
        Stmt::StoreAcc,
    ];
    s.predictions = vec![
        PredSpec { target: PredTarget::Construct(0), threshold: None },
        PredSpec { target: PredTarget::Construct(1), threshold: None },
    ];
    out.push(("two_predictions_nested", s));

    // Early escapes out of a predicted loop: a Break (region escape
    // edge) and a ThreadExit (exit-path cancellation).
    let mut s = base(7, Shape::LoopMerge);
    s.stmts = vec![
        Stmt::Loop {
            trips: 5,
            rng_trips: false,
            early: Some((Cond::RngLt(20), Escape::Break)),
            body: vec![Stmt::Work(16), Stmt::AccAdd(2)],
            id: 0,
        },
        Stmt::StoreAcc,
    ];
    s.predictions = vec![PredSpec { target: PredTarget::Construct(0), threshold: None }];
    out.push(("early_break_escape", s));

    let mut s = base(8, Shape::LoopMerge);
    s.stmts = vec![
        Stmt::Loop {
            trips: 5,
            rng_trips: false,
            early: Some((Cond::RngLt(15), Escape::ThreadExit)),
            body: vec![Stmt::Work(12), Stmt::AccXorTid],
            id: 0,
        },
        Stmt::StoreAcc,
    ];
    s.predictions = vec![PredSpec { target: PredTarget::Construct(0), threshold: None }];
    out.push(("thread_exit_escape", s));

    // A block-wide sync after reconvergence plus shared atomics —
    // stresses the interaction between syncthreads and SR barriers.
    let mut s = base(9, Shape::Mixed);
    s.stmts = vec![
        Stmt::If {
            cond: Cond::TidBit(1),
            then_b: vec![Stmt::Work(20), Stmt::AtomicBump(0)],
            else_b: vec![Stmt::AtomicBump(1)],
            id: 0,
        },
        Stmt::Sync,
        Stmt::LoadMix,
        Stmt::StoreAcc,
    ];
    s.predictions = vec![PredSpec { target: PredTarget::Construct(0), threshold: None }];
    out.push(("sync_after_divergence", s));

    out
}
