//! Spec-level shrinking.
//!
//! The vendored proptest core has no shrink support, and shrinking raw
//! IR would produce malformed programs anyway. Instead we shrink the
//! [`ProgramSpec`] genome directly: greedily try structure-reducing
//! mutations (drop a statement, inline a branch arm, collapse a loop,
//! drop a prediction, shrink the launch), keep any mutation under which
//! the oracle still fails, and repeat to a fixpoint or until the
//! oracle-call budget runs out. Every intermediate candidate is a
//! well-formed spec, so the final result is a minimal *valid* program.

use crate::oracle;
use crate::program::{collect_constructs, contains_call, PredTarget, ProgramSpec, Stmt};

/// Default number of oracle invocations a shrink may spend.
pub const DEFAULT_BUDGET: usize = 150;

/// All single-step reductions of a statement list: per index, removal,
/// arm/body splicing, attribute simplification, and recursive
/// reductions inside nested constructs.
fn stmt_variants(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for (i, s) in stmts.iter().enumerate() {
        let splice = |replacement: Vec<Stmt>| {
            let mut v = stmts.to_vec();
            v.splice(i..=i, replacement);
            v
        };
        let replace = |with: Stmt| {
            let mut v = stmts.to_vec();
            v[i] = with;
            v
        };
        out.push(splice(Vec::new()));
        match s {
            Stmt::If { cond, then_b, else_b, id } => {
                out.push(splice(then_b.clone()));
                out.push(splice(else_b.clone()));
                for t in stmt_variants(then_b) {
                    out.push(replace(Stmt::If {
                        cond: *cond,
                        then_b: t,
                        else_b: else_b.clone(),
                        id: *id,
                    }));
                }
                for e in stmt_variants(else_b) {
                    out.push(replace(Stmt::If {
                        cond: *cond,
                        then_b: then_b.clone(),
                        else_b: e,
                        id: *id,
                    }));
                }
            }
            Stmt::Loop { trips, rng_trips, early, body, id } => {
                out.push(splice(body.clone()));
                let base = |body: Vec<Stmt>, trips, rng_trips, early| Stmt::Loop {
                    trips,
                    rng_trips,
                    early,
                    body,
                    id: *id,
                };
                if early.is_some() {
                    out.push(replace(base(body.clone(), *trips, *rng_trips, None)));
                }
                if *rng_trips {
                    out.push(replace(base(body.clone(), 2, false, *early)));
                }
                if !*rng_trips && *trips > 1 {
                    out.push(replace(base(body.clone(), 1, false, *early)));
                }
                for bv in stmt_variants(body) {
                    out.push(replace(base(bv, *trips, *rng_trips, *early)));
                }
            }
            Stmt::Work(n) if *n > 1 => out.push(replace(Stmt::Work(1))),
            Stmt::CallShared => out.push(replace(Stmt::Work(1))),
            _ => {}
        }
    }
    out
}

/// Spec-level single-step reductions (launch shape, callee,
/// predictions, then the statement-tree reductions).
fn candidates(spec: &ProgramSpec) -> Vec<ProgramSpec> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut ProgramSpec)| {
        let mut c = spec.clone();
        f(&mut c);
        out.push(c);
    };
    if spec.warps > 1 {
        push(&|c| c.warps = 1);
    }
    if spec.warp_width > 4 {
        push(&|c| c.warp_width = 4);
    }
    if spec.callee.as_ref().is_some_and(|c| c.recursion.is_some()) {
        push(&|c| c.callee.as_mut().unwrap().recursion = None);
    }
    if let Some(callee) = &spec.callee {
        if !callee.stmts.is_empty() {
            push(&|c| c.callee.as_mut().unwrap().stmts.clear());
        }
    }
    for i in 0..spec.predictions.len() {
        push(&move |c| {
            c.predictions.remove(i);
        });
        if spec.predictions[i].threshold.is_some() {
            push(&move |c| c.predictions[i].threshold = None);
        }
    }
    for stmts in stmt_variants(&spec.stmts) {
        let mut c = spec.clone();
        c.stmts = stmts;
        out.push(c);
    }
    out
}

/// Re-establishes the generator's invariants after a mutation: no
/// dangling prediction targets, no callee without a call site.
fn normalize(mut spec: ProgramSpec) -> ProgramSpec {
    if spec.callee.is_some() && !contains_call(&spec.stmts) {
        spec.callee = None;
    }
    let constructs = collect_constructs(&spec.stmts);
    let callee_ok = spec.callee.is_some();
    spec.predictions.retain(|p| match p.target {
        PredTarget::Construct(id) => constructs.contains(&id),
        PredTarget::Callee => callee_ok,
    });
    spec
}

/// Greedily shrinks a failing spec, spending at most `budget` oracle
/// calls. Returns the smallest spec found that still fails (which is
/// `spec` itself if no reduction reproduces the failure).
pub fn shrink(spec: &ProgramSpec, budget: usize) -> ProgramSpec {
    let mut best = spec.clone();
    let mut calls = 0usize;
    'outer: loop {
        for cand in candidates(&best) {
            if calls >= budget {
                break 'outer;
            }
            let cand = normalize(cand);
            if cand == best {
                continue;
            }
            calls += 1;
            if oracle::check(&cand).is_err() {
                best = cand;
                continue 'outer;
            }
        }
        break;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Cond, PredSpec, Shape};

    fn passing_spec() -> ProgramSpec {
        ProgramSpec {
            seed: 7,
            shape: Shape::Mixed,
            warps: 2,
            warp_width: 4,
            callee: None,
            stmts: vec![
                Stmt::AccAdd(3),
                Stmt::If {
                    cond: Cond::TidBit(0),
                    then_b: vec![Stmt::Work(30), Stmt::AccAdd(1)],
                    else_b: vec![],
                    id: 0,
                },
                Stmt::StoreAcc,
            ],
            predictions: vec![PredSpec { target: PredTarget::Construct(0), threshold: None }],
        }
    }

    #[test]
    fn shrinking_a_passing_spec_returns_it_unchanged() {
        let spec = passing_spec();
        assert_eq!(shrink(&spec, 40), spec);
    }

    #[test]
    fn normalize_prunes_dangling_predictions() {
        let mut spec = passing_spec();
        spec.stmts = vec![Stmt::StoreAcc];
        let n = normalize(spec);
        assert!(n.predictions.is_empty());
    }

    #[test]
    fn stmt_variants_cover_removal_and_splicing() {
        let spec = passing_spec();
        let vs = stmt_variants(&spec.stmts);
        // Removal of each of the three statements, then-arm splice,
        // (empty) else-arm splice, and nested reductions all appear.
        assert!(vs.len() >= 6);
        assert!(vs.iter().any(|v| v.len() == 2 && !v.iter().any(|s| matches!(s, Stmt::If { .. }))));
    }
}
