//! The `hot_loop` Criterion group: decoded-executor throughput on the
//! divergent workload registry.
//!
//! One benchmark per Table-2 workload, run as-is (no pass pipeline — the
//! measurement isolates the simulator's cycle loop) on a pre-decoded
//! image, annotated with simulated cycles per run so the report prints
//! cycles/sec. This is the Criterion-side view of the number `perfbench`
//! snapshots into `BENCH_<n>.json` and `perfgate` defends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simt_sim::{run_image, SimConfig};
use workloads::eval::{with_warps, Engine};
use workloads::registry;

fn bench_hot_loop(c: &mut Criterion) {
    let engine = Engine::new(1);
    let cfg = SimConfig::default();
    let mut g = c.benchmark_group("hot_loop");
    for w in registry() {
        let w = with_warps(&w, 2);
        let image = engine.decoded(&w.module, None).expect("registry workload decodes");
        let cycles =
            run_image(&image, &cfg, &w.launch).expect("registry workload runs").metrics.cycles;
        g.throughput(Throughput::Elements(cycles));
        g.bench_with_input(BenchmarkId::new("registry", w.name), &w, |b, w| {
            b.iter(|| run_image(&image, &cfg, &w.launch).expect("runs"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hot_loop);
criterion_main!(benches);
