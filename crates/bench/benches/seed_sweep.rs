//! The `seed_sweep` Criterion group: lockstep multi-seed cohort
//! throughput against the scalar per-seed baseline.
//!
//! Two benchmarks per workload — `sweep/<name>` runs one 32-seed
//! cohort, `scalar/<name>` runs the same 32 seeds as independent scalar
//! machines — both annotated with the summed simulated cycles so the
//! report prints comparable cycles/sec. Covered workloads are the Monte
//! Carlo registry entries (lockstep fast path) plus the seed-divergent
//! stressors (fork/merge path). This is the Criterion-side view of the
//! `sweep/*` / `sweep_scalar/*` entries `perfbench` snapshots into
//! `BENCH_<n>.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simt_sim::{run_image, run_sweep_image, SimConfig, SweepLaunch, DEFAULT_SEED};
use specrecon_bench::perf::MONTE_CARLO;
use workloads::eval::{with_warps, Engine};
use workloads::{registry, seedstorm};

const SEEDS: u64 = 32;

fn bench_seed_sweep(c: &mut Criterion) {
    let engine = Engine::new(1);
    let cfg = SimConfig::default();
    let mut g = c.benchmark_group("seed_sweep");
    let mut pool: Vec<workloads::Workload> =
        registry().into_iter().filter(|w| MONTE_CARLO.contains(&w.name)).collect();
    pool.push(seedstorm::build(&seedstorm::Params::default()));
    for w in pool {
        let w = with_warps(&w, 2);
        let image = engine.decoded(&w.module, None).expect("registry workload decodes");
        let sweep = SweepLaunch::new(w.launch.clone(), DEFAULT_SEED, DEFAULT_SEED + SEEDS);
        let out = run_sweep_image(&image, &cfg, &sweep, None).expect("sweep runs");
        let cycles: u64 = out
            .runs
            .iter()
            .map(|r| r.result.as_ref().expect("seed run succeeds").metrics.cycles)
            .sum();
        g.throughput(Throughput::Elements(cycles));
        g.bench_with_input(BenchmarkId::new("sweep", w.name), &sweep, |b, sweep| {
            b.iter(|| run_sweep_image(&image, &cfg, sweep, None).expect("sweep runs"));
        });
        g.bench_with_input(BenchmarkId::new("scalar", w.name), &w, |b, w| {
            b.iter(|| {
                for s in 0..SEEDS {
                    let mut launch = w.launch.clone();
                    launch.seed = DEFAULT_SEED + s;
                    run_image(&image, &cfg, &launch).expect("runs");
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_seed_sweep);
criterion_main!(benches);
