//! Criterion benches of the compiler side: parsing, analyses, and the
//! pass pipeline, on the largest Table-2 module (RSBench).

use criterion::{criterion_group, criterion_main, Criterion};
use simt_analysis::{BarrierJoined, BarrierLiveness, DomTree, LoopForest};
use simt_ir::parse_module;
use specrecon_core::{compile, detect, CompileOptions, DetectOptions};
use workloads::rsbench;

fn bench_compiler(c: &mut Criterion) {
    let w = rsbench::build(&rsbench::Params::default());
    let kernel = w.module.function_by_name("rsbench").unwrap();
    let func = w.module.functions[kernel].clone();
    let text = w.module.to_string();
    // Pre-transform a module so the barrier analyses have sync to chew on.
    let compiled = compile(&w.module, &CompileOptions::speculative()).unwrap();
    let sync_func = compiled.module.functions[kernel].clone();

    let mut g = c.benchmark_group("compiler");
    g.bench_function("parse_rsbench", |b| {
        b.iter(|| parse_module(&text).expect("parses"));
    });
    g.bench_function("dominators", |b| {
        b.iter(|| DomTree::dominators(&func));
    });
    g.bench_function("post_dominators", |b| {
        b.iter(|| DomTree::post_dominators(&func));
    });
    g.bench_function("loop_forest", |b| {
        let dom = DomTree::dominators(&func);
        b.iter(|| LoopForest::new(&func, &dom));
    });
    g.bench_function("barrier_joined", |b| {
        b.iter(|| BarrierJoined::analyze(&sync_func));
    });
    g.bench_function("barrier_liveness", |b| {
        b.iter(|| BarrierLiveness::analyze(&sync_func));
    });
    g.bench_function("detect_candidates", |b| {
        b.iter(|| detect(&func, &DetectOptions::default()));
    });
    g.bench_function("pipeline_baseline", |b| {
        b.iter(|| compile(&w.module, &CompileOptions::baseline()).expect("compiles"));
    });
    g.bench_function("pipeline_speculative", |b| {
        b.iter(|| compile(&w.module, &CompileOptions::speculative()).expect("compiles"));
    });
    g.finish();
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
