//! Criterion benches over the Table-2 workloads: simulation throughput of
//! each benchmark under the baseline and Speculative Reconvergence
//! pipelines. (The paper-figure *data* comes from the `figures` binary;
//! these benches measure the reproduction itself.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simt_sim::{run, SimConfig};
use specrecon_core::{compile, CompileOptions};
use workloads::{eval::with_warps, registry};

fn bench_workloads(c: &mut Criterion) {
    let cfg = SimConfig::default();
    let mut group = c.benchmark_group("workloads");
    group.sample_size(10);

    for w in registry() {
        let w = with_warps(&w, 1);
        let baseline = compile(&w.module, &CompileOptions::baseline()).expect("baseline compiles");
        let spec = compile(&w.module, &CompileOptions::speculative()).expect("spec compiles");

        group.bench_with_input(BenchmarkId::new("baseline", w.name), &w, |b, w| {
            b.iter(|| run(&baseline.module, &cfg, &w.launch).expect("baseline runs"));
        });
        group.bench_with_input(BenchmarkId::new("speculative", w.name), &w, |b, w| {
            b.iter(|| run(&spec.module, &cfg, &w.launch).expect("spec runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
