//! Criterion benches of the simulator substrate: raw interpreter
//! throughput on convergent, divergent, and barrier-heavy kernels, the
//! decoded engine against the reference tree-walker, and batch-evaluation
//! scaling across worker counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simt_ir::parse_and_link;
use simt_ir::Value;
use simt_sim::{run, run_image, run_reference, DecodedImage, Launch, SimConfig};
use specrecon_core::CompileOptions;
use workloads::eval::{with_warps, Engine, EvalJob};
use workloads::registry;

fn bench_simulator(c: &mut Criterion) {
    let cfg = SimConfig::default();

    // Convergent ALU loop: the interpreter fast path.
    let convergent = parse_and_link(
        "kernel @k(params=0, regs=4, barriers=0, entry=bb0) {\n\
         bb0:\n  %r0 = mov 0\n  %r1 = mov 0\n  jmp bb1\n\
         bb1:\n  %r1 = add %r1, 3\n  %r1 = xor %r1, 7\n  %r0 = add %r0, 1\n  %r2 = lt %r0, 2000\n  br %r2, bb1, bb2\n\
         bb2:\n  exit\n}\n",
    )
    .unwrap();

    // Divergent loop: exercises group selection.
    let divergent = parse_and_link(
        "kernel @k(params=0, regs=4, barriers=0, entry=bb0) {\n\
         bb0:\n  %r0 = special.lane\n  %r1 = mul %r0, 40\n  %r1 = add %r1, 40\n  %r2 = mov 0\n  jmp bb1\n\
         bb1:\n  %r2 = add %r2, 1\n  %r3 = lt %r2, %r1\n  brdiv %r3, bb1, bb2\n\
         bb2:\n  exit\n}\n",
    )
    .unwrap();

    // Barrier-heavy loop: join/wait every iteration.
    let barrier = parse_and_link(
        "kernel @k(params=0, regs=4, barriers=1, entry=bb0) {\n\
         bb0:\n  %r0 = mov 0\n  jmp bb1\n\
         bb1:\n  join b0\n  wait b0\n  %r0 = add %r0, 1\n  %r2 = lt %r0, 1000\n  br %r2, bb1, bb2\n\
         bb2:\n  exit\n}\n",
    )
    .unwrap();

    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(2000 * 32));
    g.bench_function("convergent_alu_loop", |b| {
        b.iter(|| run(&convergent, &cfg, &Launch::new("k", 1)).expect("runs"));
    });
    g.throughput(Throughput::Elements(32 * 40 * 32 / 2));
    g.bench_function("divergent_trip_counts", |b| {
        b.iter(|| run(&divergent, &cfg, &Launch::new("k", 1)).expect("runs"));
    });
    g.throughput(Throughput::Elements(1000 * 32));
    g.bench_function("barrier_per_iteration", |b| {
        b.iter(|| run(&barrier, &cfg, &Launch::new("k", 1)).expect("runs"));
    });

    // Memory-heavy: coalescing model cost.
    let memory = parse_and_link(
        "kernel @k(params=0, regs=4, barriers=0, entry=bb0) {\n\
         bb0:\n  %r0 = special.tid\n  %r1 = mov 0\n  jmp bb1\n\
         bb1:\n  %r2 = mul %r1, 33\n  %r2 = add %r2, %r0\n  %r2 = rem %r2, 4096\n  %r3 = load global[%r2]\n  %r1 = add %r1, 1\n  %r2 = lt %r1, 500\n  br %r2, bb1, bb2\n\
         bb2:\n  exit\n}\n",
    )
    .unwrap();
    let mut launch = Launch::new("k", 1);
    launch.global_mem = vec![Value::I64(0); 4096];
    g.throughput(Throughput::Elements(500 * 32));
    g.bench_function("scattered_loads", |b| {
        b.iter(|| run(&memory, &cfg, &launch).expect("runs"));
    });
    g.finish();
}

/// Decoded engine vs the reference tree-walking interpreter on the same
/// kernels — the decode-once refactor's headline number. `decoded_prebuilt`
/// additionally factors decode out of the loop (the engine-cache case).
fn bench_decoded_vs_reference(c: &mut Criterion) {
    let cfg = SimConfig::default();
    let divergent = parse_and_link(
        "kernel @k(params=0, regs=4, barriers=0, entry=bb0) {\n\
         bb0:\n  %r0 = special.lane\n  %r1 = mul %r0, 40\n  %r1 = add %r1, 40\n  %r2 = mov 0\n  jmp bb1\n\
         bb1:\n  %r2 = add %r2, 1\n  %r3 = lt %r2, %r1\n  brdiv %r3, bb1, bb2\n\
         bb2:\n  exit\n}\n",
    )
    .unwrap();

    // Call-heavy loop: the tree walker re-clones the callee's return
    // register list on every call; the decoded path indexes a pooled span.
    let calls = parse_and_link(
        "device @f(params=2, regs=4, barriers=0, entry=bb0) {\n\
         bb0:\n  %r2 = add %r0, %r1\n  %r3 = mul %r2, 3\n  ret %r3\n}\n\
         kernel @k(params=0, regs=4, barriers=0, entry=bb0) {\n\
         bb0:\n  %r0 = mov 0\n  %r1 = mov 0\n  jmp bb1\n\
         bb1:\n  call @f(%r1, 5) -> (%r1)\n  %r0 = add %r0, 1\n  %r2 = lt %r0, 1500\n  br %r2, bb1, bb2\n\
         bb2:\n  exit\n}\n",
    )
    .unwrap();

    let mut g = c.benchmark_group("decoded_vs_reference");
    for (name, module) in [("divergent", &divergent), ("calls", &calls)] {
        g.bench_with_input(BenchmarkId::new("reference_tree_walker", name), module, |b, m| {
            b.iter(|| run_reference(m, &cfg, &Launch::new("k", 1)).expect("runs"))
        });
        g.bench_with_input(BenchmarkId::new("decoded_with_decode", name), module, |b, m| {
            b.iter(|| run(m, &cfg, &Launch::new("k", 1)).expect("runs"))
        });
        let image = DecodedImage::decode(module);
        g.bench_with_input(BenchmarkId::new("decoded_prebuilt", name), &image, |b, i| {
            b.iter(|| run_image(i, &cfg, &Launch::new("k", 1)).expect("runs"))
        });
    }
    g.finish();
}

/// Batch-evaluation scaling: the full Table-2 registry as one batch on
/// 1/2/4/8 worker threads. Results are byte-identical across the series;
/// only wall-clock changes.
fn bench_batch_scaling(c: &mut Criterion) {
    let jobs: Vec<EvalJob> = registry()
        .iter()
        .map(|w| {
            EvalJob::new(with_warps(w, 1), CompileOptions::speculative(), SimConfig::default())
        })
        .collect();

    let mut g = c.benchmark_group("batch_scaling");
    g.throughput(Throughput::Elements(jobs.len() as u64));
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("registry_batch", workers), &workers, |b, &n| {
            // A fresh engine per iteration so decode cost is included and
            // the cache cannot carry state across worker counts.
            b.iter(|| {
                let engine = Engine::new(n);
                let results = engine.run_batch(&jobs);
                assert!(results.iter().all(Result::is_ok));
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulator, bench_decoded_vs_reference, bench_batch_scaling);
criterion_main!(benches);
