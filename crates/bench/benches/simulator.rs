//! Criterion benches of the simulator substrate: raw interpreter
//! throughput on convergent, divergent, and barrier-heavy kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simt_ir::parse_and_link;
use simt_ir::Value;
use simt_sim::{run, Launch, SimConfig};

fn bench_simulator(c: &mut Criterion) {
    let cfg = SimConfig::default();

    // Convergent ALU loop: the interpreter fast path.
    let convergent = parse_and_link(
        "kernel @k(params=0, regs=4, barriers=0, entry=bb0) {\n\
         bb0:\n  %r0 = mov 0\n  %r1 = mov 0\n  jmp bb1\n\
         bb1:\n  %r1 = add %r1, 3\n  %r1 = xor %r1, 7\n  %r0 = add %r0, 1\n  %r2 = lt %r0, 2000\n  br %r2, bb1, bb2\n\
         bb2:\n  exit\n}\n",
    )
    .unwrap();

    // Divergent loop: exercises group selection.
    let divergent = parse_and_link(
        "kernel @k(params=0, regs=4, barriers=0, entry=bb0) {\n\
         bb0:\n  %r0 = special.lane\n  %r1 = mul %r0, 40\n  %r1 = add %r1, 40\n  %r2 = mov 0\n  jmp bb1\n\
         bb1:\n  %r2 = add %r2, 1\n  %r3 = lt %r2, %r1\n  brdiv %r3, bb1, bb2\n\
         bb2:\n  exit\n}\n",
    )
    .unwrap();

    // Barrier-heavy loop: join/wait every iteration.
    let barrier = parse_and_link(
        "kernel @k(params=0, regs=4, barriers=1, entry=bb0) {\n\
         bb0:\n  %r0 = mov 0\n  jmp bb1\n\
         bb1:\n  join b0\n  wait b0\n  %r0 = add %r0, 1\n  %r2 = lt %r0, 1000\n  br %r2, bb1, bb2\n\
         bb2:\n  exit\n}\n",
    )
    .unwrap();

    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(2000 * 32));
    g.bench_function("convergent_alu_loop", |b| {
        b.iter(|| run(&convergent, &cfg, &Launch::new("k", 1)).expect("runs"));
    });
    g.throughput(Throughput::Elements(32 * 40 * 32 / 2));
    g.bench_function("divergent_trip_counts", |b| {
        b.iter(|| run(&divergent, &cfg, &Launch::new("k", 1)).expect("runs"));
    });
    g.throughput(Throughput::Elements(1000 * 32));
    g.bench_function("barrier_per_iteration", |b| {
        b.iter(|| run(&barrier, &cfg, &Launch::new("k", 1)).expect("runs"));
    });

    // Memory-heavy: coalescing model cost.
    let memory = parse_and_link(
        "kernel @k(params=0, regs=4, barriers=0, entry=bb0) {\n\
         bb0:\n  %r0 = special.tid\n  %r1 = mov 0\n  jmp bb1\n\
         bb1:\n  %r2 = mul %r1, 33\n  %r2 = add %r2, %r0\n  %r2 = rem %r2, 4096\n  %r3 = load global[%r2]\n  %r1 = add %r1, 1\n  %r2 = lt %r1, 500\n  br %r2, bb1, bb2\n\
         bb2:\n  exit\n}\n",
    )
    .unwrap();
    let mut launch = Launch::new("k", 1);
    launch.global_mem = vec![Value::I64(0); 4096];
    g.throughput(Throughput::Elements(500 * 32));
    g.bench_function("scattered_loads", |b| {
        b.iter(|| run(&memory, &cfg, &launch).expect("runs"));
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
