//! Figure 10 and the §5.4 funnel: automatic Speculative Reconvergence.
//!
//! Two experiments:
//!
//! - **Upside** (Figure 10): strip the user annotations from the Table-2
//!   workloads, let the §4.5 detector place them, and measure the gain —
//!   the paper reports automatic SR matching the programmer-annotated
//!   variants on these applications.
//! - **Funnel** (§5.4 narrative): scan a 520-kernel corpus; count kernels
//!   with SIMT efficiency below ~80%, kernels where the detector finds
//!   non-trivial opportunity, and kernels with significant improvement
//!   when the detected annotation is applied.

use crate::Scale;
use simt_sim::SimConfig;
use specrecon_core::{
    compile_profile_guided, detect, detect_profiled, CompileOptions, DetectOptions,
};

use workloads::eval::{self, Engine};
use workloads::{corpus, registry, Workload};

/// One Figure-10 bar: automatic SR on a de-annotated application.
#[derive(Clone, Debug)]
pub struct UpsideRow {
    /// Application name.
    pub name: String,
    /// Candidates the detector applied.
    pub applied: usize,
    /// Baseline SIMT efficiency.
    pub base_eff: f64,
    /// SIMT efficiency under automatic SR.
    pub auto_eff: f64,
    /// Speedup of automatic SR over the baseline.
    pub speedup: f64,
    /// Speedup of the *user-annotated* variant (for the "automatic matches
    /// manual" claim).
    pub user_speedup: f64,
}

/// Strips user predictions from a workload.
fn deannotate(w: &Workload) -> Workload {
    let mut w2 = w.clone();
    for (_, f) in w2.module.functions.iter_mut() {
        f.predictions.clear();
    }
    w2
}

/// Runs automatic SR over every Table-2 workload, sequentially on the
/// shared engine.
pub fn upside(scale: Scale) -> Vec<UpsideRow> {
    upside_with(eval::shared(), scale)
}

/// [`upside`] on a caller-provided [`Engine`], one job per workload.
pub fn upside_with(engine: &Engine, scale: Scale) -> Vec<UpsideRow> {
    let cfg = SimConfig::default();
    let auto_opts = CompileOptions::automatic(DetectOptions::default());
    let ws: Vec<Workload> = registry().iter().map(|w| scale.apply(w)).collect();
    engine.par_map(&ws, |w| {
        let user = engine
            .compare_with(w, &CompileOptions::speculative(), &cfg)
            .unwrap_or_else(|e| panic!("{} (user) failed: {e}", w.name));
        let bare = deannotate(w);
        let auto = engine
            .compare_with(&bare, &auto_opts, &cfg)
            .unwrap_or_else(|e| panic!("{} (auto) failed: {e}", w.name));
        // Count what the detector applied by re-running compilation
        // reports.
        let compiled = specrecon_core::compile(&bare.module, &auto_opts).expect("compiles");
        let applied: usize = compiled.reports.iter().map(|(_, r)| r.auto_applied.len()).sum();
        UpsideRow {
            name: w.name.to_string(),
            applied,
            base_eff: auto.baseline.simt_eff,
            auto_eff: auto.speculative.simt_eff,
            speedup: auto.speedup(),
            user_speedup: user.speedup(),
        }
    })
}

/// The §5.4 funnel statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Funnel {
    /// Corpus size (the paper scans 520 applications).
    pub total: usize,
    /// Kernels with SIMT efficiency below ~80%.
    pub low_efficiency: usize,
    /// Kernels where the detector found non-trivial opportunity.
    pub detected: usize,
    /// Detected kernels with significant (>10%) runtime improvement.
    pub significant: usize,
}

/// Scans a synthetic corpus of `size` kernels (the paper uses 520) with
/// the static §4.5 heuristics, sequentially on the shared engine.
pub fn funnel(size: usize, seed: u64) -> Funnel {
    funnel_with(eval::shared(), size, seed, false)
}

/// Like [`funnel`], but detection and application use a per-kernel
/// profiling run (the §4.5 "profile information may help" extension).
pub fn funnel_profiled(size: usize, seed: u64) -> Funnel {
    funnel_with(eval::shared(), size, seed, true)
}

/// How far one corpus kernel makes it down the funnel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FunnelStage {
    Efficient,
    LowEfficiency,
    Detected,
    Significant,
}

/// The funnel scan on a caller-provided [`Engine`]: every corpus kernel
/// is an independent job (scan, detect, apply, re-run), and the per-kernel
/// outcomes are aggregated afterwards — so the counts are identical to
/// the sequential scan for any worker count.
pub fn funnel_with(engine: &Engine, size: usize, seed: u64, profiled: bool) -> Funnel {
    let entries = corpus::generate(size, seed);
    let stages = engine.par_map(&entries, |entry| funnel_stage(engine, entry, profiled));
    let mut stats = Funnel { total: size, ..Funnel::default() };
    for stage in stages {
        if stage == FunnelStage::Efficient {
            continue;
        }
        stats.low_efficiency += 1;
        if stage == FunnelStage::LowEfficiency {
            continue;
        }
        stats.detected += 1;
        if stage == FunnelStage::Significant {
            stats.significant += 1;
        }
    }
    stats
}

/// Runs one corpus kernel through the whole funnel.
fn funnel_stage(engine: &Engine, entry: &corpus::CorpusEntry, profiled: bool) -> FunnelStage {
    let cfg = SimConfig::default();
    let auto_opts = CompileOptions::automatic(DetectOptions::default());

    let (base, _) = engine
        .run_config(&entry.workload, &CompileOptions::baseline(), &cfg)
        .unwrap_or_else(|e| panic!("corpus kernel {} failed: {e}", entry.id));
    if base.simt_eff >= 0.8 {
        return FunnelStage::Efficient;
    }

    let kernel_id = entry
        .workload
        .module
        .function_by_name(&entry.workload.launch.kernel)
        .expect("kernel exists");
    let candidates = if profiled {
        let prof_cfg = SimConfig { profile: true, ..cfg.clone() };
        let out = engine
            .run_full(&entry.workload, &CompileOptions::baseline(), &prof_cfg)
            .unwrap_or_else(|e| panic!("profiling corpus kernel {} failed: {e}", entry.id));
        detect_profiled(
            &entry.workload.module.functions[kernel_id],
            kernel_id,
            &out.profile.expect("profiling enabled"),
            &DetectOptions::default(),
        )
    } else {
        detect(&entry.workload.module.functions[kernel_id], &DetectOptions::default())
    };
    if !candidates.iter().any(|c| c.score >= 1.0) {
        return FunnelStage::LowEfficiency;
    }

    let cmp = if profiled {
        let pg = compile_profile_guided(
            &entry.workload.module,
            &CompileOptions::speculative(),
            &DetectOptions::default(),
            &cfg,
            &entry.workload.launch,
        );
        match pg {
            Ok(compiled) => {
                match engine.run_module(&compiled.module, &cfg, &entry.workload.launch) {
                    Ok(out) => Some(base.cycles as f64 / out.metrics.cycles as f64),
                    Err(_) => None,
                }
            }
            Err(_) => None,
        }
    } else {
        engine.compare_with(&entry.workload, &auto_opts, &cfg).ok().map(|c| c.speedup())
    };
    match cmp {
        Some(speedup) if speedup > 1.10 => FunnelStage::Significant,
        _ => FunnelStage::Detected,
    }
}

/// The paper's funnel shape: most kernels are fine; detection fires on a
/// minority of the low-efficiency ones; a minority of those are
/// significant wins.
pub fn sanity_funnel(f: &Funnel) -> Result<(), String> {
    if f.low_efficiency * 100 / f.total.max(1) > 40 {
        return Err(format!(
            "{}/{} kernels low-efficiency; the paper sees a small fraction (75/520)",
            f.low_efficiency, f.total
        ));
    }
    if f.detected > f.low_efficiency {
        return Err("detected more kernels than are low-efficiency".to_string());
    }
    if f.significant > f.detected {
        return Err("significant improvements exceed detected opportunities".to_string());
    }
    if f.detected == 0 || f.significant == 0 {
        return Err(format!("funnel collapsed: {f:?}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn automatic_matches_user_guided_on_applications() {
        for row in upside(Scale::Quick) {
            assert!(row.applied >= 1, "{}: detector found nothing", row.name);
            // §5.4: "automatic Speculative Reconvergence performs the same
            // as programmer-annotated variants" — allow modest drift since
            // auto may choose a slightly different region start.
            assert!(
                (row.speedup / row.user_speedup) > 0.85,
                "{}: auto {:.2}x vs user {:.2}x",
                row.name,
                row.speedup,
                row.user_speedup
            );
        }
    }

    #[test]
    fn funnel_shape_holds_on_a_small_corpus() {
        let f = funnel(80, 0xC3);
        assert_eq!(f.total, 80);
        sanity_funnel(&f).unwrap();
    }

    #[test]
    fn profiled_funnel_is_no_less_precise() {
        let s = funnel(80, 0xC3);
        let p = funnel_profiled(80, 0xC3);
        assert_eq!(s.low_efficiency, p.low_efficiency, "same corpus, same baseline");
        // Profile-guided detection is frequency-aware: it never fires on
        // more kernels than the static heuristics do on this corpus, and
        // its hit rate (significant/detected) is at least as good.
        assert!(p.detected <= s.detected, "static {s:?} vs profiled {p:?}");
        if p.detected > 0 && s.detected > 0 {
            let static_rate = s.significant as f64 / s.detected as f64;
            let profiled_rate = p.significant as f64 / p.detected as f64;
            assert!(profiled_rate >= static_rate - 1e-9, "static {s:?} vs profiled {p:?}");
        }
    }
}
