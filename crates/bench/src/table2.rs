//! Table 2: the benchmark inventory.

use workloads::{microbench, registry, DivergencePattern};

/// One row of Table 2 (plus the Figure 2(c) microbenchmark the paper
/// mentions in §5.1).
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Divergence pattern exercised.
    pub pattern: DivergencePattern,
    /// Description (from the paper's Table 2).
    pub description: String,
}

/// All Table-2 rows plus the common-function-call microbenchmark.
pub fn rows() -> Vec<Row> {
    let mut out: Vec<Row> = registry()
        .iter()
        .map(|w| Row {
            name: w.name.to_string(),
            pattern: w.pattern,
            description: w.description.to_string(),
        })
        .collect();
    let mb = microbench::build_common_call(&microbench::Params::default());
    out.push(Row {
        name: mb.name.to_string(),
        pattern: mb.pattern,
        description: mb.description.to_string(),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_nine_apps_plus_microbenchmark() {
        let rows = rows();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[9].pattern, DivergencePattern::CommonFunctionCall);
        assert!(rows.iter().all(|r| !r.description.is_empty()));
    }
}
