//! `perfbench` — records a `BENCH_<n>.json` throughput snapshot.
//!
//! Runs every registry workload on the decoded executor and measures
//! simulated cycles per wall-clock second (see `perf::measure_hot_loop`),
//! then times the lockstep seed-sweep engine against its scalar per-seed
//! baseline on the Monte Carlo workloads (`perf::measure_seed_sweep`,
//! the `sweep/<name>` / `sweep_scalar/<name>` entries). The snapshot
//! lands at the next free `BENCH_<n>.json` in the current directory
//! unless `--out` says otherwise; `perfgate` compares two such snapshots
//! and fails on regression.
//!
//! ```text
//! perfbench [--label TEXT] [--warps N] [--seeds N] [--min-time SECS] [--out PATH]
//! ```
//!
//! `--seeds 0` skips the seed-sweep group entirely.

use specrecon_bench::perf;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    label: String,
    warps: usize,
    seeds: u64,
    min_time: Duration,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        label: "registry hot loop".to_string(),
        warps: 2,
        seeds: 32,
        min_time: Duration::from_secs_f64(0.4),
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--label" => args.label = value("--label")?,
            "--warps" => {
                args.warps = value("--warps")?.parse().map_err(|e| format!("bad --warps: {e}"))?;
            }
            "--seeds" => {
                args.seeds = value("--seeds")?.parse().map_err(|e| format!("bad --seeds: {e}"))?;
            }
            "--min-time" => {
                let secs: f64 =
                    value("--min-time")?.parse().map_err(|e| format!("bad --min-time: {e}"))?;
                args.min_time = Duration::from_secs_f64(secs);
            }
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--help" | "-h" => {
                println!(
                    "perfbench [--label TEXT] [--warps N] [--seeds N] [--min-time SECS] \
                     [--out PATH]\n\
                     Records a BENCH_<n>.json throughput snapshot: the registry hot loop\n\
                     plus the seed-sweep vs scalar-baseline group (--seeds 0 skips it)."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perfbench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out_path = args.out.unwrap_or_else(|| perf::next_snapshot_path(std::path::Path::new(".")));
    eprintln!(
        "perfbench: measuring registry hot loop (warps={}, min-time={:?}) ...",
        args.warps, args.min_time
    );
    let mut snapshot = perf::measure_hot_loop(&args.label, args.warps, args.min_time);
    let geomean = snapshot.geomean_cycles_per_sec();
    if args.seeds > 0 {
        eprintln!(
            "perfbench: measuring seed sweeps vs scalar baselines ({} seeds) ...",
            args.seeds
        );
        snapshot.results.extend(perf::measure_seed_sweep(args.warps, args.seeds, args.min_time));
    }
    println!("{:<20} {:>14} {:>8} {:>16}", "workload", "cycles/run", "runs", "cycles/sec");
    for r in &snapshot.results {
        println!(
            "{:<20} {:>14} {:>8} {:>16.3e}",
            r.name, r.cycles_per_run, r.runs, r.cycles_per_sec
        );
    }
    println!("{:<20} {:>14} {:>8} {:>16.3e}", "hot-loop geomean", "", "", geomean);
    for (name, speedup) in perf::sweep_speedups(&snapshot) {
        println!("sweep speedup {name:<12} {speedup:>6.2}x");
    }
    if let Err(e) = std::fs::write(&out_path, snapshot.to_json()) {
        eprintln!("perfbench: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("perfbench: wrote {}", out_path.display());
    ExitCode::SUCCESS
}
