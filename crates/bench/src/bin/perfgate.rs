//! `perfgate` — fails the build when hot-loop throughput regresses.
//!
//! Compares the two most recent `BENCH_<n>.json` snapshots (or an
//! explicit `--old`/`--new` pair) and exits non-zero when any workload
//! lost more than the threshold (default 10%) of its cycles/sec.
//!
//! ```text
//! perfgate [--old PATH] [--new PATH] [--threshold FRACTION]
//! perfgate --check-format [PATH ...]
//! perfgate --chain [PATH ...]
//! ```
//!
//! `--check-format` only validates that the snapshots parse against the
//! current schema — the CI smoke job runs it so the format cannot rot.
//!
//! `--chain` format-validates every given snapshot, sorts them by their
//! `BENCH_<n>` index, and gates each adjacent pair in sequence — the
//! whole snapshot history in one step. Both modes treat empty input as
//! an error: a shell glob that matched nothing must fail the step, not
//! skip it.

use specrecon_bench::perf;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn load(path: &PathBuf) -> Result<perf::Snapshot, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    perf::Snapshot::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Rejects paths that are unexpanded shell globs: a pattern that
/// reaches us verbatim means the glob matched zero files, and treating
/// it as a filename would either error confusingly or, with nullglob,
/// never arrive at all — so make the situation loud.
fn reject_unexpanded_globs(paths: &[PathBuf]) -> Result<(), String> {
    for p in paths {
        let s = p.to_string_lossy();
        if (s.contains('*') || s.contains('?') || s.contains('[')) && !p.exists() {
            return Err(format!(
                "glob pattern {s:?} matched no files (shell passed it through unexpanded)"
            ));
        }
    }
    Ok(())
}

/// Resolves the snapshot list for `--check-format`/`--chain`: explicit
/// paths when given (globs that matched nothing are an error), else
/// every `BENCH_<n>.json` in the current directory. Empty input is an
/// explicit error in both modes.
fn resolve_snapshots(paths: Vec<PathBuf>) -> Result<Vec<PathBuf>, String> {
    if paths.is_empty() {
        let found: Vec<PathBuf> =
            perf::snapshot_files(std::path::Path::new(".")).into_iter().map(|(_, p)| p).collect();
        if found.is_empty() {
            return Err("no BENCH_<n>.json snapshots found in the current directory".into());
        }
        return Ok(found);
    }
    reject_unexpanded_globs(&paths)?;
    Ok(paths)
}

fn check_format(paths: Vec<PathBuf>) -> ExitCode {
    let paths = match resolve_snapshots(paths) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("perfgate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    for p in &paths {
        match load(p) {
            Ok(s) => {
                println!("{}: ok ({} workloads, label {:?})", p.display(), s.results.len(), s.label)
            }
            Err(e) => {
                eprintln!("perfgate: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Prints one old→new comparison and returns whether it passed.
fn gate_pair(
    old_path: &Path,
    old_snap: &perf::Snapshot,
    new_path: &Path,
    new_snap: &perf::Snapshot,
    threshold: f64,
) -> bool {
    println!(
        "perfgate: {} ({:?}) -> {} ({:?}), threshold {:.0}%",
        old_path.display(),
        old_snap.label,
        new_path.display(),
        new_snap.label,
        threshold * 100.0
    );
    let report = perf::gate(old_snap, new_snap, threshold);
    println!("{:<12} {:>14} {:>14} {:>9}", "workload", "old c/s", "new c/s", "ratio");
    for l in &report.lines {
        println!(
            "{:<12} {:>14.3e} {:>14.3e} {:>8.2}x{}",
            l.name,
            l.old,
            l.new,
            l.ratio,
            if l.regressed { "  REGRESSED" } else { "" }
        );
    }
    for name in &report.unmatched {
        println!("{name:<12} (only in one snapshot, not gated)");
    }
    println!("geomean ratio: {:.2}x", report.geomean_ratio);
    report.passed()
}

/// `--chain`: validate every snapshot, then gate each adjacent pair.
fn chain(paths: Vec<PathBuf>, threshold: f64) -> ExitCode {
    let mut paths = match resolve_snapshots(paths) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("perfgate: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Adjacency is by snapshot index, not shell sort order (where
    // BENCH_10 would land between BENCH_1 and BENCH_2).
    let index = |p: &PathBuf| {
        p.file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("BENCH_")?.strip_suffix(".json")?.parse::<u64>().ok())
    };
    if paths.iter().all(|p| index(p).is_some()) {
        paths.sort_by_key(|p| index(p).expect("all indices parse"));
    }
    if paths.len() < 2 {
        eprintln!("perfgate: --chain needs at least two snapshots to gate (got {})", paths.len());
        return ExitCode::FAILURE;
    }
    let mut snaps = Vec::with_capacity(paths.len());
    for p in &paths {
        match load(p) {
            Ok(s) => {
                println!(
                    "{}: ok ({} workloads, label {:?})",
                    p.display(),
                    s.results.len(),
                    s.label
                );
                snaps.push(s);
            }
            Err(e) => {
                eprintln!("perfgate: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut ok = true;
    for i in 1..snaps.len() {
        println!();
        ok &= gate_pair(&paths[i - 1], &snaps[i - 1], &paths[i], &snaps[i], threshold);
    }
    if ok {
        println!("perfgate: PASS ({} snapshots, {} gates)", snaps.len(), snaps.len() - 1);
        ExitCode::SUCCESS
    } else {
        eprintln!("perfgate: FAIL — throughput regressed beyond {:.0}%", threshold * 100.0);
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut old: Option<PathBuf> = None;
    let mut new: Option<PathBuf> = None;
    let mut threshold = perf::DEFAULT_THRESHOLD;
    let mut format_only = false;
    let mut chain_mode = false;
    let mut positional: Vec<PathBuf> = Vec::new();

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--old" => old = Some(PathBuf::from(value("--old")?)),
                "--new" => new = Some(PathBuf::from(value("--new")?)),
                "--threshold" => {
                    threshold = value("--threshold")?
                        .parse()
                        .map_err(|e| format!("bad --threshold: {e}"))?;
                }
                "--check-format" => format_only = true,
                "--chain" => chain_mode = true,
                "--help" | "-h" => {
                    println!(
                        "perfgate [--old PATH] [--new PATH] [--threshold FRACTION]\n\
                         perfgate --check-format [PATH ...]\n\
                         perfgate --chain [PATH ...]\n\
                         Compares the two most recent BENCH_<n>.json snapshots and fails\n\
                         when any workload regressed beyond the threshold (default 10%).\n\
                         --chain validates every snapshot and gates each adjacent pair."
                    );
                    std::process::exit(0);
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown argument {other:?}"));
                }
                path => positional.push(PathBuf::from(path)),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("perfgate: {e}");
            return ExitCode::FAILURE;
        }
    }

    if format_only {
        return check_format(positional);
    }
    if chain_mode {
        return chain(positional, threshold);
    }

    let (old_path, new_path) = match (old, new) {
        (Some(o), Some(n)) => (o, n),
        (o, n) => {
            let found = perf::snapshot_files(std::path::Path::new("."));
            if found.len() < 2 && (o.is_none() || n.is_none()) {
                eprintln!(
                    "perfgate: need two BENCH_<n>.json snapshots to compare \
                     (found {}); record one with `cargo run --release -p specrecon-bench \
                     --bin perfbench`",
                    found.len()
                );
                return ExitCode::FAILURE;
            }
            let mut tail = found.into_iter().rev();
            let latest = tail.next().map(|(_, p)| p);
            let previous = tail.next().map(|(_, p)| p);
            (
                o.or(previous).expect("previous snapshot present"),
                n.or(latest).expect("latest snapshot present"),
            )
        }
    };

    let (old_snap, new_snap) = match (load(&old_path), load(&new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (o, n) => {
            for e in [o.err(), n.err()].into_iter().flatten() {
                eprintln!("perfgate: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    if gate_pair(&old_path, &old_snap, &new_path, &new_snap, threshold) {
        println!("perfgate: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("perfgate: FAIL — throughput regressed beyond {:.0}%", threshold * 100.0);
        ExitCode::FAILURE
    }
}
