//! `perfgate` — fails the build when hot-loop throughput regresses.
//!
//! Compares the two most recent `BENCH_<n>.json` snapshots (or an
//! explicit `--old`/`--new` pair) and exits non-zero when any workload
//! lost more than the threshold (default 10%) of its cycles/sec.
//!
//! ```text
//! perfgate [--old PATH] [--new PATH] [--threshold FRACTION]
//! perfgate --check-format [PATH ...]
//! ```
//!
//! `--check-format` only validates that the snapshots parse against the
//! current schema — the CI smoke job runs it so the format cannot rot.

use specrecon_bench::perf;
use std::path::PathBuf;
use std::process::ExitCode;

fn load(path: &PathBuf) -> Result<perf::Snapshot, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    perf::Snapshot::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn check_format(paths: Vec<PathBuf>) -> ExitCode {
    let paths = if paths.is_empty() {
        let found: Vec<PathBuf> =
            perf::snapshot_files(std::path::Path::new(".")).into_iter().map(|(_, p)| p).collect();
        if found.is_empty() {
            eprintln!("perfgate: no BENCH_<n>.json snapshots found in the current directory");
            return ExitCode::FAILURE;
        }
        found
    } else {
        paths
    };
    let mut ok = true;
    for p in &paths {
        match load(p) {
            Ok(s) => {
                println!("{}: ok ({} workloads, label {:?})", p.display(), s.results.len(), s.label)
            }
            Err(e) => {
                eprintln!("perfgate: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut old: Option<PathBuf> = None;
    let mut new: Option<PathBuf> = None;
    let mut threshold = perf::DEFAULT_THRESHOLD;
    let mut format_only = false;
    let mut positional: Vec<PathBuf> = Vec::new();

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--old" => old = Some(PathBuf::from(value("--old")?)),
                "--new" => new = Some(PathBuf::from(value("--new")?)),
                "--threshold" => {
                    threshold = value("--threshold")?
                        .parse()
                        .map_err(|e| format!("bad --threshold: {e}"))?;
                }
                "--check-format" => format_only = true,
                "--help" | "-h" => {
                    println!(
                        "perfgate [--old PATH] [--new PATH] [--threshold FRACTION]\n\
                         perfgate --check-format [PATH ...]\n\
                         Compares the two most recent BENCH_<n>.json snapshots and fails\n\
                         when any workload regressed beyond the threshold (default 10%)."
                    );
                    std::process::exit(0);
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown argument {other:?}"));
                }
                path => positional.push(PathBuf::from(path)),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("perfgate: {e}");
            return ExitCode::FAILURE;
        }
    }

    if format_only {
        return check_format(positional);
    }

    let (old_path, new_path) = match (old, new) {
        (Some(o), Some(n)) => (o, n),
        (o, n) => {
            let found = perf::snapshot_files(std::path::Path::new("."));
            if found.len() < 2 && (o.is_none() || n.is_none()) {
                eprintln!(
                    "perfgate: need two BENCH_<n>.json snapshots to compare \
                     (found {}); record one with `cargo run --release -p specrecon-bench \
                     --bin perfbench`",
                    found.len()
                );
                return ExitCode::FAILURE;
            }
            let mut tail = found.into_iter().rev();
            let latest = tail.next().map(|(_, p)| p);
            let previous = tail.next().map(|(_, p)| p);
            (
                o.or(previous).expect("previous snapshot present"),
                n.or(latest).expect("latest snapshot present"),
            )
        }
    };

    let (old_snap, new_snap) = match (load(&old_path), load(&new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (o, n) => {
            for e in [o.err(), n.err()].into_iter().flatten() {
                eprintln!("perfgate: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    println!(
        "perfgate: {} ({:?}) -> {} ({:?}), threshold {:.0}%",
        old_path.display(),
        old_snap.label,
        new_path.display(),
        new_snap.label,
        threshold * 100.0
    );
    let report = perf::gate(&old_snap, &new_snap, threshold);
    println!("{:<12} {:>14} {:>14} {:>9}", "workload", "old c/s", "new c/s", "ratio");
    for l in &report.lines {
        println!(
            "{:<12} {:>14.3e} {:>14.3e} {:>8.2}x{}",
            l.name,
            l.old,
            l.new,
            l.ratio,
            if l.regressed { "  REGRESSED" } else { "" }
        );
    }
    for name in &report.unmatched {
        println!("{name:<12} (only in one snapshot, not gated)");
    }
    println!("geomean ratio: {:.2}x", report.geomean_ratio);
    if report.passed() {
        println!("perfgate: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("perfgate: FAIL — throughput regressed beyond {:.0}%", threshold * 100.0);
        ExitCode::FAILURE
    }
}
