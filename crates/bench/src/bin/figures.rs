//! Regenerates the paper's tables and figures as markdown (and CSV files
//! under `results/` when `--csv` is passed).
//!
//! ```text
//! figures [--quick] [--csv] [--jobs N] [table2|fig7|fig8|fig9|fig10|
//!          funnel|ablate-deconflict|ablate-unroll|ablate-sched|all]
//! ```
//!
//! `--jobs N` sets the evaluation engine's worker count (default: the
//! machine's available parallelism). The table data is byte-identical for
//! every `N`; only wall-clock changes. Each phase reports its timing.

use specrecon_bench::report::{csv, markdown_table, pct, ratio};
use specrecon_bench::{ablate, fig10, fig7, fig9, table2, Scale};
use std::fs;
use std::path::Path;
use std::time::Instant;
use workloads::Engine;

struct Opts {
    scale: Scale,
    write_csv: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts { scale: Scale::Full, write_csv: false };
    let mut jobs: Option<usize> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.scale = Scale::Quick,
            "--csv" => opts.write_csv = true,
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--jobs requires a value");
                    std::process::exit(2);
                });
                jobs = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs: `{v}` is not a number");
                    std::process::exit(2);
                }));
            }
            other => match other.strip_prefix("--jobs=") {
                Some(v) => {
                    jobs = Some(v.parse().unwrap_or_else(|_| {
                        eprintln!("--jobs: `{v}` is not a number");
                        std::process::exit(2);
                    }));
                }
                None => targets.push(other.to_string()),
            },
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }

    let engine = match jobs {
        Some(n) => Engine::new(n),
        None => Engine::with_default_parallelism(),
    };
    println!("(evaluation engine: {} jobs)", engine.jobs());

    for t in &targets {
        let e = &engine;
        match t.as_str() {
            "table2" => timed(t, || emit_table2(&opts)),
            "fig7" => timed(t, || emit_fig7_fig8(&opts, e, true, false)),
            "fig8" => timed(t, || emit_fig7_fig8(&opts, e, false, true)),
            "fig9" => timed(t, || emit_fig9(&opts, e)),
            "fig10" => timed(t, || emit_fig10(&opts, e)),
            "funnel" => timed(t, || emit_funnel(&opts, e)),
            "ablate-deconflict" => timed(t, || emit_ablate_deconflict(&opts, e)),
            "ablate-unroll" => timed(t, || emit_ablate_unroll(&opts, e)),
            "ablate-sched" => timed(t, || emit_ablate_sched(&opts, e)),
            "ablate-sync" => timed(t, || emit_ablate_sync(&opts, e)),
            "ablate-width" => timed(t, || emit_ablate_width(&opts, e)),
            "ablate-cache" => timed(t, || emit_ablate_cache(&opts, e)),
            "ablate-mem" => timed(t, || emit_ablate_mem(&opts, e)),
            "ablate-hw" => timed(t, || emit_ablate_hw(&opts, e)),
            "ablate-meld" => timed(t, || emit_ablate_meld(&opts, e)),
            "ablate-threshold" => timed(t, || emit_ablate_threshold(&opts, e)),
            "all" => {
                timed("table2", || emit_table2(&opts));
                timed("fig7+fig8", || emit_fig7_fig8(&opts, e, true, true));
                timed("fig9", || emit_fig9(&opts, e));
                timed("fig10", || emit_fig10(&opts, e));
                timed("funnel", || emit_funnel(&opts, e));
                timed("ablate-deconflict", || emit_ablate_deconflict(&opts, e));
                timed("ablate-unroll", || emit_ablate_unroll(&opts, e));
                timed("ablate-sched", || emit_ablate_sched(&opts, e));
                timed("ablate-sync", || emit_ablate_sync(&opts, e));
                timed("ablate-width", || emit_ablate_width(&opts, e));
                timed("ablate-cache", || emit_ablate_cache(&opts, e));
                timed("ablate-mem", || emit_ablate_mem(&opts, e));
                timed("ablate-hw", || emit_ablate_hw(&opts, e));
                timed("ablate-meld", || emit_ablate_meld(&opts, e));
                timed("ablate-threshold", || emit_ablate_threshold(&opts, e));
            }
            other => {
                eprintln!("unknown target `{other}`");
                eprintln!("targets: table2 fig7 fig8 fig9 fig10 funnel ablate-deconflict ablate-unroll ablate-sched ablate-sync ablate-width ablate-cache ablate-mem ablate-hw ablate-meld ablate-threshold all");
                std::process::exit(2);
            }
        }
    }
}

/// Runs one phase and reports its wall-clock time.
fn timed(phase: &str, f: impl FnOnce()) {
    let t0 = Instant::now();
    f();
    println!("({phase}: {:.2}s wall-clock)", t0.elapsed().as_secs_f64());
}

fn save_csv(opts: &Opts, name: &str, headers: &[&str], rows: &[Vec<String>]) {
    if !opts.write_csv {
        return;
    }
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    if let Err(e) = fs::write(&path, csv(headers, rows)) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        println!("(wrote {})", path.display());
    }
}

fn emit_table2(opts: &Opts) {
    println!("\n## Table 2 — benchmarks\n");
    let rows: Vec<Vec<String>> = table2::rows()
        .into_iter()
        .map(|r| vec![r.name, r.pattern.to_string(), r.description])
        .collect();
    let headers = ["benchmark", "pattern", "description"];
    println!("{}", markdown_table(&headers, &rows));
    save_csv(opts, "table2", &headers, &rows);
}

fn emit_fig7_fig8(opts: &Opts, engine: &Engine, fig7_on: bool, fig8_on: bool) {
    let data = fig7::collect_with(engine, opts.scale);
    if let Err(e) = fig7::sanity(&data) {
        eprintln!("WARNING: figure 7/8 shape check failed: {e}");
    }
    if fig7_on {
        println!("\n## Figure 7 — SIMT efficiency (baseline vs Speculative Reconvergence)\n");
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    pct(r.base_eff),
                    pct(r.spec_eff),
                    pct(r.base_roi_eff),
                    pct(r.spec_roi_eff),
                ]
            })
            .collect();
        let headers = ["workload", "baseline eff", "SR eff", "baseline ROI eff", "SR ROI eff"];
        println!("{}", markdown_table(&headers, &rows));
        save_csv(opts, "fig7", &headers, &rows);
    }
    if fig8_on {
        println!("\n## Figure 8 — relative SIMT-efficiency improvement vs speedup\n");
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|r| vec![r.name.clone(), ratio(r.eff_gain), ratio(r.speedup)])
            .collect();
        let headers = ["workload", "SIMT efficiency gain", "speedup"];
        println!("{}", markdown_table(&headers, &rows));
        save_csv(opts, "fig8", &headers, &rows);
    }
}

fn emit_fig9(opts: &Opts, engine: &Engine) {
    println!("\n## Figure 9 — soft-barrier threshold sweep (PathTracer, XSBench)\n");
    println!("(threshold = arrivals required to release; 32 = full/hard barrier)\n");
    let data = fig9::collect_with(engine, opts.scale);
    if let Err(e) = fig9::sanity(&data) {
        eprintln!("WARNING: figure 9 shape check failed: {e}");
    }
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|p| vec![p.app.clone(), p.threshold.to_string(), pct(p.simt_eff), ratio(p.speedup)])
        .collect();
    let headers = ["app", "threshold", "SIMT efficiency", "speedup"];
    println!("{}", markdown_table(&headers, &rows));
    save_csv(opts, "fig9", &headers, &rows);
}

fn emit_fig10(opts: &Opts, engine: &Engine) {
    println!("\n## Figure 10 — automatic Speculative Reconvergence upside\n");
    let rows: Vec<Vec<String>> = fig10::upside_with(engine, opts.scale)
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                r.applied.to_string(),
                pct(r.base_eff),
                pct(r.auto_eff),
                ratio(r.speedup),
                ratio(r.user_speedup),
            ]
        })
        .collect();
    let headers = [
        "app",
        "applied candidates",
        "baseline eff",
        "auto-SR eff",
        "auto speedup",
        "user speedup",
    ];
    println!("{}", markdown_table(&headers, &rows));
    save_csv(opts, "fig10", &headers, &rows);
}

fn emit_funnel(opts: &Opts, engine: &Engine) {
    let size = match opts.scale {
        Scale::Quick => 120,
        Scale::Full => 520,
    };
    println!("\n## §5.4 funnel — corpus scan ({size} synthetic applications)\n");
    let f = fig10::funnel_with(engine, size, 0x520, false);
    if let Err(e) = fig10::sanity_funnel(&f) {
        eprintln!("WARNING: funnel shape check failed: {e}");
    }
    let p = fig10::funnel_with(engine, size, 0x520, true);
    let rows = vec![
        vec!["applications scanned".to_string(), f.total.to_string(), p.total.to_string()],
        vec![
            "SIMT efficiency < ~80%".to_string(),
            f.low_efficiency.to_string(),
            p.low_efficiency.to_string(),
        ],
        vec![
            "non-trivial opportunity detected".to_string(),
            f.detected.to_string(),
            p.detected.to_string(),
        ],
        vec![
            "significant improvement".to_string(),
            f.significant.to_string(),
            p.significant.to_string(),
        ],
    ];
    let headers = ["stage", "static (paper's §4.5)", "profile-guided"];
    println!("{}", markdown_table(&headers, &rows));
    println!("(paper, static: 520 scanned, 75 low-efficiency, 16 detected, 5 significant)\n");
    save_csv(opts, "funnel", &headers, &rows);
}

fn emit_ablate_deconflict(opts: &Opts, engine: &Engine) {
    println!("\n## Ablation — §4.3 deconfliction strategy\n");
    let rows: Vec<Vec<String>> = ablate::deconflict_with(engine, opts.scale)
        .into_iter()
        .map(|r| vec![r.name, ratio(r.dynamic_speedup), ratio(r.static_speedup)])
        .collect();
    let headers = ["workload", "dynamic speedup", "static speedup"];
    println!("{}", markdown_table(&headers, &rows));
    save_csv(opts, "ablate_deconflict", &headers, &rows);
}

fn emit_ablate_unroll(opts: &Opts, engine: &Engine) {
    println!("\n## Ablation — §6 partial unrolling × Loop Merge (RSBench)\n");
    let rows: Vec<Vec<String>> = ablate::unroll_with(engine, opts.scale)
        .into_iter()
        .map(|r| {
            vec![
                format!("x{}", r.factor),
                r.cycles.to_string(),
                r.barrier_ops.to_string(),
                pct(r.simt_eff),
            ]
        })
        .collect();
    let headers = ["unroll factor", "cycles", "barrier ops", "SIMT efficiency"];
    println!("{}", markdown_table(&headers, &rows));
    save_csv(opts, "ablate_unroll", &headers, &rows);
}

fn emit_ablate_sched(opts: &Opts, engine: &Engine) {
    println!("\n## Ablation — scheduler-policy sensitivity (RSBench)\n");
    let rows: Vec<Vec<String>> = ablate::scheduler_with(engine, opts.scale)
        .into_iter()
        .map(|r| {
            vec![
                format!("{:?}", r.policy),
                r.base_cycles.to_string(),
                r.spec_cycles.to_string(),
                ratio(r.speedup),
            ]
        })
        .collect();
    let headers = ["policy", "baseline cycles", "SR cycles", "speedup"];
    println!("{}", markdown_table(&headers, &rows));
    save_csv(opts, "ablate_sched", &headers, &rows);
}

fn emit_ablate_sync(opts: &Opts, engine: &Engine) {
    println!("\n## Ablation — no sync vs PDOM vs Speculative Reconvergence\n");
    let rows: Vec<Vec<String>> = ablate::sync_variants_with(engine, opts.scale)
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                pct(r.none_eff),
                pct(r.pdom_eff),
                pct(r.sr_eff),
                r.cycles[0].to_string(),
                r.cycles[1].to_string(),
                r.cycles[2].to_string(),
            ]
        })
        .collect();
    let headers =
        ["workload", "none eff", "PDOM eff", "SR eff", "none cycles", "PDOM cycles", "SR cycles"];
    println!("{}", markdown_table(&headers, &rows));
    save_csv(opts, "ablate_sync", &headers, &rows);
}

fn emit_ablate_width(opts: &Opts, engine: &Engine) {
    println!("\n## Ablation — warp width sensitivity (RSBench)\n");
    let rows: Vec<Vec<String>> = ablate::warp_width_with(engine, opts.scale)
        .into_iter()
        .map(|r| vec![r.width.to_string(), pct(r.base_eff), ratio(r.speedup)])
        .collect();
    let headers = ["warp width", "baseline eff", "SR speedup"];
    println!("{}", markdown_table(&headers, &rows));
    save_csv(opts, "ablate_width", &headers, &rows);
}

fn emit_ablate_cache(opts: &Opts, engine: &Engine) {
    println!("\n## Ablation — L1 cache cost model (memory-sensitive workloads)\n");
    let rows: Vec<Vec<String>> = ablate::cache_with(engine, opts.scale)
        .into_iter()
        .map(|r| vec![r.name, ratio(r.speedup_no_cache), ratio(r.speedup_cache), pct(r.hit_rate)])
        .collect();
    let headers = ["workload", "SR speedup (no cache)", "SR speedup (cache)", "hit rate"];
    println!("{}", markdown_table(&headers, &rows));
    save_csv(opts, "ablate_cache", &headers, &rows);
}

fn emit_ablate_mem(opts: &Opts, engine: &Engine) {
    println!("\n## Ablation — memory-hierarchy L1 capacity sweep (tight MSHRs)\n");
    let rows: Vec<Vec<String>> = ablate::mem_hier_with(engine, opts.scale)
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                r.l1_lines.to_string(),
                ratio(r.speedup),
                pct(r.l1_hit_rate),
                r.mshr_stall_cycles.to_string(),
                r.baseline_mshr_stall_cycles.to_string(),
            ]
        })
        .collect();
    let headers = [
        "workload",
        "L1 lines",
        "SR speedup",
        "SR L1 hit rate",
        "SR mshr stalls",
        "base mshr stalls",
    ];
    println!("{}", markdown_table(&headers, &rows));
    save_csv(opts, "ablate_mem", &headers, &rows);
}

fn emit_ablate_hw(opts: &Opts, engine: &Engine) {
    println!("\n## Ablation — hardware reconvergence models × {{PDOM, SR}}\n");
    println!(
        "(gap closed = fraction of the barrier-file SR cycle win that the hardware \
         model's PDOM run recovers on its own; negative = the model costs cycles)\n"
    );
    let data = ablate::hw_recon_with(engine, opts.scale);
    let rows: Vec<Vec<String>> = data
        .chunks(ablate::HW_RECON_MODELS.len())
        .flat_map(|chunk| {
            let pdom_bf = chunk[0].pdom_cycles as f64;
            let gap = pdom_bf - chunk[0].sr_cycles as f64;
            chunk
                .iter()
                .map(|r| {
                    let closed = if r.model == "barrier-file" || gap.abs() < 1.0 {
                        "—".to_string()
                    } else {
                        pct((pdom_bf - r.pdom_cycles as f64) / gap)
                    };
                    vec![
                        r.name.clone(),
                        r.model.clone(),
                        r.pdom_cycles.to_string(),
                        r.sr_cycles.to_string(),
                        ratio(r.speedup),
                        pct(r.pdom_eff),
                        pct(r.sr_eff),
                        closed,
                    ]
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let headers = [
        "workload",
        "model",
        "PDOM cycles",
        "SR cycles",
        "SR speedup",
        "PDOM eff",
        "SR eff",
        "gap closed",
    ];
    println!("{}", markdown_table(&headers, &rows));
    save_csv(opts, "ablate_hw", &headers, &rows);
}

fn emit_ablate_meld(opts: &Opts, engine: &Engine) {
    println!("\n## Ablation — divergence-repair strategies (control-flow melding)\n");
    println!(
        "(SRAD's clamp/diffuse arms share an expensive update tail — melding \
         territory; MUMmer's divergence is trip-count imbalance — SR territory)\n"
    );
    let rows: Vec<Vec<String>> = ablate::meld_with(engine, opts.scale)
        .into_iter()
        .map(|r| {
            vec![r.name, r.repair, r.cycles.to_string(), pct(r.simt_eff), r.barrier_ops.to_string()]
        })
        .collect();
    let headers = ["workload", "repair", "cycles", "SIMT efficiency", "barrier ops"];
    println!("{}", markdown_table(&headers, &rows));
    save_csv(opts, "ablate_meld", &headers, &rows);
}

fn emit_ablate_threshold(opts: &Opts, engine: &Engine) {
    println!("\n## Ablation — best soft-barrier threshold per workload\n");
    let rows: Vec<Vec<String>> = ablate::threshold_with(engine, opts.scale)
        .into_iter()
        .map(|r| {
            vec![r.name, r.best_threshold.to_string(), ratio(r.best_speedup), ratio(r.full_speedup)]
        })
        .collect();
    let headers = ["workload", "best threshold", "best speedup", "full-barrier speedup"];
    println!("{}", markdown_table(&headers, &rows));
    save_csv(opts, "ablate_threshold", &headers, &rows);
}
