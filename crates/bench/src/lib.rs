//! # specrecon-bench — regenerates every table and figure of the paper
//!
//! Each module computes the data behind one artifact of the evaluation
//! section of *Speculative Reconvergence for Improved SIMT Efficiency*
//! (CGO 2020); the `figures` binary renders them as markdown/CSV, and the
//! Criterion benches in `benches/` measure the compiler and simulator
//! throughput on the same configurations.
//!
//! | artifact | module |
//! |---|---|
//! | Table 2 (benchmarks)                    | [`table2`]   |
//! | Figure 7 (SIMT efficiency)              | [`fig7`]     |
//! | Figure 8 (efficiency gain vs speedup)   | [`fig7`] (derived) |
//! | Figure 9 (soft-barrier threshold sweep) | [`fig9`]     |
//! | Figure 10 + §5.4 funnel (automatic SR)  | [`fig10`]    |
//! | §4.3 static-vs-dynamic deconfliction    | [`ablate`]   |
//! | §6 partial unrolling × Loop Merge       | [`ablate`]   |
//! | scheduler-policy sensitivity            | [`ablate`]   |

#![warn(missing_docs)]

pub mod ablate;
pub mod fig10;
pub mod fig7;
pub mod fig9;
pub mod perf;
pub mod report;
pub mod table2;

/// Problem-size selector: `Quick` shrinks launches for CI/tests, `Full`
/// uses the workloads' default parameters (what EXPERIMENTS.md records).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small launches (1 warp) for fast iteration.
    Quick,
    /// Default workload parameters.
    Full,
}

impl Scale {
    /// Applies the scale to a workload (shrinks the launch for `Quick`).
    pub fn apply(self, w: &workloads::Workload) -> workloads::Workload {
        match self {
            Scale::Quick => workloads::eval::with_warps(w, 1),
            Scale::Full => w.clone(),
        }
    }
}
