//! Figure 9: SIMT efficiency and speedup as a function of the
//! soft-barrier threshold, for PathTracer and XSBench.
//!
//! Threshold semantics (documented in EXPERIMENTS.md): our `T` is the
//! number of threads that must arrive at the reconvergence point before
//! the group releases; `T = warp width` (and degenerate values `0`/`1`)
//! lower to the hard barrier. The paper's x-axis counts *active threads
//! remaining*, i.e. roughly `warp_width - T`; either way the qualitative
//! claim is the same: PathTracer (cheap refill) peaks at full convergence,
//! XSBench (expensive refill) peaks at a partial threshold.

use crate::Scale;
use simt_sim::SimConfig;
use specrecon_core::CompileOptions;
use workloads::eval::{self, with_threshold, Engine};
use workloads::{pathtracer, xsbench, Workload};

/// One point of a Figure 9 curve.
#[derive(Clone, Debug)]
pub struct Point {
    /// Application name.
    pub app: String,
    /// Soft-barrier threshold (32 = hard/full barrier).
    pub threshold: u32,
    /// SIMT efficiency at this threshold.
    pub simt_eff: f64,
    /// Speedup over the PDOM baseline at this threshold.
    pub speedup: f64,
}

/// The default threshold grid (matching the paper's 0..32 sweep at step
/// 4, with 32 = full barrier).
pub const THRESHOLDS: [u32; 9] = [2, 4, 8, 12, 16, 20, 24, 28, 32];

/// Sweeps both Figure 9 applications over [`THRESHOLDS`], sequentially
/// on the shared engine.
pub fn collect(scale: Scale) -> Vec<Point> {
    collect_with(eval::shared(), scale)
}

/// [`collect`] on a caller-provided [`Engine`]: every (app, threshold)
/// point is an independent job on the engine's worker pool.
pub fn collect_with(engine: &Engine, scale: Scale) -> Vec<Point> {
    let mut out = Vec::new();
    for w in [
        pathtracer::build(&pathtracer::Params::default()),
        xsbench::build(&xsbench::Params::default()),
    ] {
        out.extend(sweep_with(engine, &scale.apply(&w), &THRESHOLDS));
    }
    out
}

/// Sweeps one workload over the given thresholds.
pub fn sweep(w: &Workload, thresholds: &[u32]) -> Vec<Point> {
    sweep_with(eval::shared(), w, thresholds)
}

/// [`sweep`] on a caller-provided [`Engine`], one job per threshold.
pub fn sweep_with(engine: &Engine, w: &Workload, thresholds: &[u32]) -> Vec<Point> {
    let cfg = SimConfig::default();
    engine.par_map(thresholds, |&t| {
        let wt = with_threshold(w, t);
        let c = engine
            .compare_with(&wt, &CompileOptions::speculative(), &cfg)
            .unwrap_or_else(|e| panic!("{} at threshold {t} failed: {e}", w.name));
        Point {
            app: w.name.to_string(),
            threshold: t,
            simt_eff: c.speculative.simt_eff,
            speedup: c.speedup(),
        }
    })
}

/// The paper's qualitative Figure-9 claim: PathTracer is best at the full
/// barrier; XSBench peaks strictly below it.
pub fn sanity(points: &[Point]) -> Result<(), String> {
    let best = |app: &str| -> Result<(u32, f64), String> {
        points
            .iter()
            .filter(|p| p.app == app)
            .map(|p| (p.threshold, p.speedup))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .ok_or_else(|| format!("no points for {app}"))
    };
    let at = |app: &str, t: u32| -> Result<f64, String> {
        points
            .iter()
            .find(|p| p.app == app && p.threshold == t)
            .map(|p| p.speedup)
            .ok_or_else(|| format!("no point for {app} at {t}"))
    };

    let (pt_best, _) = best("pathtracer")?;
    if pt_best != 32 {
        return Err(format!("pathtracer should peak at the full barrier, peaked at {pt_best}"));
    }
    let (xs_best, xs_speedup) = best("xsbench")?;
    if xs_best == 32 {
        return Err("xsbench should peak below the full barrier".to_string());
    }
    let xs_full = at("xsbench", 32)?;
    if xs_speedup <= xs_full {
        return Err(format!(
            "xsbench partial-threshold peak ({xs_speedup:.3}) should beat the full barrier ({xs_full:.3})"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_reproduces_figure_9_crossover() {
        // A coarser grid keeps the test fast while still showing the
        // crossover.
        let mut points = Vec::new();
        for w in [
            pathtracer::build(&pathtracer::Params {
                num_samples: 192,
                num_warps: 1,
                ..pathtracer::Params::default()
            }),
            xsbench::build(&xsbench::Params {
                num_tasks: 192,
                num_warps: 1,
                ..xsbench::Params::default()
            }),
        ] {
            points.extend(sweep(&w, &[4, 8, 16, 24, 32]));
        }
        sanity(&points).unwrap();
    }
}
