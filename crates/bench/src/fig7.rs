//! Figure 7 (SIMT efficiency before/after) and Figure 8 (relative
//! efficiency improvement vs speedup), over the nine Table-2 workloads.

use crate::Scale;
use simt_sim::SimConfig;
use workloads::eval::{self, Comparison, Engine};
use workloads::{registry, Workload};

/// One bar pair of Figure 7 / one point of Figure 8.
#[derive(Clone, Debug)]
pub struct Row {
    /// Workload name.
    pub name: String,
    /// Baseline (PDOM) SIMT efficiency.
    pub base_eff: f64,
    /// Speculative-Reconvergence SIMT efficiency.
    pub spec_eff: f64,
    /// Baseline SIMT efficiency inside the expensive region.
    pub base_roi_eff: f64,
    /// SR SIMT efficiency inside the expensive region.
    pub spec_roi_eff: f64,
    /// Relative SIMT-efficiency improvement (Figure 8, left series).
    pub eff_gain: f64,
    /// Application speedup (Figure 8, right series).
    pub speedup: f64,
}

impl From<Comparison> for Row {
    fn from(c: Comparison) -> Self {
        Row {
            eff_gain: c.efficiency_gain(),
            speedup: c.speedup(),
            name: c.name,
            base_eff: c.baseline.simt_eff,
            spec_eff: c.speculative.simt_eff,
            base_roi_eff: c.baseline.roi_eff,
            spec_roi_eff: c.speculative.roi_eff,
        }
    }
}

/// Computes the Figure 7/8 data for every Table-2 workload, sequentially
/// on the shared engine. See [`collect_with`] for parallel batches.
///
/// # Panics
///
/// Panics if any workload fails to compile, run, or preserve results —
/// all of which the test suite guards.
pub fn collect(scale: Scale) -> Vec<Row> {
    collect_with(eval::shared(), scale)
}

/// [`collect`] on a caller-provided [`Engine`]: the nine workloads are
/// independent jobs, so they run on the engine's worker pool. Row order
/// (and every value) is identical regardless of worker count.
pub fn collect_with(engine: &Engine, scale: Scale) -> Vec<Row> {
    let cfg = SimConfig::default();
    let ws: Vec<Workload> = registry().iter().map(|w| scale.apply(w)).collect();
    engine.par_map(&ws, |w| {
        let c =
            engine.compare(w, &cfg).unwrap_or_else(|e| panic!("workload {} failed: {e}", w.name));
        Row::from(c)
    })
}

/// The paper's headline check: every workload improves, the best by
/// roughly 3x, and speedup is (approximately) bounded by the efficiency
/// gain.
pub fn sanity(rows: &[Row]) -> Result<(), String> {
    if rows.len() != 9 {
        return Err(format!("expected 9 workloads, got {}", rows.len()));
    }
    for r in rows {
        if r.eff_gain < 1.05 {
            return Err(format!("{}: SIMT efficiency gain collapsed ({:.2}x)", r.name, r.eff_gain));
        }
        if r.speedup < 0.95 {
            return Err(format!(
                "{}: speculative reconvergence slowed it down ({:.2}x)",
                r.name, r.speedup
            ));
        }
        // "SIMT efficiency improvement serves roughly as an upper bound on
        // speedup" (§5.2) — allow slack for second-order effects.
        if r.speedup > r.eff_gain * 1.35 {
            return Err(format!(
                "{}: speedup {:.2}x implausibly exceeds efficiency gain {:.2}x",
                r.name, r.speedup, r.eff_gain
            ));
        }
    }
    let best = rows.iter().map(|r| r.eff_gain).fold(0.0, f64::max);
    if best < 2.0 {
        return Err(format!("best efficiency gain {best:.2}x; the paper reports up to ~3x"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_reproduces_figure_7_and_8_shapes() {
        let rows = collect(Scale::Quick);
        sanity(&rows).unwrap();
    }
}
