//! Small rendering helpers: markdown tables and CSV emission (hand-rolled
//! to keep the dependency set to the approved list).

use std::fmt::Write as _;

/// Renders a markdown table.
///
/// # Panics
///
/// Panics if a row's width differs from the header's.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = write!(out, "|");
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, " {h:<w$} |");
    }
    let _ = writeln!(out);
    let _ = write!(out, "|");
    for w in &widths {
        let _ = write!(out, "{:-<1$}|", "", w + 2);
    }
    let _ = writeln!(out);
    for row in rows {
        let _ = write!(out, "|");
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, " {cell:<w$} |");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders rows as CSV with a header line. Cells containing commas or
/// quotes are quoted.
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    fn escape(cell: &str) -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{}", headers.join(","));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| escape(c)).collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

/// Formats a ratio like `1.87x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction like `48.0%`.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_is_aligned() {
        let t = markdown_table(
            &["name", "x"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "2".into()]],
        );
        assert!(t.contains("| name      | x |"));
        assert!(t.contains("| long-name | 2 |"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn csv_escapes_commas() {
        let t = csv(&["a", "b"], &[vec!["x,y".into(), "z".into()]]);
        assert!(t.contains("\"x,y\",z"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        markdown_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(1.8712), "1.87x");
        assert_eq!(pct(0.4801), "48.0%");
    }
}
