//! Perf-regression snapshots: the `BENCH_<n>.json` format and the gate.
//!
//! The `perfbench` binary times the simulator hot loop on the workload
//! registry and writes a [`Snapshot`]; the `perfgate` binary compares the
//! two most recent snapshots and fails when throughput regresses beyond a
//! threshold. Both live here so the format and the comparison rule are
//! unit-tested, and so the vendored-workspace constraint (no serde) is
//! confined to one small hand-rolled JSON layer.
//!
//! Throughput is reported in *simulated cycles per wall-clock second* —
//! the figure sweeps are bounded by how fast the machine burns simulated
//! cycles, so that is the number the gate protects.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use simt_sim::{run_image, run_sweep_image, SimConfig, SweepLaunch, DEFAULT_SEED};
use workloads::eval::{with_warps, Engine};
use workloads::registry;

/// Schema tag written into every snapshot (bump on breaking changes).
pub const SCHEMA: &str = "specrecon-perf-v1";

/// Default regression threshold: fail when a workload loses more than
/// this fraction of its throughput.
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// Hot-loop throughput of one workload.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadPerf {
    /// Workload name (registry name).
    pub name: String,
    /// Simulated cycles one run of the workload takes.
    pub cycles_per_run: u64,
    /// Timed runs behind the measurement.
    pub runs: u64,
    /// Total wall-clock time of the timed runs, in nanoseconds.
    pub elapsed_ns: u64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
}

/// One `BENCH_<n>.json` perf snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Free-form label (e.g. "seed" or a change description).
    pub label: String,
    /// Warps per workload launch the measurement used.
    pub warps: usize,
    /// Per-workload results, in registry order.
    pub results: Vec<WorkloadPerf>,
}

impl Snapshot {
    /// Geometric-mean throughput across all workloads (0.0 when empty).
    pub fn geomean_cycles_per_sec(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        let log_sum: f64 = self.results.iter().map(|r| r.cycles_per_sec.max(1.0).ln()).sum();
        (log_sum / self.results.len() as f64).exp()
    }

    /// Serializes to the `BENCH_<n>.json` format.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json_str(SCHEMA));
        let _ = writeln!(s, "  \"label\": {},", json_str(&self.label));
        let _ = writeln!(s, "  \"warps\": {},", self.warps);
        let _ = writeln!(s, "  \"geomean_cycles_per_sec\": {:?},", self.geomean_cycles_per_sec());
        s.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": {}, \"cycles_per_run\": {}, \"runs\": {}, \
                 \"elapsed_ns\": {}, \"cycles_per_sec\": {:?}}}",
                json_str(&r.name),
                r.cycles_per_run,
                r.runs,
                r.elapsed_ns,
                r.cycles_per_sec
            );
            s.push_str(if i + 1 < self.results.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a snapshot, validating the schema tag and required fields.
    ///
    /// # Errors
    ///
    /// Malformed JSON, a wrong/missing schema tag, or missing fields.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let v = Json::parse(text)?;
        let obj = v.as_obj().ok_or("top level must be an object")?;
        let schema = get(obj, "schema")?.as_str().ok_or("schema must be a string")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (expected {SCHEMA:?})"));
        }
        let label = get(obj, "label")?.as_str().ok_or("label must be a string")?.to_string();
        let warps = get(obj, "warps")?.as_u64().ok_or("warps must be a non-negative integer")?;
        let results = get(obj, "results")?
            .as_arr()
            .ok_or("results must be an array")?
            .iter()
            .map(|r| {
                let o = r.as_obj().ok_or("each result must be an object")?;
                Ok(WorkloadPerf {
                    name: get(o, "name")?.as_str().ok_or("name must be a string")?.to_string(),
                    cycles_per_run: get(o, "cycles_per_run")?
                        .as_u64()
                        .ok_or("cycles_per_run must be an integer")?,
                    runs: get(o, "runs")?.as_u64().ok_or("runs must be an integer")?,
                    elapsed_ns: get(o, "elapsed_ns")?
                        .as_u64()
                        .ok_or("elapsed_ns must be an integer")?,
                    cycles_per_sec: get(o, "cycles_per_sec")?
                        .as_f64()
                        .ok_or("cycles_per_sec must be a number")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Snapshot { label, warps: warps as usize, results })
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v).ok_or_else(|| format!("missing key {key:?}"))
}

/// Times the simulator hot loop on every registry workload and returns a
/// snapshot.
///
/// Each workload's module is decoded once (run as-is, no pass pipeline —
/// the measurement isolates the simulator) and then launched repeatedly
/// with `warps` warps until `min_time` of wall clock accumulates, with at
/// least three timed runs. Throughput is `simulated cycles / wall time`.
///
/// # Panics
///
/// Panics if a registry workload fails to decode or run — they are all
/// known-good programs, so a failure is a harness bug.
pub fn measure_hot_loop(label: &str, warps: usize, min_time: Duration) -> Snapshot {
    let engine = Engine::new(1);
    let cfg = SimConfig::default();
    let mut results = Vec::new();
    for w in registry() {
        let w = with_warps(&w, warps);
        let image = engine.decoded(&w.module, None).expect("registry workload decodes");
        // Warm-up run: fills caches/pools and yields the per-run cycle
        // count (deterministic for a fixed launch).
        let out = run_image(&image, &cfg, &w.launch).expect("registry workload runs");
        let cycles_per_run = out.metrics.cycles;
        let mut runs = 0u64;
        let start = Instant::now();
        let mut elapsed;
        loop {
            std::hint::black_box(run_image(&image, &cfg, &w.launch).expect("workload runs"));
            runs += 1;
            elapsed = start.elapsed();
            if runs >= 3 && elapsed >= min_time {
                break;
            }
        }
        let elapsed_ns = elapsed.as_nanos() as u64;
        let cycles_per_sec = (cycles_per_run * runs) as f64 * 1e9 / elapsed_ns.max(1) as f64;
        results.push(WorkloadPerf {
            name: w.name.to_string(),
            cycles_per_run,
            runs,
            elapsed_ns,
            cycles_per_sec,
        });
    }
    Snapshot { label: label.to_string(), warps, results }
}

/// The Monte Carlo registry workloads — the programs where a seed sweep
/// is the natural experiment (every run draws from the RNG), and the set
/// the `seed_sweep` measurement covers.
pub const MONTE_CARLO: &[&str] = &["rsbench", "xsbench", "mcb", "mc-gpu", "gpu-mcml"];

/// Named workloads outside the Table-2 registry that the seed-sweep
/// measurement also covers: seed-divergent stressors where the sweep
/// engine's fork/merge path (not the lockstep fast path) is the thing
/// under test.
pub const SEED_DIVERGENT: &[&str] = &["seed-storm"];

/// Times the lockstep seed-sweep engine against a scalar per-seed
/// baseline on the Monte Carlo workloads plus the seed-divergent
/// stressors.
///
/// For each workload in [`MONTE_CARLO`] and [`SEED_DIVERGENT`] this
/// produces two entries: `sweep/<name>` runs one [`run_sweep_image`]
/// cohort over `[DEFAULT_SEED, DEFAULT_SEED + seeds)`, and
/// `sweep_scalar/<name>` runs the same seeds as independent
/// [`run_image`] launches. Both report the same `cycles_per_run` (total
/// simulated cycles across the whole seed batch — the sweep is
/// bit-identical to the scalar runs, so the cycle sums agree by
/// construction), which makes their `cycles_per_sec` ratio the sweep
/// speedup. Pair them back up with [`sweep_speedups`].
///
/// # Panics
///
/// Panics when `seeds` is 0 or exceeds the cohort width, or if a
/// registry workload fails to decode or run (harness bug).
pub fn measure_seed_sweep(warps: usize, seeds: u64, min_time: Duration) -> Vec<WorkloadPerf> {
    assert!(
        seeds >= 1 && seeds <= simt_sim::sweep::COHORT_SLOTS as u64,
        "seed batch must fit one cohort (1..={})",
        simt_sim::sweep::COHORT_SLOTS
    );
    let engine = Engine::new(1);
    let cfg = SimConfig::default();
    let mut results = Vec::new();
    let mut pool: Vec<workloads::Workload> =
        registry().into_iter().filter(|w| MONTE_CARLO.contains(&w.name)).collect();
    pool.push(workloads::seedstorm::build(&workloads::seedstorm::Params::default()));
    for w in pool {
        let w = with_warps(&w, warps);
        let image = engine.decoded(&w.module, None).expect("registry workload decodes");
        let sweep = SweepLaunch::new(w.launch.clone(), DEFAULT_SEED, DEFAULT_SEED + seeds);
        // Warm-up sweep: fills pools and yields the batch cycle count.
        let out = run_sweep_image(&image, &cfg, &sweep, None).expect("sweep runs");
        let cycles_per_run: u64 = out
            .runs
            .iter()
            .map(|r| r.result.as_ref().expect("sweep instance runs").metrics.cycles)
            .sum();
        let (runs, elapsed_ns) = timed_loop(min_time, || {
            std::hint::black_box(run_sweep_image(&image, &cfg, &sweep, None).expect("sweep runs"));
        });
        results.push(perf_entry(format!("sweep/{}", w.name), cycles_per_run, runs, elapsed_ns));
        let (runs, elapsed_ns) = timed_loop(min_time, || {
            for seed in sweep.seed_lo..sweep.seed_hi {
                let mut launch = w.launch.clone();
                launch.seed = seed;
                std::hint::black_box(run_image(&image, &cfg, &launch).expect("workload runs"));
            }
        });
        results.push(perf_entry(
            format!("sweep_scalar/{}", w.name),
            cycles_per_run,
            runs,
            elapsed_ns,
        ));
    }
    results
}

/// Runs `body` until `min_time` of wall clock accumulates (at least three
/// times) and returns `(runs, elapsed_ns)`.
fn timed_loop(min_time: Duration, mut body: impl FnMut()) -> (u64, u64) {
    let mut runs = 0u64;
    let start = Instant::now();
    let mut elapsed;
    loop {
        body();
        runs += 1;
        elapsed = start.elapsed();
        if runs >= 3 && elapsed >= min_time {
            break;
        }
    }
    (runs, elapsed.as_nanos() as u64)
}

fn perf_entry(name: String, cycles_per_run: u64, runs: u64, elapsed_ns: u64) -> WorkloadPerf {
    let cycles_per_sec = (cycles_per_run * runs) as f64 * 1e9 / elapsed_ns.max(1) as f64;
    WorkloadPerf { name, cycles_per_run, runs, elapsed_ns, cycles_per_sec }
}

/// Pairs every `sweep/<name>` entry in a snapshot with its
/// `sweep_scalar/<name>` baseline and returns `(name, speedup)` where
/// speedup is `sweep cycles/sec ÷ scalar cycles/sec`. Entries without a
/// matching baseline are skipped.
pub fn sweep_speedups(snapshot: &Snapshot) -> Vec<(String, f64)> {
    snapshot
        .results
        .iter()
        .filter_map(|r| {
            let name = r.name.strip_prefix("sweep/")?;
            let baseline = format!("sweep_scalar/{name}");
            let scalar = snapshot.results.iter().find(|s| s.name == baseline)?;
            let speedup = if scalar.cycles_per_sec > 0.0 {
                r.cycles_per_sec / scalar.cycles_per_sec
            } else {
                f64::INFINITY
            };
            Some((name.to_string(), speedup))
        })
        .collect()
}

/// Outcome of gating one workload of the new snapshot against the old.
#[derive(Clone, Debug, PartialEq)]
pub struct GateLine {
    /// Workload name.
    pub name: String,
    /// Old throughput (cycles/sec).
    pub old: f64,
    /// New throughput (cycles/sec).
    pub new: f64,
    /// `new / old` (above 1.0 = faster).
    pub ratio: f64,
    /// Whether this line violates the threshold.
    pub regressed: bool,
}

/// Result of comparing two snapshots.
#[derive(Clone, Debug)]
pub struct GateReport {
    /// Per-workload comparisons (workloads present in both snapshots).
    pub lines: Vec<GateLine>,
    /// Workloads only in one of the snapshots (reported, never fatal).
    pub unmatched: Vec<String>,
    /// Geomean ratio `new / old` over the matched workloads.
    pub geomean_ratio: f64,
    /// The threshold the comparison used.
    pub threshold: f64,
}

impl GateReport {
    /// Whether the gate passes (no workload regressed beyond threshold).
    pub fn passed(&self) -> bool {
        self.lines.iter().all(|l| !l.regressed)
    }
}

/// Compares `new` against `old`: a workload regresses when its throughput
/// ratio drops below `1 - threshold`.
pub fn gate(old: &Snapshot, new: &Snapshot, threshold: f64) -> GateReport {
    let mut lines = Vec::new();
    let mut unmatched = Vec::new();
    for o in &old.results {
        match new.results.iter().find(|n| n.name == o.name) {
            Some(n) => {
                let ratio =
                    if o.cycles_per_sec > 0.0 { n.cycles_per_sec / o.cycles_per_sec } else { 1.0 };
                lines.push(GateLine {
                    name: o.name.clone(),
                    old: o.cycles_per_sec,
                    new: n.cycles_per_sec,
                    ratio,
                    regressed: ratio < 1.0 - threshold,
                });
            }
            None => unmatched.push(o.name.clone()),
        }
    }
    for n in &new.results {
        if old.results.iter().all(|o| o.name != n.name) {
            unmatched.push(n.name.clone());
        }
    }
    let geomean_ratio = if lines.is_empty() {
        1.0
    } else {
        (lines.iter().map(|l| l.ratio.max(1e-12).ln()).sum::<f64>() / lines.len() as f64).exp()
    };
    GateReport { lines, unmatched, geomean_ratio, threshold }
}

/// Finds every `BENCH_<n>.json` in `dir`, sorted by `n`.
pub fn snapshot_files(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return found };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|num| num.parse::<u64>().ok())
        {
            found.push((n, entry.path()));
        }
    }
    found.sort_by_key(|(n, _)| *n);
    found
}

/// The path the next snapshot should be written to: `BENCH_<n+1>.json`
/// after the highest existing `n` (or `BENCH_0.json` on a fresh tree).
pub fn next_snapshot_path(dir: &Path) -> PathBuf {
    let next = snapshot_files(dir).last().map_or(0, |(n, _)| n + 1);
    dir.join(format!("BENCH_{next}.json"))
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value for the snapshot format (the workspace has no
/// crates.io access, hence no serde).
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            out.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or("unexpected end of string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?} at {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            label: "seed \"quoted\"".into(),
            warps: 2,
            results: vec![
                WorkloadPerf {
                    name: "rsbench".into(),
                    cycles_per_run: 120_000,
                    runs: 40,
                    elapsed_ns: 1_000_000,
                    cycles_per_sec: 4.8e9,
                },
                WorkloadPerf {
                    name: "mummer".into(),
                    cycles_per_run: 7,
                    runs: 3,
                    elapsed_ns: 21,
                    cycles_per_sec: 1e9,
                },
            ],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let s = sample();
        let parsed = Snapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = sample().to_json().replace(SCHEMA, "other-v0");
        let err = Snapshot::from_json(&text).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Snapshot::from_json("{\"schema\":").is_err());
        assert!(Snapshot::from_json("[]").is_err());
        assert!(Snapshot::from_json("{}").is_err());
    }

    #[test]
    fn gate_flags_regressions_beyond_threshold() {
        let old = sample();
        let mut new = sample();
        new.results[0].cycles_per_sec = old.results[0].cycles_per_sec * 0.85; // -15%
        new.results[1].cycles_per_sec = old.results[1].cycles_per_sec * 0.95; // -5%
        let report = gate(&old, &new, DEFAULT_THRESHOLD);
        assert!(!report.passed());
        assert!(report.lines[0].regressed);
        assert!(!report.lines[1].regressed);
        // Within threshold everywhere → passes.
        let report = gate(&old, &new, 0.20);
        assert!(report.passed());
    }

    #[test]
    fn gate_reports_unmatched_workloads_without_failing() {
        let old = sample();
        let mut new = sample();
        new.results[1].name = "renamed".into();
        let report = gate(&old, &new, DEFAULT_THRESHOLD);
        assert_eq!(report.lines.len(), 1);
        assert_eq!(report.unmatched, vec!["mummer".to_string(), "renamed".to_string()]);
        assert!(report.passed());
    }

    #[test]
    fn geomean_of_ratios() {
        let old = sample();
        let mut new = sample();
        new.results[0].cycles_per_sec = old.results[0].cycles_per_sec * 2.0;
        new.results[1].cycles_per_sec = old.results[1].cycles_per_sec * 0.5;
        let report = gate(&old, &new, 0.9);
        assert!((report.geomean_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn seed_sweep_measures_every_monte_carlo_workload_in_pairs() {
        let results = measure_seed_sweep(1, 2, Duration::ZERO);
        let covered: Vec<&&str> = MONTE_CARLO.iter().chain(SEED_DIVERGENT).collect();
        assert_eq!(results.len(), 2 * covered.len());
        for (pair, name) in results.chunks(2).zip(&covered) {
            assert_eq!(pair[0].name, format!("sweep/{name}"));
            assert_eq!(pair[1].name, format!("sweep_scalar/{name}"));
            // Bit-identity means both sides burn the same simulated
            // cycles per seed batch.
            assert_eq!(pair[0].cycles_per_run, pair[1].cycles_per_run);
            assert!(pair[0].cycles_per_run > 0);
            assert!(pair[0].cycles_per_sec > 0.0 && pair[1].cycles_per_sec > 0.0);
        }
        let snapshot = Snapshot { label: "t".into(), warps: 1, results };
        let speedups = sweep_speedups(&snapshot);
        assert_eq!(speedups.len(), covered.len());
        assert!(speedups.iter().all(|(_, s)| s.is_finite() && *s > 0.0));
    }

    #[test]
    fn monte_carlo_sweeps_never_take_the_scalar_escape_hatch() {
        // The Monte Carlo registry sweeps are the benches the perfgate
        // protects: under the Volta barrier-file reconvergence model the
        // fork/merge engine must keep them fully masked
        // (scalar_steps == 0), or the measurement is back to timing the
        // scalar fallback. (Hardware models take the per-seed scalar
        // path by design — only the default model is gated.)
        let engine = Engine::new(1);
        let cfg =
            SimConfig { recon: simt_sim::ReconvergenceModel::BarrierFile, ..SimConfig::default() };
        for w in registry() {
            if !MONTE_CARLO.contains(&w.name) {
                continue;
            }
            let image = engine.decoded(&w.module, None).unwrap();
            let sweep = SweepLaunch::new(w.launch.clone(), DEFAULT_SEED, DEFAULT_SEED + 32);
            let out = run_sweep_image(&image, &cfg, &sweep, None).unwrap();
            println!("{:12} {:?} occ={:.2}", w.name, out.stats, out.stats.mean_occupancy());
            assert_eq!(out.stats.scalar_steps, 0, "{}: {:?}", w.name, out.stats);
            assert_eq!(out.stats.detaches, 0, "{}: {:?}", w.name, out.stats);
        }
    }

    #[test]
    #[should_panic(expected = "seed batch must fit one cohort")]
    fn seed_sweep_rejects_batches_wider_than_the_cohort() {
        measure_seed_sweep(1, simt_sim::sweep::COHORT_SLOTS as u64 + 1, Duration::ZERO);
    }

    #[test]
    fn sweep_speedups_skips_unpaired_entries() {
        let entry = |name: &str, cps: f64| WorkloadPerf {
            name: name.into(),
            cycles_per_run: 100,
            runs: 3,
            elapsed_ns: 1_000,
            cycles_per_sec: cps,
        };
        let snapshot = Snapshot {
            label: "t".into(),
            warps: 2,
            results: vec![
                entry("sweep/mcb", 4.0e9),
                entry("sweep_scalar/mcb", 1.0e9),
                entry("sweep/orphan", 2.0e9),
                entry("rsbench", 3.0e9),
            ],
        };
        let speedups = sweep_speedups(&snapshot);
        assert_eq!(speedups, vec![("mcb".to_string(), 4.0)]);
    }

    #[test]
    fn snapshot_numbering() {
        let dir = std::env::temp_dir().join(format!("specrecon-perf-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_snapshot_path(&dir), dir.join("BENCH_0.json"));
        std::fs::write(dir.join("BENCH_0.json"), "x").unwrap();
        std::fs::write(dir.join("BENCH_3.json"), "x").unwrap();
        assert_eq!(snapshot_files(&dir).len(), 2);
        assert_eq!(next_snapshot_path(&dir), dir.join("BENCH_4.json"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
