//! Ablations: design choices DESIGN.md calls out.
//!
//! - §4.3 static vs dynamic deconfliction (the paper implemented both and
//!   evaluated dynamic);
//! - §6 partial unrolling of the inner loop under Loop Merge
//!   (reconvergence once per N iterations);
//! - scheduler-policy sensitivity of the headline result (a robustness
//!   check of the simulator substrate, not a paper experiment).

use crate::Scale;
use simt_ir::BlockId;
use simt_sim::{CacheConfig, MemHierarchy, ReconvergenceModel, SchedulerPolicy, SimConfig};
use specrecon_core::{unroll_self_loop, CompileOptions, DeconflictMode, RepairStrategy};
use workloads::eval::{self, Engine};
use workloads::{mummer, registry, rsbench, srad, xsbench, Workload};

/// One row of the deconfliction ablation.
#[derive(Clone, Debug)]
pub struct DeconflictRow {
    /// Workload name.
    pub name: String,
    /// Speedup with dynamic deconfliction (the paper's configuration).
    pub dynamic_speedup: f64,
    /// Speedup with static deconfliction.
    pub static_speedup: f64,
}

/// Runs every Table-2 workload under both deconfliction modes.
pub fn deconflict(scale: Scale) -> Vec<DeconflictRow> {
    deconflict_with(eval::shared(), scale)
}

/// [`deconflict`] on a caller-provided [`Engine`], one job per workload.
pub fn deconflict_with(engine: &Engine, scale: Scale) -> Vec<DeconflictRow> {
    let cfg = SimConfig::default();
    let ws: Vec<Workload> = registry().iter().map(|w| scale.apply(w)).collect();
    engine.par_map(&ws, |w| {
        let dynamic = engine
            .compare_with(w, &CompileOptions::speculative(), &cfg)
            .unwrap_or_else(|e| panic!("{} dynamic failed: {e}", w.name));
        let opts =
            CompileOptions { deconflict: DeconflictMode::Static, ..CompileOptions::speculative() };
        let stat = engine
            .compare_with(w, &opts, &cfg)
            .unwrap_or_else(|e| panic!("{} static failed: {e}", w.name));
        DeconflictRow {
            name: w.name.to_string(),
            dynamic_speedup: dynamic.speedup(),
            static_speedup: stat.speedup(),
        }
    })
}

/// One row of the unrolling ablation.
#[derive(Clone, Debug)]
pub struct UnrollRow {
    /// Unroll factor (1 = no unrolling).
    pub factor: usize,
    /// Cycles under Loop Merge at this factor.
    pub cycles: u64,
    /// Dynamic barrier operations (synchronization overhead indicator).
    pub barrier_ops: u64,
    /// SIMT efficiency.
    pub simt_eff: f64,
}

/// Partially unrolls RSBench's inner loop by each factor and re-applies
/// Loop Merge: reconvergence happens once per `factor` iterations, so
/// barrier overhead drops (§6).
pub fn unroll(scale: Scale) -> Vec<UnrollRow> {
    unroll_with(eval::shared(), scale)
}

/// [`unroll`] on a caller-provided [`Engine`], one job per unroll factor.
pub fn unroll_with(engine: &Engine, scale: Scale) -> Vec<UnrollRow> {
    let cfg = SimConfig::default();
    let base = rsbench::build(&rsbench::Params::default());
    let base = scale.apply(&base);
    let kernel = base.module.function_by_name("rsbench").expect("kernel");
    let inner: BlockId = base.module.functions[kernel]
        .block_by_label("L1")
        .expect("rsbench inner loop is labelled L1");

    engine.par_map(&[1usize, 2, 4, 8], |&factor| {
        let mut w = base.clone();
        if factor > 1 {
            let f = &mut w.module.functions[kernel];
            unroll_self_loop(f, inner, factor).expect("rsbench inner loop unrolls");
        }
        let (summary, _) = engine
            .run_config(&w, &CompileOptions::speculative(), &cfg)
            .unwrap_or_else(|e| panic!("unroll x{factor} failed: {e}"));
        UnrollRow {
            factor,
            cycles: summary.cycles,
            barrier_ops: summary.barrier_ops,
            simt_eff: summary.simt_eff,
        }
    })
}

/// One row of the synchronization-variant ablation.
#[derive(Clone, Debug)]
pub struct SyncVariantRow {
    /// Workload name.
    pub name: String,
    /// SIMT efficiency with no reconvergence sync at all (free-running
    /// independent threads).
    pub none_eff: f64,
    /// SIMT efficiency under PDOM (the production-compiler baseline).
    pub pdom_eff: f64,
    /// SIMT efficiency under Speculative Reconvergence.
    pub sr_eff: f64,
    /// Cycles for each variant, in the same order.
    pub cycles: [u64; 3],
}

/// Compares *no* reconvergence synchronization, PDOM, and SR on every
/// workload — showing that PDOM itself earns its keep (free-running
/// threads under a greedy scheduler serialize badly) and where SR goes
/// beyond it.
pub fn sync_variants(scale: Scale) -> Vec<SyncVariantRow> {
    sync_variants_with(eval::shared(), scale)
}

/// [`sync_variants`] on a caller-provided [`Engine`], one job per
/// workload.
pub fn sync_variants_with(engine: &Engine, scale: Scale) -> Vec<SyncVariantRow> {
    let cfg = SimConfig::default();
    let ws: Vec<Workload> = registry().iter().map(|w| scale.apply(w)).collect();
    engine.par_map(&ws, |w| {
        let none_opts =
            CompileOptions { pdom: false, speculative: false, ..CompileOptions::default() };
        let (none, _) = engine
            .run_config(w, &none_opts, &cfg)
            .unwrap_or_else(|e| panic!("{} none failed: {e}", w.name));
        let (pdom, _) = engine
            .run_config(w, &CompileOptions::baseline(), &cfg)
            .unwrap_or_else(|e| panic!("{} pdom failed: {e}", w.name));
        let (sr, _) = engine
            .run_config(w, &CompileOptions::speculative(), &cfg)
            .unwrap_or_else(|e| panic!("{} sr failed: {e}", w.name));
        SyncVariantRow {
            name: w.name.to_string(),
            none_eff: none.simt_eff,
            pdom_eff: pdom.simt_eff,
            sr_eff: sr.simt_eff,
            cycles: [none.cycles, pdom.cycles, sr.cycles],
        }
    })
}

/// One row of the scheduler ablation.
#[derive(Clone, Debug)]
pub struct SchedRow {
    /// Scheduler policy.
    pub policy: SchedulerPolicy,
    /// Baseline cycles.
    pub base_cycles: u64,
    /// SR cycles.
    pub spec_cycles: u64,
    /// SR speedup under this policy.
    pub speedup: f64,
}

/// Runs RSBench under every scheduler policy: the SR win must not be an
/// artifact of one policy.
pub fn scheduler(scale: Scale) -> Vec<SchedRow> {
    scheduler_with(eval::shared(), scale)
}

/// [`scheduler`] on a caller-provided [`Engine`], one job per policy.
/// All five policies share one cached kernel image.
pub fn scheduler_with(engine: &Engine, scale: Scale) -> Vec<SchedRow> {
    let base = rsbench::build(&rsbench::Params::default());
    let w = scale.apply(&base);
    let policies = [
        SchedulerPolicy::Greedy,
        SchedulerPolicy::MinPc,
        SchedulerPolicy::MaxPc,
        SchedulerPolicy::MostThreads,
        SchedulerPolicy::RoundRobin,
    ];
    engine.par_map(&policies, |&policy| {
        let cfg = SimConfig { scheduler: policy, ..SimConfig::default() };
        let c = engine
            .compare_with(&w, &CompileOptions::speculative(), &cfg)
            .unwrap_or_else(|e| panic!("policy {policy:?} failed: {e}"));
        SchedRow {
            policy,
            base_cycles: c.baseline.cycles,
            spec_cycles: c.speculative.cycles,
            speedup: c.speedup(),
        }
    })
}

/// One row of the warp-width ablation.
#[derive(Clone, Debug)]
pub struct WidthRow {
    /// Lanes per warp.
    pub width: usize,
    /// Baseline SIMT efficiency at this width.
    pub base_eff: f64,
    /// SR speedup at this width.
    pub speedup: f64,
}

/// Runs RSBench at warp widths 8/16/32/64. Wider warps diverge more
/// (the max of more trip-count draws grows), so baseline efficiency falls
/// with width; the *speedup*, interestingly, is largest for narrow warps
/// in this simulator — collecting a full warp at the reconvergence point
/// costs more as the warp widens (longer tails per round), partially
/// offsetting the larger headroom.
pub fn warp_width(scale: Scale) -> Vec<WidthRow> {
    warp_width_with(eval::shared(), scale)
}

/// [`warp_width`] on a caller-provided [`Engine`], one job per width.
pub fn warp_width_with(engine: &Engine, scale: Scale) -> Vec<WidthRow> {
    let base = rsbench::build(&rsbench::Params::default());
    let w = scale.apply(&base);
    engine.par_map(&[8usize, 16, 32, 64], |&width| {
        let cfg = SimConfig { warp_width: width, ..SimConfig::default() };
        let opts = CompileOptions { warp_width: width as u32, ..CompileOptions::speculative() };
        let c = engine
            .compare_with(&w, &opts, &cfg)
            .unwrap_or_else(|e| panic!("width {width} failed: {e}"));
        WidthRow { width, base_eff: c.baseline.simt_eff, speedup: c.speedup() }
    })
}

/// One row of the suite-wide threshold ablation.
#[derive(Clone, Debug)]
pub struct ThresholdRow {
    /// Workload name.
    pub name: String,
    /// Best soft-barrier threshold (32 = full/hard barrier).
    pub best_threshold: u32,
    /// Speedup at the best threshold.
    pub best_speedup: f64,
    /// Speedup at the full barrier (threshold 32).
    pub full_speedup: f64,
}

/// Sweeps the soft-barrier threshold for *every* workload — the
/// suite-wide generalization of Figure 9. The paper leaves "automatically
/// discovering the ideal threshold" to future work; this table shows how
/// far from the full barrier each application's optimum sits.
pub fn threshold(scale: Scale) -> Vec<ThresholdRow> {
    threshold_with(eval::shared(), scale)
}

/// [`threshold`] on a caller-provided [`Engine`], one job per workload
/// (each job runs its own 5-point sweep).
pub fn threshold_with(engine: &Engine, scale: Scale) -> Vec<ThresholdRow> {
    use workloads::eval::with_threshold;
    let cfg = SimConfig::default();
    let grid = [4u32, 8, 16, 24, 32];
    let ws: Vec<Workload> = registry().iter().map(|w| scale.apply(w)).collect();
    engine.par_map(&ws, |w| {
        let mut best = (32u32, 0.0f64);
        let mut full = 0.0f64;
        for &t in &grid {
            let c = engine
                .compare_with(&with_threshold(w, t), &CompileOptions::speculative(), &cfg)
                .unwrap_or_else(|e| panic!("{} T={t} failed: {e}", w.name));
            let s = c.speedup();
            if s > best.1 {
                best = (t, s);
            }
            if t == 32 {
                full = s;
            }
        }
        ThresholdRow {
            name: w.name.to_string(),
            best_threshold: best.0,
            best_speedup: best.1,
            full_speedup: full,
        }
    })
}

/// One row of the cache ablation.
#[derive(Clone, Debug)]
pub struct CacheRow {
    /// Workload name.
    pub name: String,
    /// SR speedup with the raw coalescing-only memory model.
    pub speedup_no_cache: f64,
    /// SR speedup with the L1 cache cost model enabled.
    pub speedup_cache: f64,
    /// Cache hit rate (hits / (hits+misses)) in the SR run.
    pub hit_rate: f64,
}

/// Measures how an L1 cache cost model (§4.5's "caching behavior")
/// changes the SR picture on the two memory-sensitive workloads.
pub fn cache(scale: Scale) -> Vec<CacheRow> {
    cache_with(eval::shared(), scale)
}

/// [`cache`] on a caller-provided [`Engine`], one job per workload.
pub fn cache_with(engine: &Engine, scale: Scale) -> Vec<CacheRow> {
    let workloads =
        [xsbench::build(&xsbench::Params::default()), rsbench::build(&rsbench::Params::default())];
    let ws: Vec<Workload> = workloads.iter().map(|w| scale.apply(w)).collect();
    engine.par_map(&ws, |w| {
        let plain = engine
            .compare_with(w, &CompileOptions::speculative(), &SimConfig::default())
            .unwrap_or_else(|e| panic!("{} plain failed: {e}", w.name));
        let cfg = SimConfig { cache: Some(CacheConfig::default()), ..SimConfig::default() };
        let cached = engine
            .compare_with(w, &CompileOptions::speculative(), &cfg)
            .unwrap_or_else(|e| panic!("{} cached failed: {e}", w.name));
        // Hit rate from a dedicated SR run.
        let out = engine
            .run_full(w, &CompileOptions::speculative(), &cfg)
            .unwrap_or_else(|e| panic!("{} hit-rate run failed: {e}", w.name));
        let (h, m) = (out.metrics.cache_hits, out.metrics.cache_misses);
        CacheRow {
            name: w.name.to_string(),
            speedup_no_cache: plain.speedup(),
            speedup_cache: cached.speedup(),
            hit_rate: h as f64 / (h + m).max(1) as f64,
        }
    })
}

/// One row of the memory-hierarchy L1-capacity sweep.
#[derive(Clone, Debug)]
pub struct MemHierRow {
    /// Workload name.
    pub name: String,
    /// L1 capacity at this point, in 16-cell lines.
    pub l1_lines: usize,
    /// SR speedup under the hierarchy (baseline cycles / SR cycles).
    pub speedup: f64,
    /// L1 hit rate in the SR run.
    pub l1_hit_rate: f64,
    /// MSHR penalty cycles (all levels) in the SR run.
    pub mshr_stall_cycles: u64,
    /// MSHR penalty cycles (all levels) in the baseline run.
    pub baseline_mshr_stall_cycles: u64,
}

/// L1 capacities swept (16-cell lines), smallest first.
pub const MEM_L1_POINTS: [usize; 5] = [2, 4, 8, 16, 64];

/// Sweeps L1 capacity under the full L1/L2/DRAM hierarchy (tight MSHR
/// files) on the memory-sensitive workloads and reports how the
/// SR-vs-baseline verdict moves.
pub fn mem_hier(scale: Scale) -> Vec<MemHierRow> {
    mem_hier_with(eval::shared(), scale)
}

/// [`mem_hier`] on a caller-provided [`Engine`], one job per point.
pub fn mem_hier_with(engine: &Engine, scale: Scale) -> Vec<MemHierRow> {
    let workloads = [
        xsbench::build(&xsbench::Params::default()),
        rsbench::build(&rsbench::Params::default()),
        mummer::build(&mummer::Params::default()),
    ];
    let jobs: Vec<(Workload, usize)> = workloads
        .iter()
        .map(|w| scale.apply(w))
        .flat_map(|w| MEM_L1_POINTS.map(|lines| (w.clone(), lines)))
        .collect();
    engine.par_map(&jobs, |(w, lines)| {
        let lat = SimConfig::default().latency;
        let spec = format!(
            "l1:lines={lines},cells=16,lat=2,mshrs=1;\
             l2:lines=128,cells=16,lat=8,mshrs=2;\
             dram:lat=48,extra=4"
        );
        let hier = MemHierarchy::parse(&spec, &lat).expect("mem-hier ablation spec");
        let cfg = SimConfig { mem: Some(hier), ..SimConfig::default() };
        let cmp = engine
            .compare_with(w, &CompileOptions::speculative(), &cfg)
            .unwrap_or_else(|e| panic!("{} @ L1={lines} failed: {e}", w.name));
        let stalls = |opts: &CompileOptions| {
            let out = engine
                .run_full(w, opts, &cfg)
                .unwrap_or_else(|e| panic!("{} @ L1={lines} counter run failed: {e}", w.name));
            let l1 = out.metrics.mem.levels[0];
            let total: u64 = out.metrics.mem.levels.iter().map(|l| l.mshr_stall_cycles).sum();
            (l1.hits as f64 / (l1.hits + l1.misses).max(1) as f64, total)
        };
        let (l1_hit_rate, mshr_stall_cycles) = stalls(&CompileOptions::speculative());
        let (_, baseline_mshr_stall_cycles) = stalls(&CompileOptions::baseline());
        MemHierRow {
            name: w.name.to_string(),
            l1_lines: *lines,
            speedup: cmp.speedup(),
            l1_hit_rate,
            mshr_stall_cycles,
            baseline_mshr_stall_cycles,
        }
    })
}

/// One row of the hardware-reconvergence ablation: one workload under
/// one reconvergence model, compiled both ways.
#[derive(Clone, Debug)]
pub struct HwReconRow {
    /// Workload name.
    pub name: String,
    /// Reconvergence model spec (`barrier-file`, `ipdom-stack`, ...).
    pub model: String,
    /// PDOM-baseline cycles under this model.
    pub pdom_cycles: u64,
    /// SR cycles under this model.
    pub sr_cycles: u64,
    /// SR speedup under this model (pdom / sr cycles).
    pub speedup: f64,
    /// PDOM whole-kernel SIMT efficiency under this model.
    pub pdom_eff: f64,
    /// SR whole-kernel SIMT efficiency under this model.
    pub sr_eff: f64,
}

/// The reconvergence models the hardware ablation crosses: Volta's
/// barrier file (the default everywhere else), the pre-Volta IPDOM
/// stack, and warp splitting with a re-fusion window plus subwarp
/// compaction.
pub const HW_RECON_MODELS: [ReconvergenceModel; 3] = [
    ReconvergenceModel::BarrierFile,
    ReconvergenceModel::IpdomStack,
    ReconvergenceModel::WarpSplit { window: 4, compact: true },
];

/// Crosses {PDOM, SR} × every reconvergence model over the full
/// workload registry: where does hardware-side divergence repair (warp
/// splitting) close the gap that compiler-side repair (SR) closes, and
/// where does it not?
pub fn hw_recon(scale: Scale) -> Vec<HwReconRow> {
    hw_recon_with(eval::shared(), scale)
}

/// [`hw_recon`] on a caller-provided [`Engine`], one job per
/// (workload, model) pair.
pub fn hw_recon_with(engine: &Engine, scale: Scale) -> Vec<HwReconRow> {
    let jobs: Vec<(Workload, ReconvergenceModel)> = registry()
        .iter()
        .map(|w| scale.apply(w))
        .flat_map(|w| HW_RECON_MODELS.map(|m| (w.clone(), m)))
        .collect();
    engine.par_map(&jobs, |(w, model)| {
        let cfg = SimConfig { recon: *model, ..SimConfig::default() };
        let c = engine
            .compare_with(w, &CompileOptions::speculative(), &cfg)
            .unwrap_or_else(|e| panic!("{} under {} failed: {e}", w.name, model.spec()));
        HwReconRow {
            name: w.name.to_string(),
            model: model.spec(),
            pdom_cycles: c.baseline.cycles,
            sr_cycles: c.speculative.cycles,
            speedup: c.speedup(),
            pdom_eff: c.baseline.simt_eff,
            sr_eff: c.speculative.simt_eff,
        }
    })
}

/// One row of the repair-strategy ablation: one workload under one
/// divergence-repair strategy.
#[derive(Clone, Debug)]
pub struct MeldRow {
    /// Workload name.
    pub name: String,
    /// Repair strategy spec (`pdom`, `sr`, `meld`, `sr+meld`).
    pub repair: String,
    /// Total cycles under this strategy.
    pub cycles: u64,
    /// Whole-kernel SIMT efficiency under this strategy.
    pub simt_eff: f64,
    /// Dynamic barrier operations (overhead indicator).
    pub barrier_ops: u64,
}

/// The repair strategies the melding ablation crosses.
pub const MELD_REPAIRS: [RepairStrategy; 4] =
    [RepairStrategy::Pdom, RepairStrategy::Sr, RepairStrategy::Meld, RepairStrategy::SrMeld];

/// Crosses every repair strategy over the two contrasting shapes:
/// SRAD, whose unbalanced clamp/diffuse arms share an expensive update
/// tail (melding territory — the lanes sit on *different* paths, so no
/// reconvergence schedule de-duplicates the tail), and MUMmer, whose
/// divergence is trip-count imbalance around common code (SR
/// territory — there is nothing isomorphic to meld).
pub fn meld(scale: Scale) -> Vec<MeldRow> {
    meld_with(eval::shared(), scale)
}

/// [`meld`] on a caller-provided [`Engine`], one job per
/// (workload, strategy) pair.
pub fn meld_with(engine: &Engine, scale: Scale) -> Vec<MeldRow> {
    let workloads =
        [srad::build(&srad::Params::default()), mummer::build(&mummer::Params::default())];
    let jobs: Vec<(Workload, RepairStrategy)> = workloads
        .iter()
        .map(|w| scale.apply(w))
        .flat_map(|w| MELD_REPAIRS.map(|r| (w.clone(), r)))
        .collect();
    engine.par_map(&jobs, |(w, repair)| {
        let (summary, _) = engine
            .run_repair(w, *repair, &SimConfig::default())
            .unwrap_or_else(|e| panic!("{} under {repair} failed: {e}", w.name));
        MeldRow {
            name: w.name.to_string(),
            repair: repair.to_string(),
            cycles: summary.cycles,
            simt_eff: summary.simt_eff,
            barrier_ops: summary.barrier_ops,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_hier_sweep_covers_every_point() {
        let rows = mem_hier(Scale::Quick);
        assert_eq!(rows.len(), MEM_L1_POINTS.len() * 3, "one row per workload per L1 point");
        for chunk in rows.chunks(MEM_L1_POINTS.len()) {
            let (first, last) = (&chunk[0], &chunk[chunk.len() - 1]);
            assert_eq!(first.name, last.name);
            assert!(
                last.l1_hit_rate > first.l1_hit_rate,
                "{}: a 32x larger L1 must hit more ({} -> {})",
                first.name,
                first.l1_hit_rate,
                last.l1_hit_rate
            );
            for r in chunk {
                assert!(r.speedup > 0.0, "{} @ L1={}: degenerate speedup", r.name, r.l1_lines);
            }
        }
    }

    #[test]
    fn hw_recon_ablation_covers_the_matrix() {
        let rows = hw_recon(Scale::Quick);
        let workloads = workloads::registry().len();
        assert_eq!(rows.len(), workloads * HW_RECON_MODELS.len(), "one row per (workload, model)");
        for chunk in rows.chunks(HW_RECON_MODELS.len()) {
            for (r, m) in chunk.iter().zip(HW_RECON_MODELS) {
                assert_eq!(r.name, chunk[0].name);
                assert_eq!(r.model, m.spec());
                assert!(r.pdom_cycles > 0 && r.sr_cycles > 0, "{r:?}");
                assert!((0.0..=1.0).contains(&r.pdom_eff), "{r:?}");
            }
        }
    }

    #[test]
    fn meld_ablation_covers_the_matrix_and_wins_on_srad() {
        let rows = meld(Scale::Quick);
        assert_eq!(rows.len(), 2 * MELD_REPAIRS.len(), "one row per (workload, strategy)");
        let eff = |name: &str, repair: &str| {
            rows.iter()
                .find(|r| r.name == name && r.repair == repair)
                .unwrap_or_else(|| panic!("missing row {name}/{repair}: {rows:?}"))
                .simt_eff
        };
        for r in &rows {
            assert!(r.cycles > 0 && (0.0..=1.0).contains(&r.simt_eff), "{r:?}");
        }
        // The headline contrast: melding beats both PDOM and SR on the
        // shared-tail shape, while SR keeps its win on trip-count
        // imbalance where there is nothing to meld.
        assert!(eff("srad", "meld") > eff("srad", "pdom"), "{rows:?}");
        assert!(eff("srad", "meld") > eff("srad", "sr"), "{rows:?}");
        assert!(eff("mummer", "sr") > eff("mummer", "pdom"), "{rows:?}");
    }

    #[test]
    fn both_deconfliction_modes_work_everywhere() {
        for row in deconflict(Scale::Quick) {
            assert!(row.dynamic_speedup > 0.9, "{}: dynamic {}", row.name, row.dynamic_speedup);
            assert!(row.static_speedup > 0.85, "{}: static {}", row.name, row.static_speedup);
        }
    }

    #[test]
    fn unrolling_reduces_barrier_overhead() {
        let rows = unroll(Scale::Quick);
        assert_eq!(rows[0].factor, 1);
        let x1 = &rows[0];
        let x4 = rows.iter().find(|r| r.factor == 4).unwrap();
        assert!(
            x4.barrier_ops < x1.barrier_ops,
            "barrier ops should drop with unrolling: {} -> {}",
            x1.barrier_ops,
            x4.barrier_ops
        );
    }

    #[test]
    fn sync_variants_rank_sensibly() {
        for row in sync_variants(Scale::Quick) {
            assert!(
                row.sr_eff > row.none_eff,
                "{}: SR ({:.2}) must beat free-running ({:.2})",
                row.name,
                row.sr_eff,
                row.none_eff
            );
            assert!(
                row.sr_eff > row.pdom_eff,
                "{}: SR ({:.2}) must beat PDOM ({:.2})",
                row.name,
                row.sr_eff,
                row.pdom_eff
            );
        }
    }

    #[test]
    fn warp_width_trends_hold() {
        let rows = warp_width(Scale::Quick);
        let w8 = rows.iter().find(|r| r.width == 8).unwrap();
        let w64 = rows.iter().find(|r| r.width == 64).unwrap();
        assert!(
            w64.base_eff < w8.base_eff,
            "wider warps diverge more: {} vs {}",
            w8.base_eff,
            w64.base_eff
        );
        for r in &rows {
            assert!(
                r.speedup > 1.3,
                "SR wins at every width; width {} gave {}",
                r.width,
                r.speedup
            );
        }
    }

    #[test]
    fn threshold_sweep_covers_the_suite() {
        let rows = threshold(Scale::Quick);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(r.best_speedup >= r.full_speedup - 1e-9, "{:?}", r);
        }
        // At least one workload prefers a partial threshold (xsbench's
        // Figure-9 behavior).
        assert!(
            rows.iter().any(|r| r.best_threshold != 32),
            "some workload should peak below the full barrier: {rows:?}"
        );
    }

    #[test]
    fn cache_ablation_runs_and_preserves_wins() {
        for row in cache(Scale::Quick) {
            assert!(row.speedup_cache > 0.95, "{}: {}", row.name, row.speedup_cache);
            assert!((0.0..=1.0).contains(&row.hit_rate));
        }
    }

    #[test]
    fn sr_wins_under_every_scheduler_policy() {
        for row in scheduler(Scale::Quick) {
            assert!(
                row.speedup > 1.1,
                "policy {:?}: speedup {:.2} — SR result is policy-sensitive",
                row.policy,
                row.speedup
            );
        }
    }
}
