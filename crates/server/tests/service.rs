//! Socket-level integration tests for the eval service: real TCP
//! connections against a server running in-process, covering the
//! acceptance contract from ISSUE: bounded queue admission, 503
//! backpressure with `Retry-After`, deadline expiry, and graceful
//! drain with no silent drops.

use specrecon_server::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One parsed HTTP response.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// Sends one request on a fresh connection and reads the reply.
fn request(addr: &std::net::SocketAddr, method: &str, path: &str, body: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    send(&mut stream, method, path, body);
    read_reply(&mut stream)
}

fn send(stream: &mut TcpStream, method: &str, path: &str, body: &str) {
    let head =
        format!("{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n", body.len());
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
}

fn read_reply(stream: &mut TcpStream) -> Reply {
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("set client read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).expect("header line");
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            let (k, v) = (k.trim().to_string(), v.trim().to_string());
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.parse().expect("content-length");
            }
            headers.push((k, v));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    Reply { status, headers, body: String::from_utf8_lossy(&body).into_owned() }
}

fn start(
    cfg: ServeConfig,
) -> (
    std::net::SocketAddr,
    specrecon_server::ServerHandle,
    std::thread::JoinHandle<std::io::Result<specrecon_server::DrainReport>>,
) {
    let server = Server::start(cfg).expect("bind");
    let addr = server.addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

fn local(queue_depth: usize, workers: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_depth,
        log: false,
        ..ServeConfig::default()
    }
}

/// An inline kernel whose single warp spins `iters` times over a
/// `work`-heavy loop body — the knob the slow-request tests turn.
fn spin_kernel(iters: u64) -> String {
    format!(
        "kernel @spin(params=0, regs=4, barriers=0, entry=bb0) {{\n\
         bb0:\n  %r0 = mov 0\n  %r1 = mov {iters}\n  jmp bb1\n\
         bb1:\n  work 20\n  %r2 = mov 1\n  %r0 = add %r0, %r2\n  %r3 = lt %r0, %r1\n  br %r3, bb1, bb2\n\
         bb2:\n  exit\n}}\n"
    )
}

fn spin_body(iters: u64, deadline_ms: u64) -> String {
    format!(r#"{{"kernel":{:?},"warps":1,"deadline_ms":{deadline_ms}}}"#, spin_kernel(iters))
}

#[test]
#[ignore = "calibration probe, run manually with --ignored --nocapture"]
fn calibrate_spin_kernel() {
    let (addr, handle, runner) = start(local(8, 2));
    for iters in [10_000u64, 100_000, 1_000_000] {
        let t0 = Instant::now();
        let r = request(&addr, "POST", "/v1/eval", &spin_body(iters, 120_000));
        println!("iters={iters}: status={} in {:?}", r.status, t0.elapsed());
    }
    handle.shutdown();
    runner.join().unwrap().unwrap();
}

#[test]
fn healthz_metrics_and_eval_round_trip() {
    let (addr, handle, runner) = start(local(8, 2));

    let health = request(&addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\n");

    let eval =
        request(&addr, "POST", "/v1/eval", r#"{"workload":"microbench","warps":2,"seeds":2}"#);
    assert_eq!(eval.status, 200, "eval failed: {}", eval.body);
    assert_eq!(eval.header("Content-Type"), Some("application/json"));
    for key in ["\"workload\":\"microbench\"", "\"runs\"", "\"aggregate\"", "\"cache\""] {
        assert!(eval.body.contains(key), "missing {key} in {}", eval.body);
    }

    // A second identical request must hit the compiled-image cache.
    let again =
        request(&addr, "POST", "/v1/eval", r#"{"workload":"microbench","warps":2,"seeds":2}"#);
    assert_eq!(again.status, 200);

    let metrics = request(&addr, "GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    for key in [
        "specrecon_requests_total{code=\"200\"}",
        "specrecon_queue_depth_peak",
        "specrecon_cache_hits_total",
        "specrecon_eval_latency_seconds_bucket",
    ] {
        assert!(metrics.body.contains(key), "missing {key} in metrics:\n{}", metrics.body);
    }
    assert!(!metrics.body.contains("specrecon_cache_hits_total 0\n"), "cache hit not counted");

    handle.shutdown();
    let report = runner.join().unwrap().unwrap();
    assert!(report.ok >= 3, "expected >=3 2xx, got {report:?}");
}

#[test]
fn sweep_requests_export_fork_merge_counters() {
    let (addr, handle, runner) = start(local(8, 2));

    // Seed-storm diverges on nearly every round of a seed sweep, so the
    // fork/merge counters must move; the range form triggers the sweep
    // engine.
    let eval = request(&addr, "POST", "/v1/eval", r#"{"workload":"seed-storm","seeds":[0,16]}"#);
    assert_eq!(eval.status, 200, "sweep eval failed: {}", eval.body);
    for key in ["\"sweep\"", "\"forks\"", "\"merges\"", "\"mean_occupancy\"", "\"scalar_steps\""] {
        assert!(eval.body.contains(key), "missing {key} in {}", eval.body);
    }

    let metrics = request(&addr, "GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    assert!(
        scrape_gauge(&metrics.body, "specrecon_sweep_forks_total") > 0.0,
        "seed-storm sweep must fork:\n{}",
        metrics.body
    );
    assert!(
        scrape_gauge(&metrics.body, "specrecon_sweep_merges_total") > 0.0,
        "forked sub-cohorts must merge:\n{}",
        metrics.body
    );
    assert_eq!(
        scrape_gauge(&metrics.body, "specrecon_sweep_scalar_steps_total"),
        0.0,
        "2^warps classes fit the sub-cohort cap:\n{}",
        metrics.body
    );
    assert!(
        scrape_gauge(&metrics.body, "specrecon_sweep_mean_occupancy") > 1.0,
        "divergent sweep still issues multiple slots per instruction:\n{}",
        metrics.body
    );

    handle.shutdown();
    runner.join().unwrap().unwrap();
}

#[test]
fn error_statuses_are_mapped() {
    let (addr, handle, runner) = start(local(8, 2));

    assert_eq!(request(&addr, "GET", "/nope", "").status, 404);
    assert_eq!(request(&addr, "GET", "/v1/eval", "").status, 405);
    assert_eq!(request(&addr, "POST", "/v1/eval", "{not json").status, 400);
    let unknown = request(&addr, "POST", "/v1/eval", r#"{"workload":"nope"}"#);
    assert_eq!(unknown.status, 400);
    assert!(unknown.body.contains("unknown workload"));
    let both = request(&addr, "POST", "/v1/eval", r#"{"workload":"microbench","kernel":"kernel"}"#);
    assert_eq!(both.status, 400);
    // Inline source that parses as JSON but not as kernel IR → 400 with
    // the compiler's message.
    let bad_kernel = request(&addr, "POST", "/v1/eval", r#"{"kernel":"kernel @broken"}"#);
    assert_eq!(bad_kernel.status, 400);

    // Body over the 1 MiB cap → 413, connection closed.
    let huge = format!(r#"{{"kernel":"{}"}}"#, "x".repeat(2 * 1024 * 1024));
    let oversized = request(&addr, "POST", "/v1/eval", &huge);
    assert_eq!(oversized.status, 413);

    handle.shutdown();
    runner.join().unwrap().unwrap();
}

/// Satellite regression pin: a body-limit rejection answers 413 *and*
/// tears the connection down. The unread body bytes are still on the
/// socket, so keeping the connection open would desynchronize the
/// parser (the next "request line" would be kernel text).
#[test]
fn oversized_body_closes_the_connection() {
    let (addr, handle, runner) = start(local(8, 2));

    let mut stream = TcpStream::connect(addr).expect("connect");
    // Declare an oversized body but never send it — the server must
    // reject on the Content-Length alone.
    let head = format!(
        "POST /v1/eval HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        3 * 1024 * 1024
    );
    stream.write_all(head.as_bytes()).expect("write head");
    let reply = read_reply(&mut stream);
    assert_eq!(reply.status, 413);
    assert_eq!(reply.header("Connection"), Some("close"), "413 must advertise close");
    // The server actually closed: the next read reaches EOF rather than
    // hanging on a half-open keep-alive connection.
    let mut rest = Vec::new();
    let n = stream.read_to_end(&mut rest).expect("read to end");
    assert_eq!(n, 0, "socket must be closed after a 413, got {n} extra bytes");

    handle.shutdown();
    runner.join().unwrap().unwrap();
}

/// Seed ranges wider than one 64-slot cohort used to be rejected at the
/// API boundary even though the engine chunks arbitrary ranges. A
/// 200-seed range must now answer — bit-identically to 200 scalar
/// per-seed runs of the same workload.
#[test]
fn two_hundred_seed_range_matches_scalar_runs() {
    let (addr, handle, runner) = start(local(8, 2));

    let sweep = request(
        &addr,
        "POST",
        "/v1/eval",
        r#"{"workload":"microbench","mode":"baseline","warps":1,"seeds":[0,200]}"#,
    );
    assert_eq!(sweep.status, 200, "wide range rejected: {}", sweep.body);
    let scalar = request(
        &addr,
        "POST",
        "/v1/eval",
        r#"{"workload":"microbench","mode":"baseline","warps":1,"seed":0,"seeds":200}"#,
    );
    assert_eq!(scalar.status, 200, "scalar batch failed: {}", scalar.body);

    let runs = |body: &str| -> String {
        let start = body.find("\"runs\":").expect("runs field");
        let end = body[start..].find("],").map(|i| start + i + 1).expect("runs array end");
        body[start..end].to_string()
    };
    let (sweep_runs, scalar_runs) = (runs(&sweep.body), runs(&scalar.body));
    assert_eq!(sweep_runs.matches("\"seed\"").count(), 200, "one entry per seed");
    assert_eq!(sweep_runs, scalar_runs, "sweep and scalar per-seed metrics must be bit-identical");

    handle.shutdown();
    runner.join().unwrap().unwrap();
}

/// Hierarchy-model requests surface per-level counters in `/metrics`.
#[test]
fn mem_hierarchy_counters_reach_prometheus() {
    let (addr, handle, runner) = start(local(8, 2));

    let eval = request(
        &addr,
        "POST",
        "/v1/eval",
        r#"{"workload":"microbench","warps":1,"mem_hier":"l1:lines=16,cells=16,lat=2;dram:lat=24,extra=2"}"#,
    );
    assert_eq!(eval.status, 200, "hierarchy eval failed: {}", eval.body);
    assert!(eval.body.contains("\"mem\""), "response carries a mem object: {}", eval.body);

    let metrics = request(&addr, "GET", "/metrics", "");
    let l1_traffic = scrape_gauge(&metrics.body, "specrecon_mem_hits_total{level=\"L1\"}")
        + scrape_gauge(&metrics.body, "specrecon_mem_misses_total{level=\"L1\"}");
    assert!(l1_traffic > 0.0, "L1 counters must move:\n{}", metrics.body);

    handle.shutdown();
    runner.join().unwrap().unwrap();
}

#[test]
fn queue_full_sheds_with_retry_after() {
    // One worker, queue of one: at most two requests in the system.
    let (addr, handle, runner) = start(local(1, 1));

    let body = spin_body(300_000, 120_000);
    let replies: Vec<Reply> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let body = body.clone();
                s.spawn(move || request(&addr, "POST", "/v1/eval", &body))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let ok = replies.iter().filter(|r| r.status == 200).count();
    let shed = replies.iter().filter(|r| r.status == 503).count();
    // The queue admits at most one job plus the one the worker already
    // popped — between one and two of six clients can win the race, and
    // everyone else is shed immediately.
    assert_eq!(ok + shed, 6, "unexpected statuses: {:?}", statuses(&replies));
    assert!((1..=2).contains(&ok), "worker+queue bound violated: {:?}", statuses(&replies));
    assert!(shed >= 4);
    for r in replies.iter().filter(|r| r.status == 503) {
        assert_eq!(r.header("Retry-After"), Some("1"), "503 without Retry-After");
    }

    // The bound was never exceeded.
    let metrics = request(&addr, "GET", "/metrics", "");
    let peak = scrape_gauge(&metrics.body, "specrecon_queue_depth_peak");
    assert!(peak <= 1.0, "queue peak {peak} exceeded depth 1");

    handle.shutdown();
    runner.join().unwrap().unwrap();
}

#[test]
fn deadline_expiry_returns_504_and_cancels() {
    let (addr, handle, runner) = start(local(4, 1));

    let t0 = Instant::now();
    let r = request(&addr, "POST", "/v1/eval", &spin_body(30_000_000, 150));
    assert_eq!(r.status, 504, "expected deadline expiry: {}", r.body);
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "504 should arrive at the deadline, took {:?}",
        t0.elapsed()
    );

    // Cancellation must leave the engine usable: the worker aborts the
    // cancelled run promptly and serves the next request normally.
    let next = request(&addr, "POST", "/v1/eval", r#"{"workload":"microbench"}"#);
    assert_eq!(next.status, 200, "engine unusable after cancellation: {}", next.body);

    let metrics = request(&addr, "GET", "/metrics", "");
    assert!(metrics.body.contains("specrecon_requests_total{code=\"504\"} 1"));

    handle.shutdown();
    runner.join().unwrap().unwrap();
}

#[test]
fn shutdown_mid_flight_drains_accepted_work() {
    let (addr, handle, runner) = start(local(4, 1));

    // Park one slow-but-finite request in the worker.
    let body = spin_body(300_000, 120_000);
    let in_flight = std::thread::spawn(move || request(&addr, "POST", "/v1/eval", &body));
    // Give it time to be admitted and picked up.
    std::thread::sleep(Duration::from_millis(200));

    handle.shutdown();
    let report = runner.join().unwrap().unwrap();

    // The in-flight request was not silently dropped: it still got a
    // real, successful response after shutdown began.
    let reply = in_flight.join().expect("client thread");
    assert_eq!(reply.status, 200, "drained request failed: {}", reply.body);
    assert_eq!(report.drained, 1, "drain report missed the in-flight job: {report:?}");
}

/// The ISSUE acceptance scenario: `--queue-depth 4`, 32 concurrent
/// clients. The server never holds more than the bound, excess load is
/// shed with 503, and every accepted request completes (or times out by
/// its deadline) — nothing hangs.
#[test]
fn thirty_two_clients_against_queue_depth_four() {
    let (addr, handle, runner) = start(local(4, 2));

    let body = spin_body(50_000, 30_000);
    let replies: Vec<Reply> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..32)
            .map(|_| {
                let body = body.clone();
                s.spawn(move || request(&addr, "POST", "/v1/eval", &body))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let ok = replies.iter().filter(|r| r.status == 200).count();
    let shed = replies.iter().filter(|r| r.status == 503).count();
    let timed_out = replies.iter().filter(|r| r.status == 504).count();
    assert_eq!(ok + shed + timed_out, 32, "unexpected statuses: {:?}", statuses(&replies));
    assert!(ok >= 2, "at least worker-count requests must succeed: {:?}", statuses(&replies));
    assert!(shed >= 1, "32 clients against depth 4 must shed: {:?}", statuses(&replies));

    let metrics = request(&addr, "GET", "/metrics", "");
    let peak = scrape_gauge(&metrics.body, "specrecon_queue_depth_peak");
    assert!(peak <= 4.0, "queue peak {peak} exceeded the configured depth 4");

    handle.shutdown();
    let report = runner.join().unwrap().unwrap();
    assert_eq!(report.ok as usize, ok + 1, "metrics disagree with client-observed 2xx");
}

fn statuses(replies: &[Reply]) -> Vec<u16> {
    replies.iter().map(|r| r.status).collect()
}

/// Pulls a single gauge value out of Prometheus text exposition.
fn scrape_gauge(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("gauge {name} not found in:\n{metrics}"))
}
