//! The `/v1/eval` request/response schema and its execution against the
//! shared batch engine.
//!
//! A request names either a built-in workload (`"workload"`) or carries
//! kernel source text (`"kernel"`), plus configuration knobs:
//!
//! ```json
//! {
//!   "workload": "rsbench",            // or "kernel": "kernel @k(...) { ... }"
//!   "mode": "speculative",            // baseline | speculative | auto
//!   "repair": "sr+meld",              // pdom | sr | meld | sr+meld | auto
//!                                     // (overrides `mode` when given)
//!   "policy": "greedy",               // greedy | minpc | maxpc | mostthreads | roundrobin
//!   "deconflict": "dynamic",          // dynamic | static
//!   "barrier_alloc": false,           // run barrier register allocation
//!   "threshold": 8,                   // soft-barrier threshold override
//!   "warps": 4, "seed": 1, "seeds": 2,  // or "seeds": [lo, hi) for a lockstep sweep
//!   "mem": 1024,                      // inline kernels only: global memory cells
//!   "mem_hier": "l1:lines=64,cells=16,lat=2;dram:lat=24,extra=2",
//!                                     // memory-hierarchy cost model (omit = flat)
//!   "recon_model": "ipdom-stack",     // barrier-file (default) | ipdom-stack
//!                                     // | warp-split[:window=N][,compact]
//!   "entry": "k",                     // inline kernels only: kernel to launch
//!   "deadline_ms": 1000
//! }
//! ```
//!
//! The response carries per-seed metrics, an aggregate, and the engine's
//! cache counters. All execution flows through the compiled-image cache
//! and honors a cooperative [`CancelToken`].
//!
//! `"seeds"` takes either a count `N` (runs seeds `seed..seed+N`, one
//! scalar simulation each — the historical form) or a half-open range
//! `[lo, hi]`, which compiles once and runs the whole range through the
//! lockstep sweep engine via [`Engine::sweep_image_range`] (ranges wider
//! than one cohort are chunked across the worker pool); the response
//! then adds a `"sweep"` object with the engine's fork/merge/occupancy
//! counters (plus the detach/rejoin escape-hatch counters). Both forms
//! answer with the same per-seed `"runs"` entries, and both are bounded
//! by [`MAX_SEEDS`] seeds per request.
//!
//! `"mem_hier"` selects the L1/L2/DRAM hierarchy cost model (same spec
//! syntax as the CLI's `--mem-hier`, parsed by
//! [`simt_sim::MemHierarchy::parse`]); the response then adds a `"mem"`
//! object with per-level hit/miss/MSHR counters summed over the
//! request's runs.
//!
//! `"recon_model"` selects the hardware reconvergence model (same spec
//! syntax as the CLI's `--recon-model`, parsed by
//! [`simt_sim::ReconvergenceModel::parse`]); the canonical spec is
//! echoed back as `"recon_model"`, and hardware-model runs add a
//! `"recon"` object with the stack/split counters summed over the
//! request's runs (also exported as `specrecon_recon_*` counters on
//! `GET /metrics`). Unknown model names answer 400.
//!
//! `"repair"` selects a divergence-repair strategy by name (same axis
//! as the CLI's `--repair`, parsed by
//! [`specrecon_core::RepairStrategy::parse`]), replacing the compile
//! options `"mode"` would have chosen; the canonical spec is echoed
//! back as `"repair"`. Unknown strategies answer 400.

use crate::json::Json;
use simt_ir::{parse_and_link, verify_module, FuncKind, Value};
use simt_sim::{
    run_image_with, CancelToken, Launch, MemHierarchy, MemStats, ReconStats, ReconvergenceModel,
    SchedulerPolicy, SimConfig, SimError,
};
use specrecon_core::{CompileOptions, DeconflictMode, DetectOptions, RepairStrategy};
use workloads::eval::{Engine, EvalError};
use workloads::{microbench, registry, seedstorm, srad};

/// Sanity bound on seeds per request (count or range form). The sweep
/// engine chunks arbitrary ranges across the worker pool, so this is a
/// resource guard, not an engine limit.
pub const MAX_SEEDS: u64 = 400;

/// A structured failure answering an eval request.
#[derive(Debug)]
pub struct ApiError {
    /// HTTP status the failure maps to.
    pub status: u16,
    /// Human-readable message (returned as `{"error": ...}`).
    pub message: String,
}

impl ApiError {
    fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError { status: 400, message: message.into() }
    }
}

/// A validated eval request, ready to run.
#[derive(Clone, Debug)]
pub struct EvalRequest {
    /// Module to run and the name reported back.
    pub name: String,
    /// Kernel module (workload's or parsed from inline source).
    pub module: simt_ir::Module,
    /// Launch template (seed is rewritten per run).
    pub launch: Launch,
    /// Compile configuration.
    pub opts: CompileOptions,
    /// Machine configuration.
    pub cfg: SimConfig,
    /// Mode string echoed in the response.
    pub mode: String,
    /// Policy string echoed in the response.
    pub policy: String,
    /// Repair strategy, when the request pinned one (echoed back).
    pub repair: Option<RepairStrategy>,
    /// Number of launches (seeds `seed..seed+n`).
    pub seeds: u64,
    /// When set, run the half-open seed range `[lo, hi)` as one lockstep
    /// sweep instead of `seeds` scalar launches.
    pub sweep: Option<(u64, u64)>,
    /// Client-requested deadline override, in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// Parses and validates the JSON body of a `/v1/eval` request.
pub fn parse_request(body: &[u8]) -> Result<EvalRequest, ApiError> {
    let text =
        std::str::from_utf8(body).map_err(|_| ApiError::bad_request("body is not valid utf-8"))?;
    let doc = Json::parse(text).map_err(|e| ApiError::bad_request(format!("bad json: {e}")))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(ApiError::bad_request("request body must be a json object"));
    }

    let field_str = |key: &str| -> Result<Option<&str>, ApiError> {
        match doc.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| ApiError::bad_request(format!("`{key}` must be a string"))),
        }
    };
    let field_u64 = |key: &str| -> Result<Option<u64>, ApiError> {
        match doc.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                ApiError::bad_request(format!("`{key}` must be a non-negative integer"))
            }),
        }
    };

    let mode = field_str("mode")?.unwrap_or("speculative").to_string();
    let policy = field_str("policy")?.unwrap_or("greedy").to_string();
    let mut opts = match mode.as_str() {
        "baseline" => CompileOptions::baseline(),
        "speculative" => CompileOptions::speculative(),
        "auto" => CompileOptions::automatic(DetectOptions::default()),
        other => {
            return Err(ApiError::bad_request(format!(
                "unknown mode {other:?} (baseline | speculative | auto)"
            )))
        }
    };
    let mut repair = None;
    if let Some(spec) = field_str("repair")? {
        let r = RepairStrategy::parse(spec)
            .map_err(|e| ApiError::bad_request(format!("bad `repair`: {e}")))?;
        opts = r.options();
        repair = Some(r);
    }
    match field_str("deconflict")? {
        None => {}
        Some("dynamic") => opts.deconflict = DeconflictMode::Dynamic,
        Some("static") => opts.deconflict = DeconflictMode::Static,
        Some(other) => {
            return Err(ApiError::bad_request(format!(
                "unknown deconflict {other:?} (dynamic | static)"
            )))
        }
    }
    if let Some(Json::Bool(b)) = doc.get("barrier_alloc") {
        opts.barrier_allocation = *b;
    }
    // Requests are untrusted input: always lint the compiled module so a
    // soundness hole surfaces as a 400, not a wrong answer.
    opts.lint = true;

    let scheduler = match policy.as_str() {
        "greedy" => SchedulerPolicy::Greedy,
        "minpc" | "min-pc" => SchedulerPolicy::MinPc,
        "maxpc" | "max-pc" => SchedulerPolicy::MaxPc,
        "mostthreads" | "most-threads" => SchedulerPolicy::MostThreads,
        "roundrobin" | "round-robin" => SchedulerPolicy::RoundRobin,
        other => {
            return Err(ApiError::bad_request(format!(
                "unknown policy {other:?} (greedy | minpc | maxpc | mostthreads | roundrobin)"
            )))
        }
    };
    let mut cfg = SimConfig { scheduler, ..SimConfig::default() };
    if let Some(spec) = field_str("mem_hier")? {
        cfg.mem = Some(
            MemHierarchy::parse(spec, &cfg.latency)
                .map_err(|e| ApiError::bad_request(format!("bad `mem_hier`: {e}")))?,
        );
    }
    if let Some(spec) = field_str("recon_model")? {
        cfg.recon = ReconvergenceModel::parse(spec)
            .map_err(|e| ApiError::bad_request(format!("bad `recon_model`: {e}")))?;
    }

    // `seeds` is a count (historical) or a half-open `[lo, hi]` range
    // that runs as one lockstep sweep (chunked across the pool when
    // wider than a cohort).
    let (seeds, sweep) = match doc.get("seeds") {
        None | Some(Json::Null) => (1, None),
        Some(Json::Arr(range)) => {
            let bad = || {
                ApiError::bad_request(format!(
                    "`seeds` range must be [lo, hi] with lo < hi (half-open, at most {MAX_SEEDS} seeds)",
                ))
            };
            let [lo, hi] = range.as_slice() else { return Err(bad()) };
            let (lo, hi) = (lo.as_u64().ok_or_else(bad)?, hi.as_u64().ok_or_else(bad)?);
            if lo >= hi || hi - lo > MAX_SEEDS {
                return Err(bad());
            }
            (hi - lo, Some((lo, hi)))
        }
        Some(v) => {
            let n = v.as_u64().ok_or_else(|| {
                ApiError::bad_request("`seeds` must be a count or a [lo, hi] range")
            })?;
            (n.clamp(1, MAX_SEEDS), None)
        }
    };
    let warps = field_u64("warps")?.map(|w| w as usize);
    if warps == Some(0) {
        return Err(ApiError::bad_request("`warps` must be at least 1"));
    }
    let seed = field_u64("seed")?;
    let threshold = field_u64("threshold")?.map(|t| t as u32);
    let deadline_ms = field_u64("deadline_ms")?;

    let named = field_str("workload")?;
    let inline = field_str("kernel")?;
    let (name, mut module, mut launch) = match (named, inline) {
        (Some(_), Some(_)) => {
            return Err(ApiError::bad_request("give `workload` or `kernel`, not both"))
        }
        (None, None) => {
            return Err(ApiError::bad_request("missing `workload` (name) or `kernel` (source)"))
        }
        (Some(name), None) => {
            let w = lookup_workload(name).ok_or_else(|| {
                ApiError::bad_request(format!(
                    "unknown workload {name:?} (known: {})",
                    known_workloads().join(", ")
                ))
            })?;
            // Echo the requested name (the microbench alias reports as
            // asked, not as its internal "common-call" id).
            (name.to_string(), w.module, w.launch)
        }
        (None, Some(src)) => {
            let module = parse_and_link(src)
                .map_err(|e| ApiError::bad_request(format!("kernel parse error: {e}")))?;
            verify_module(&module).map_err(|errs| {
                let lines: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
                ApiError::bad_request(format!("kernel verification failed: {}", lines.join("; ")))
            })?;
            let kernel = match field_str("entry")? {
                Some(k) => k.to_string(),
                None => module
                    .functions
                    .iter()
                    .find(|(_, f)| f.kind == FuncKind::Kernel)
                    .map(|(_, f)| f.name.clone())
                    .ok_or_else(|| ApiError::bad_request("kernel source has no kernel"))?,
            };
            if module.function_by_name(&kernel).is_none() {
                return Err(ApiError::bad_request(format!("no kernel named @{kernel}")));
            }
            let mut launch = Launch::new(kernel, 4);
            let mem = field_u64("mem")?.unwrap_or(1024).min(1 << 22) as usize;
            launch.global_mem = vec![Value::I64(0); mem];
            ("inline".to_string(), module, launch)
        }
    };

    if let Some(w) = warps {
        launch.num_warps = w.min(4096);
    }
    if let Some(s) = seed {
        launch.seed = s;
    }
    if let Some(t) = threshold {
        for (_, f) in module.functions.iter_mut() {
            for p in &mut f.predictions {
                p.threshold = Some(t);
            }
        }
    }

    Ok(EvalRequest {
        name,
        module,
        launch,
        opts,
        cfg,
        mode,
        policy,
        repair,
        seeds,
        sweep,
        deadline_ms,
    })
}

/// The workload names `/v1/eval` accepts.
pub fn known_workloads() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = registry().iter().map(|w| w.name).collect();
    names.push("microbench");
    names.push("seed-storm");
    names.push("srad");
    names
}

fn lookup_workload(name: &str) -> Option<workloads::Workload> {
    if name == "microbench" {
        return Some(microbench::build_common_call(&microbench::Params::default()));
    }
    if name == "seed-storm" {
        return Some(seedstorm::build(&seedstorm::Params::default()));
    }
    if name == "srad" {
        return Some(srad::build(&srad::Params::default()));
    }
    registry().into_iter().find(|w| w.name == name)
}

/// Runs a validated request on `engine`, polling `cancel` between
/// scheduling rounds.
///
/// # Errors
///
/// `400` for compile failures, `422` for simulation faults, `504` when
/// the run was cancelled (deadline expiry or shutdown).
///
/// Sweep requests fold the engine's fork/merge counters into `metrics`
/// (when given) so `GET /metrics` exposes fleet-wide sweep health.
pub fn execute(
    engine: &Engine,
    req: &EvalRequest,
    cancel: &CancelToken,
    metrics: Option<&crate::metrics::ServerMetrics>,
) -> Result<Json, ApiError> {
    let image = engine.decoded(&req.module, Some(&req.opts)).map_err(|e| match e {
        EvalError::Compile(e) => ApiError::bad_request(format!("compile error: {e}")),
        other => ApiError { status: 500, message: other.to_string() },
    })?;

    let sim_error = |e: &SimError| match e {
        SimError::Cancelled { .. } => ApiError { status: 504, message: "deadline exceeded".into() },
        other => ApiError { status: 422, message: format!("simulation error: {other}") },
    };
    let run_entry = |seed: u64, m: &simt_sim::Metrics| {
        Json::Obj(vec![
            ("seed".into(), Json::u64(seed)),
            ("cycles".into(), Json::u64(m.cycles)),
            ("simt_efficiency".into(), Json::num(m.simt_efficiency())),
            ("roi_simt_efficiency".into(), Json::num(m.roi_simt_efficiency())),
            ("barrier_ops".into(), Json::u64(m.barrier_ops)),
        ])
    };

    let mut runs = Vec::with_capacity(req.seeds as usize);
    let mut cycles = Vec::with_capacity(req.seeds as usize);
    let mut effs = Vec::with_capacity(req.seeds as usize);
    let mut mem = MemStats::default();
    let mut recon = ReconStats::default();
    let mut sweep_stats = None;
    if let Some((lo, hi)) = req.sweep {
        // The range runs as lockstep cohorts: compile once, step all
        // seeds together (chunked across the worker pool when wider
        // than one cohort), report each seed exactly as a standalone
        // run.
        let out = engine
            .sweep_image_range(&image, &req.cfg, &req.launch, lo, hi, Some(cancel))
            .map_err(|e| match e {
                SimError::SweepUnsupported { .. } => ApiError::bad_request(e.to_string()),
                other => sim_error(&other),
            })?;
        for entry in out.runs {
            let seed_out = entry.result.map_err(|e| sim_error(&e))?;
            let m = &seed_out.metrics;
            cycles.push(m.cycles);
            effs.push(m.simt_efficiency());
            mem = mem.saturating_add(&m.mem);
            recon = recon.wrapping_add(&m.recon);
            runs.push(run_entry(entry.seed, m));
        }
        if let Some(m) = metrics {
            let s = &out.stats;
            m.record_sweep(s.forks, s.merges, s.scalar_steps, s.occupancy_sum, s.lockstep_issues);
        }
        sweep_stats = Some(out.stats);
    } else {
        for i in 0..req.seeds {
            if cancel.is_cancelled() {
                return Err(ApiError { status: 504, message: "deadline exceeded".into() });
            }
            let mut launch = req.launch.clone();
            launch.seed = req.launch.seed.wrapping_add(i);
            let out = run_image_with(&image, &req.cfg, &launch, Some(cancel))
                .map_err(|e| sim_error(&e))?;
            let m = &out.metrics;
            cycles.push(m.cycles);
            effs.push(m.simt_efficiency());
            mem = mem.saturating_add(&m.mem);
            recon = recon.wrapping_add(&m.recon);
            runs.push(run_entry(launch.seed, m));
        }
    }
    if let (Some(sm), false) = (metrics, mem.is_zero()) {
        let levels = [0, 1, 2].map(|i| {
            let l = &mem.levels[i];
            [l.hits, l.misses, l.mshr_merges, l.mshr_stall_cycles]
        });
        sm.record_mem(&levels, mem.dram_accesses, mem.dram_segments);
    }
    if let (Some(sm), false) = (metrics, recon.is_zero()) {
        sm.record_recon(
            recon.stack_pushes,
            recon.stack_pops,
            recon.splits,
            recon.fusions,
            recon.deferrals,
        );
    }

    let n = cycles.len() as f64;
    let aggregate = Json::Obj(vec![
        ("mean_cycles".into(), Json::num(cycles.iter().sum::<u64>() as f64 / n)),
        ("min_cycles".into(), Json::u64(cycles.iter().copied().min().unwrap_or(0))),
        ("max_cycles".into(), Json::u64(cycles.iter().copied().max().unwrap_or(0))),
        ("mean_simt_efficiency".into(), Json::num(effs.iter().sum::<f64>() / n)),
    ]);
    let cache = engine.cache_stats();
    let mut body = vec![
        ("workload".into(), Json::str(req.name.clone())),
        ("mode".into(), Json::str(req.mode.clone())),
        ("policy".into(), Json::str(req.policy.clone())),
        ("recon_model".into(), Json::str(req.cfg.recon.spec())),
        ("warps".into(), Json::u64(req.launch.num_warps as u64)),
    ];
    if let Some(r) = req.repair {
        body.insert(3, ("repair".into(), Json::str(r.spec())));
    }
    body.extend(vec![
        ("runs".into(), Json::Arr(runs)),
        ("aggregate".into(), aggregate),
        (
            "cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::u64(cache.hits)),
                ("misses".into(), Json::u64(cache.misses)),
                ("hit_rate".into(), Json::num(cache.hit_rate())),
            ]),
        ),
    ]);
    if !mem.is_zero() {
        let mut fields = Vec::with_capacity(4);
        for (i, l) in mem.levels.iter().enumerate() {
            if l.hits == 0 && l.misses == 0 && l.mshr_merges == 0 && l.mshr_stall_cycles == 0 {
                continue;
            }
            fields.push((
                format!("l{}", i + 1),
                Json::Obj(vec![
                    ("hits".into(), Json::u64(l.hits)),
                    ("misses".into(), Json::u64(l.misses)),
                    ("mshr_merges".into(), Json::u64(l.mshr_merges)),
                    ("mshr_stall_cycles".into(), Json::u64(l.mshr_stall_cycles)),
                ]),
            ));
        }
        fields.push((
            "dram".into(),
            Json::Obj(vec![
                ("accesses".into(), Json::u64(mem.dram_accesses)),
                ("segments".into(), Json::u64(mem.dram_segments)),
            ]),
        ));
        body.push(("mem".into(), Json::Obj(fields)));
    }
    if !recon.is_zero() {
        body.push((
            "recon".into(),
            Json::Obj(vec![
                ("stack_pushes".into(), Json::u64(recon.stack_pushes)),
                ("stack_pops".into(), Json::u64(recon.stack_pops)),
                ("stack_max_depth".into(), Json::u64(recon.stack_max_depth)),
                ("splits".into(), Json::u64(recon.splits)),
                ("fusions".into(), Json::u64(recon.fusions)),
                ("deferrals".into(), Json::u64(recon.deferrals)),
            ]),
        ));
    }
    if let Some(s) = sweep_stats {
        body.push((
            "sweep".into(),
            Json::Obj(vec![
                ("instances".into(), Json::u64(s.instances as u64)),
                ("lockstep_issues".into(), Json::u64(s.lockstep_issues)),
                ("forks".into(), Json::u64(s.forks)),
                ("merges".into(), Json::u64(s.merges)),
                ("peak_subcohorts".into(), Json::u64(u64::from(s.peak_subcohorts))),
                ("mean_occupancy".into(), Json::num(s.mean_occupancy())),
                ("detaches".into(), Json::u64(s.detaches)),
                ("rejoins".into(), Json::u64(s.rejoins)),
                ("scalar_steps".into(), Json::u64(s.scalar_steps)),
            ]),
        ));
    }
    Ok(Json::Obj(body))
}

/// Renders an [`ApiError`] as the `{"error": ...}` body.
pub fn error_body(e: &ApiError) -> String {
    Json::Obj(vec![("error".into(), Json::str(e.message.clone()))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_named_workload_request() {
        let req = parse_request(
            br#"{"workload":"rsbench","mode":"baseline","policy":"minpc","warps":2,"seed":7,"seeds":3}"#,
        )
        .unwrap();
        assert_eq!(req.name, "rsbench");
        assert_eq!(req.launch.num_warps, 2);
        assert_eq!(req.launch.seed, 7);
        assert_eq!(req.seeds, 3);
        assert_eq!(req.cfg.scheduler, SchedulerPolicy::MinPc);
        assert!(!req.opts.speculative);
    }

    #[test]
    fn parses_inline_kernel_request() {
        let src = "kernel @k(params=0, regs=2, barriers=0, entry=bb0) {\nbb0:\n  %r0 = special.tid\n  %r1 = mul %r0, 2\n  store global[%r0], %r1\n  exit\n}\n";
        let body = Json::Obj(vec![
            ("kernel".into(), Json::str(src)),
            ("warps".into(), Json::u64(1)),
            ("mem".into(), Json::u64(64)),
        ])
        .render();
        let req = parse_request(body.as_bytes()).unwrap();
        assert_eq!(req.name, "inline");
        assert_eq!(req.launch.kernel, "k");
        assert_eq!(req.launch.global_mem.len(), 64);
    }

    #[test]
    fn rejects_bad_requests_with_reasons() {
        for (body, needle) in [
            (&b"not json"[..], "bad json"),
            (br#"{}"#, "missing `workload`"),
            (br#"{"workload":"nope"}"#, "unknown workload"),
            (br#"{"workload":"rsbench","mode":"turbo"}"#, "unknown mode"),
            (br#"{"workload":"rsbench","repair":"duplicate"}"#, "`repair`"),
            (br#"{"workload":"rsbench","policy":"fifo"}"#, "unknown policy"),
            (br#"{"workload":"rsbench","warps":0}"#, "`warps`"),
            (br#"{"workload":"rsbench","kernel":"x"}"#, "not both"),
            (br#"{"kernel":"kernel @"}"#, "parse error"),
        ] {
            let err = parse_request(body).unwrap_err();
            assert_eq!(err.status, 400, "{}", err.message);
            assert!(err.message.contains(needle), "{:?} -> {}", body, err.message);
        }
    }

    #[test]
    fn executes_a_named_workload_end_to_end() {
        let engine = Engine::new(1);
        let req =
            parse_request(br#"{"workload":"microbench","mode":"speculative","warps":1,"seeds":2}"#)
                .unwrap();
        let token = CancelToken::new();
        let out = execute(&engine, &req, &token, None).unwrap();
        assert_eq!(out.get("workload").unwrap().as_str(), Some("microbench"));
        let runs = out.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 2);
        for r in runs {
            assert!(r.get("cycles").unwrap().as_u64().unwrap() > 0);
        }
        // The response is valid JSON end to end.
        Json::parse(&out.render()).unwrap();
    }

    #[test]
    fn parses_seed_range_request() {
        let req = parse_request(br#"{"workload":"rsbench","seeds":[10,14]}"#).unwrap();
        assert_eq!(req.sweep, Some((10, 14)));
        assert_eq!(req.seeds, 4);
        // The count form stays a count.
        let req = parse_request(br#"{"workload":"rsbench","seeds":3}"#).unwrap();
        assert_eq!(req.sweep, None);
        assert_eq!(req.seeds, 3);
    }

    #[test]
    fn rejects_bad_seed_ranges() {
        for body in [
            &br#"{"workload":"rsbench","seeds":[5]}"#[..],
            br#"{"workload":"rsbench","seeds":[5,5]}"#,
            br#"{"workload":"rsbench","seeds":[9,3]}"#,
            br#"{"workload":"rsbench","seeds":[0,401]}"#,
            br#"{"workload":"rsbench","seeds":[1,2,3]}"#,
            br#"{"workload":"rsbench","seeds":"many"}"#,
        ] {
            let err = parse_request(body).unwrap_err();
            assert_eq!(err.status, 400, "{:?}: {}", body, err.message);
            assert!(err.message.contains("`seeds`"), "{}", err.message);
        }
    }

    #[test]
    fn seed_ranges_wider_than_a_cohort_parse() {
        // The old hard cap was 64 seeds (one cohort); the engine chunks
        // wider ranges, so anything up to the sanity bound is accepted.
        let req = parse_request(br#"{"workload":"rsbench","seeds":[0,200]}"#).unwrap();
        assert_eq!(req.sweep, Some((0, 200)));
        assert_eq!(req.seeds, 200);
        let req = parse_request(br#"{"workload":"rsbench","seeds":[0,400]}"#).unwrap();
        assert_eq!(req.sweep, Some((0, 400)));
    }

    #[test]
    fn parses_mem_hier_knob() {
        let req = parse_request(
            br#"{"workload":"rsbench","mem_hier":"l1:lines=8,cells=16,lat=2,mshrs=4;dram:lat=24,extra=2"}"#,
        )
        .unwrap();
        let hier = req.cfg.mem.expect("mem_hier sets the hierarchy model");
        assert_eq!(hier.levels.len(), 1);
        assert_eq!(hier.levels[0].lines, 8);
        assert_eq!(hier.mem_latency, 24);
        // Omitted: flat model, as before.
        let req = parse_request(br#"{"workload":"rsbench"}"#).unwrap();
        assert!(req.cfg.mem.is_none());
        // Malformed specs answer 400 with the parser's reason.
        let err = parse_request(br#"{"workload":"rsbench","mem_hier":"l9:lines=1"}"#).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("mem_hier"), "{}", err.message);
    }

    #[test]
    fn mem_hier_responses_carry_per_level_counters() {
        let engine = Engine::new(1);
        let req = parse_request(
            br#"{"workload":"microbench","mode":"baseline","warps":1,"seeds":2,
                "mem_hier":"l1:lines=16,cells=16,lat=2;dram:lat=24,extra=2"}"#,
        )
        .unwrap();
        let token = CancelToken::new();
        let sm = crate::metrics::ServerMetrics::default();
        let out = execute(&engine, &req, &token, Some(&sm)).unwrap();
        let mem = out.get("mem").expect("hierarchy runs report a mem object");
        let l1 = mem.get("l1").expect("configured L1 level present");
        let touched =
            l1.get("hits").unwrap().as_u64().unwrap() + l1.get("misses").unwrap().as_u64().unwrap();
        assert!(touched > 0, "L1 saw traffic: {}", mem.render());
        assert!(mem.get("dram").is_some());
        // The same counters land in the Prometheus registry.
        let text = sm.render(0, 0, 8, engine.cache_stats());
        assert!(!text.contains("specrecon_mem_misses_total{level=\"L1\"} 0"), "{text}");
        Json::parse(&out.render()).unwrap();
    }

    #[test]
    fn seed_range_executes_as_a_sweep_with_per_seed_runs() {
        let engine = Engine::new(1);
        let req = parse_request(
            br#"{"workload":"microbench","mode":"baseline","warps":1,"seeds":[20,25]}"#,
        )
        .unwrap();
        let token = CancelToken::new();
        let out = execute(&engine, &req, &token, None).unwrap();
        let runs = out.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 5, "one entry per seed in the range");
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.get("seed").unwrap().as_u64(), Some(20 + i as u64));
            assert!(r.get("cycles").unwrap().as_u64().unwrap() > 0);
        }
        let sweep = out.get("sweep").expect("sweep responses carry engine counters");
        assert_eq!(sweep.get("instances").unwrap().as_u64(), Some(5));
        assert!(sweep.get("lockstep_issues").unwrap().as_u64().unwrap() > 0);
        // Per-seed metrics are bit-identical to the scalar path run of
        // the same seed.
        let scalar_req = parse_request(
            br#"{"workload":"microbench","mode":"baseline","warps":1,"seed":20,"seeds":5}"#,
        )
        .unwrap();
        let scalar = execute(&engine, &scalar_req, &token, None).unwrap();
        assert_eq!(
            Json::Arr(runs.to_vec()).render(),
            Json::Arr(scalar.get("runs").unwrap().as_arr().unwrap().to_vec()).render()
        );
        Json::parse(&out.render()).unwrap();
    }

    #[test]
    fn parses_recon_model_knob() {
        let req =
            parse_request(br#"{"workload":"rsbench","recon_model":"warp-split:window=4,compact"}"#)
                .unwrap();
        assert_eq!(req.cfg.recon, ReconvergenceModel::WarpSplit { window: 4, compact: true });
        // Omitted: the default Volta barrier-file model.
        let req = parse_request(br#"{"workload":"rsbench"}"#).unwrap();
        assert_eq!(req.cfg.recon, ReconvergenceModel::BarrierFile);
        // Unknown names answer 400 with the parser's reason.
        let err = parse_request(br#"{"workload":"rsbench","recon_model":"volta"}"#).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("recon_model"), "{}", err.message);
    }

    #[test]
    fn recon_model_responses_carry_counters() {
        let engine = Engine::new(1);
        let req = parse_request(
            br#"{"workload":"microbench","mode":"baseline","warps":1,"seeds":2,
                "recon_model":"ipdom-stack"}"#,
        )
        .unwrap();
        let token = CancelToken::new();
        let sm = crate::metrics::ServerMetrics::default();
        let out = execute(&engine, &req, &token, Some(&sm)).unwrap();
        assert_eq!(out.get("recon_model").unwrap().as_str(), Some("ipdom-stack"));
        let recon = out.get("recon").expect("hardware-model runs report a recon object");
        assert!(recon.get("stack_pushes").unwrap().as_u64().unwrap() > 0, "{}", recon.render());
        // The same counters land in the Prometheus registry.
        let text = sm.render(0, 0, 8, engine.cache_stats());
        assert!(!text.contains("specrecon_recon_stack_pushes_total 0"), "{text}");
        Json::parse(&out.render()).unwrap();

        // Barrier-file runs keep the response free of the recon object.
        let req =
            parse_request(br#"{"workload":"microbench","mode":"baseline","warps":1}"#).unwrap();
        let out = execute(&engine, &req, &token, None).unwrap();
        assert_eq!(out.get("recon_model").unwrap().as_str(), Some("barrier-file"));
        assert!(out.get("recon").is_none());
    }

    #[test]
    fn parses_repair_knob_and_echoes_it() {
        // Each strategy parses and replaces the mode's compile options.
        let req = parse_request(br#"{"workload":"srad","repair":"sr+meld"}"#).unwrap();
        assert_eq!(req.repair, Some(RepairStrategy::SrMeld));
        assert!(req.opts.speculative && req.opts.meld.is_some());
        let req =
            parse_request(br#"{"workload":"srad","mode":"speculative","repair":"pdom"}"#).unwrap();
        assert_eq!(req.repair, Some(RepairStrategy::Pdom));
        assert!(!req.opts.speculative, "`repair` overrides `mode`");
        // Omitted: the mode's options stand and no echo is added.
        let req = parse_request(br#"{"workload":"srad"}"#).unwrap();
        assert_eq!(req.repair, None);

        let engine = Engine::new(1);
        let req = parse_request(br#"{"workload":"srad","repair":"meld","warps":1}"#).unwrap();
        let token = CancelToken::new();
        let out = execute(&engine, &req, &token, None).unwrap();
        assert_eq!(out.get("repair").unwrap().as_str(), Some("meld"));
        let no_knob = parse_request(br#"{"workload":"srad","warps":1}"#).unwrap();
        let out = execute(&engine, &no_knob, &token, None).unwrap();
        assert!(out.get("repair").is_none());
        Json::parse(&out.render()).unwrap();
    }

    #[test]
    fn cancelled_execution_maps_to_504() {
        let engine = Engine::new(1);
        let req = parse_request(br#"{"workload":"microbench","warps":1}"#).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let err = execute(&engine, &req, &token, None).unwrap_err();
        assert_eq!(err.status, 504);
    }

    #[test]
    fn known_workloads_include_table2_and_microbench() {
        let names = known_workloads();
        assert!(names.contains(&"rsbench"));
        assert!(names.contains(&"microbench"));
        assert!(names.contains(&"seed-storm"));
        assert!(names.contains(&"srad"));
        assert_eq!(names.len(), 12);
    }
}
