//! A bounded MPMC work queue with explicit backpressure.
//!
//! `try_push` never blocks: when the queue is at capacity the caller
//! gets its item back and turns that into `503 Retry-After` — the
//! service sheds load at the door instead of buffering unboundedly.
//! `pop` blocks until work arrives or the queue is closed and drained,
//! which is exactly the worker-side contract a graceful shutdown needs:
//! accepted work is finished, nothing new is admitted.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// High-water mark of `items.len()` over the queue's lifetime.
    peak: usize,
}

/// Bounded multi-producer multi-consumer queue.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    ready: Condvar,
}

/// Why [`Bounded::try_push`] refused an item.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; retry later (backpressure).
    Full(T),
    /// The queue is closed (shutdown); no new work is admitted.
    Closed(T),
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State { items: VecDeque::new(), closed: false, peak: 0 }),
            capacity: capacity.max(1),
            ready: Condvar::new(),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (pending items not yet popped).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Highest depth ever observed (proves the bound held).
    pub fn peak(&self) -> usize {
        self.state.lock().expect("queue poisoned").peak
    }

    /// Non-blocking enqueue; on refusal the item comes back so the
    /// caller can answer the client.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.state.lock().expect("queue poisoned");
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        st.items.push_back(item);
        st.peak = st.peak.max(st.items.len());
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking dequeue. Returns `None` once the queue is closed *and*
    /// drained — the worker-thread exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).expect("queue poisoned");
        }
    }

    /// Closes the queue: no new pushes; pending items remain poppable.
    /// Idempotent.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Whether [`Bounded::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounds_and_backpressure() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.peak(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.peak(), 2, "peak never exceeded the capacity");
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = Bounded::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_close() {
        let q = Arc::new(Bounded::new(1));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || {
            let first = q2.pop();
            let second = q2.pop();
            (first, second)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        let (first, second) = popper.join().unwrap();
        assert_eq!(first, Some(7));
        assert_eq!(second, None);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(PushError::Full(2))));
    }
}
