//! Minimal JSON value, parser, and printer.
//!
//! The workspace has no crates.io access, so — like the perf-snapshot
//! format in `specrecon-bench` and the trace exporters in `simt-sim` —
//! the service hand-rolls its JSON. The subset is complete for the
//! `/v1/eval` schema: objects, arrays, strings with escapes, numbers,
//! booleans, null.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Renders the document compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without the trailing `.0` so
                    // cycle counts stay exact-looking.
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(o) => {
                out.push('{');
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// JSON string escaping.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            out.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Convenience constructors used by the response builders.
impl Json {
    /// A string node.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number node from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// A number node from a `u64` (lossless up to 2^53, which covers
    /// every counter the service reports).
    pub fn u64(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_eval_schema() {
        let text = r#"{"workload":"rsbench","warps":4,"seeds":2,"policy":"greedy","deadline_ms":250,"soft":true,"note":"a\"b\\c\n"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("workload").unwrap().as_str(), Some("rsbench"));
        assert_eq!(v.get("warps").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("soft").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("note").unwrap().as_str(), Some("a\"b\\c\n"));
        let reparsed = Json::parse(&v.render()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1}x", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::u64(12345).render(), "12345");
        assert_eq!(Json::num(0.5).render(), "0.5");
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse(r#""a\u0041b""#).unwrap();
        assert_eq!(v.as_str(), Some("aAb"));
    }
}
