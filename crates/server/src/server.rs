//! The threaded evaluation server.
//!
//! ## Architecture
//!
//! ```text
//!            accept loop (non-blocking poll, owns shutdown)
//!                 │ spawn per connection
//!            connection threads ──try_push──► Bounded<Job> ──pop──► worker pool
//!                 ▲                               (503 when full)        │
//!                 └────────── per-job mpsc reply channel ◄──────────────┘
//! ```
//!
//! - **Backpressure**: `POST /v1/eval` is admitted through a bounded
//!   queue; a full queue answers `503` with `Retry-After` immediately —
//!   the queue depth can never exceed `--queue-depth`.
//! - **Deadlines**: the connection thread creates a [`CancelToken`] per
//!   request and waits on the reply channel with a timeout; at the
//!   deadline it cancels the token (the simulator stops at its next
//!   scheduling round) and answers `504`.
//! - **Graceful drain**: SIGTERM/SIGINT (or the in-process
//!   [`ServerHandle::shutdown`]) stops the accept loop, closes the
//!   queue, and lets workers finish every admitted job; connection
//!   threads deliver those replies, answer anything newly read with
//!   `503`, and exit. Nothing admitted is dropped without a response.

use crate::api::{self, ApiError};
use crate::http::{read_request, ReadError, Request, Response};
use crate::metrics::ServerMetrics;
use crate::queue::{Bounded, PushError};
use crate::signal;
use simt_sim::CancelToken;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};
use workloads::eval::Engine;

/// Server configuration (the `specrecon serve` flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8077` (`:0` picks a free port).
    pub addr: String,
    /// Evaluation worker threads.
    pub workers: usize,
    /// Bound on queued (admitted, not yet running) eval jobs.
    pub queue_depth: usize,
    /// Deadline applied when a request does not carry `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Compiled-image cache bound (LRU eviction above it).
    pub cache_capacity: usize,
    /// Emit one structured JSON log line per request on stderr.
    pub log: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8077".into(),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_depth: 64,
            default_deadline_ms: 30_000,
            cache_capacity: 128,
            log: true,
        }
    }
}

/// One admitted eval job travelling from a connection thread to a
/// worker.
struct Job {
    request: api::EvalRequest,
    token: CancelToken,
    deadline: Instant,
    reply: mpsc::Sender<Result<String, ApiError>>,
}

/// Shared state between the accept loop, connections, and workers.
struct Shared {
    engine: Engine,
    queue: Bounded<Job>,
    metrics: ServerMetrics,
    /// Set once shutdown begins; connections answer 503 from then on.
    draining: AtomicBool,
    /// In-flight `/v1/eval` exchanges (admitted, response not yet
    /// written). The drain waits for this to reach zero.
    in_flight: AtomicU64,
    cfg: ServeConfig,
}

impl Shared {
    fn log_request(&self, peer: &str, method: &str, path: &str, status: u16, start: Instant) {
        if !self.cfg.log {
            return;
        }
        let ts = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map_or(0.0, |d| d.as_secs_f64());
        let latency_ms = start.elapsed().as_secs_f64() * 1e3;
        let depth = self.queue.depth();
        eprintln!(
            "{{\"ts\":{ts:.3},\"peer\":{},\"method\":{},\"path\":{},\"status\":{status},\"latency_ms\":{latency_ms:.3},\"queue_depth\":{depth}}}",
            crate::json::escape(peer),
            crate::json::escape(method),
            crate::json::escape(path),
        );
    }
}

/// Handle for stopping a running server from another thread (tests, the
/// ctrl-c path is handled internally via [`signal`]).
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain, exactly like delivering SIGTERM.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// A bound, running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    handle: ServerHandle,
    workers: Vec<std::thread::JoinHandle<()>>,
    connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

/// Drain summary returned by [`Server::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests answered 2xx over the server's lifetime.
    pub ok: u64,
    /// Eval jobs still queued or running when shutdown began — all of
    /// them were completed (or answered 504) before exit.
    pub drained: u64,
}

impl Server {
    /// Binds the listener and starts the worker pool. The accept loop
    /// does not run until [`Server::run`].
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            engine: Engine::with_capacity(1, cfg.cache_capacity),
            queue: Bounded::new(cfg.queue_depth),
            metrics: ServerMetrics::default(),
            draining: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            cfg: cfg.clone(),
        });

        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("eval-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let handle = ServerHandle { stop: Arc::new(AtomicBool::new(false)), addr };
        Ok(Server {
            listener,
            shared,
            handle,
            workers,
            connections: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr
    }

    /// A cloneable shutdown handle.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Runs the accept loop until SIGTERM/SIGINT or
    /// [`ServerHandle::shutdown`], then drains: stops accepting, lets
    /// workers finish every admitted job, joins every thread.
    pub fn run(self) -> std::io::Result<DrainReport> {
        let Server { listener, shared, handle, workers, connections } = self;
        loop {
            if handle.stop.load(Ordering::Relaxed) || signal::shutdown_requested() {
                break;
            }
            match listener.accept() {
                Ok((stream, peer)) => {
                    let shared = Arc::clone(&shared);
                    let conn = std::thread::Builder::new()
                        .name("conn".into())
                        .spawn(move || connection_loop(stream, peer, &shared))
                        .expect("spawn connection thread");
                    let mut conns = connections.lock().expect("connection registry poisoned");
                    conns.push(conn);
                    // Opportunistically reap finished connection threads
                    // so the registry stays small under load.
                    conns.retain(|c| !c.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: no new connections (loop exited), no new admissions
        // (queue closed + draining flag), workers finish what was
        // admitted, connection threads deliver it. `in_flight` already
        // counts queued jobs (admitted but unanswered).
        let drained = shared.in_flight.load(Ordering::Relaxed);
        shared.draining.store(true, Ordering::Relaxed);
        shared.queue.close();
        for w in workers {
            let _ = w.join();
        }
        // Connection threads see `draining` at their next read timeout
        // (bounded by the read-timeout interval) and exit.
        let conns = std::mem::take(&mut *connections.lock().expect("registry poisoned"));
        for c in conns {
            let _ = c.join();
        }
        Ok(DrainReport { ok: shared.metrics.ok_count(), drained })
    }
}

/// How long a connection read blocks before re-checking the draining
/// flag; also bounds how long shutdown waits on idle keep-alive
/// connections.
const READ_POLL: Duration = Duration::from_millis(200);

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let result = if Instant::now() >= job.deadline || job.token.is_cancelled() {
            // Expired while queued: don't burn a worker on it.
            Err(ApiError { status: 504, message: "deadline exceeded while queued".into() })
        } else {
            api::execute(&shared.engine, &job.request, &job.token, Some(&shared.metrics))
                .map(|json| json.render())
        };
        // The connection thread may have timed out and moved on; a dead
        // receiver is fine (it already answered 504).
        let _ = job.reply.send(result);
    }
}

fn connection_loop(stream: TcpStream, peer: SocketAddr, shared: &Shared) {
    let peer = peer.to_string();
    // Accepted sockets don't inherit the listener's non-blocking mode on
    // every platform; force blocking + poll-interval read timeout.
    // TCP_NODELAY because request/response exchanges are small and
    // latency-bound — Nagle + delayed ACK would add ~40ms per exchange.
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(READ_POLL)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(r) => r,
            Err(ReadError::TimedOut) => {
                if shared.draining.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(ReadError::Eof) => return,
            Err(ReadError::TooLarge(what)) => {
                // The oversized body was rejected *before* buffering it,
                // so its bytes are still unread on the socket and the
                // parser is desynchronized — the connection MUST close
                // (`close: true` + return), never continue to the next
                // read. Pinned by `oversized_body_closes_the_connection`.
                let resp = Response::json(
                    413,
                    format!("{{\"error\":{}}}", crate::json::escape(&format!("{what} too large"))),
                );
                let _ = resp.write(&mut writer, true);
                shared.metrics.record_status(413);
                return;
            }
            Err(ReadError::Malformed(m)) => {
                let resp =
                    Response::json(400, format!("{{\"error\":{}}}", crate::json::escape(&m)));
                let _ = resp.write(&mut writer, true);
                shared.metrics.record_status(400);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };
        let start = Instant::now();
        let close = request.wants_close();
        let (status, response) = route(&request, shared, start);
        shared.metrics.record_status(status);
        shared.log_request(&peer, &request.method, &request.path, status, start);
        if response.write(&mut writer, close).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

/// Dispatches one request, returning `(status, response)`.
fn route(request: &Request, shared: &Shared, start: Instant) -> (u16, Response) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let body = if shared.draining.load(Ordering::Relaxed) { "draining\n" } else { "ok\n" };
            (200, Response::text(200, body))
        }
        ("GET", "/metrics") => {
            let text = shared.metrics.render(
                shared.queue.depth(),
                shared.queue.peak(),
                shared.queue.capacity(),
                shared.engine.cache_stats(),
            );
            (200, Response::text(200, text))
        }
        ("POST", "/v1/eval") => eval_route(request, shared, start),
        ("GET", "/v1/eval") => (405, error_response(405, "use POST")),
        _ => (404, error_response(404, "not found (try /healthz, /metrics, POST /v1/eval)")),
    }
}

fn eval_route(request: &Request, shared: &Shared, start: Instant) -> (u16, Response) {
    let parsed = match api::parse_request(&request.body) {
        Ok(p) => p,
        Err(e) => return (e.status, Response::json(e.status, api::error_body(&e))),
    };
    if shared.draining.load(Ordering::Relaxed) {
        shared.metrics.record_rejected_draining();
        return (503, error_response(503, "draining").with_status_headers());
    }

    let deadline_ms = parsed.deadline_ms.unwrap_or(shared.cfg.default_deadline_ms).max(1);
    let deadline = start + Duration::from_millis(deadline_ms);
    let token = CancelToken::new();
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job { request: parsed, token: token.clone(), deadline, reply: reply_tx };

    shared.in_flight.fetch_add(1, Ordering::Relaxed);
    let outcome = match shared.queue.try_push(job) {
        Err(PushError::Full(_)) => {
            shared.metrics.record_rejected_full();
            (503, error_response(503, "queue full").with_status_headers())
        }
        Err(PushError::Closed(_)) => {
            shared.metrics.record_rejected_draining();
            (503, error_response(503, "draining").with_status_headers())
        }
        Ok(()) => {
            // Block until the worker answers or the deadline passes;
            // cancellation stops the simulation cooperatively.
            match reply_rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                Ok(Ok(body)) => {
                    shared.metrics.record_latency(start.elapsed().as_secs_f64());
                    (200, Response::json(200, body))
                }
                Ok(Err(e)) => {
                    if e.status == 504 {
                        shared.metrics.record_deadline_expired();
                    }
                    (e.status, Response::json(e.status, api::error_body(&e)))
                }
                Err(_) => {
                    // Deadline hit (or the worker pool vanished mid-
                    // drain, which cancels the same way): stop the run.
                    token.cancel();
                    shared.metrics.record_deadline_expired();
                    let e = ApiError { status: 504, message: "deadline exceeded".into() };
                    (504, Response::json(504, api::error_body(&e)))
                }
            }
        }
    };
    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    outcome
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, format!("{{\"error\":{}}}", crate::json::escape(message)))
}

trait RetryAfter {
    fn with_status_headers(self) -> Response;
}

impl RetryAfter for Response {
    /// 503s carry `Retry-After` so well-behaved clients back off.
    fn with_status_headers(self) -> Response {
        self.with_header("Retry-After", "1")
    }
}
