//! Process-signal plumbing for graceful shutdown, with no crate
//! dependencies.
//!
//! `std` exposes no signal API, but every Unix target already links the
//! platform C library — so the handler is registered through a direct
//! `signal(2)` FFI declaration, the same way the workspace hand-rolls
//! HTTP and JSON instead of pulling crates. The handler itself only
//! flips an atomic (the one async-signal-safe thing worth doing); the
//! accept loop polls it.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; polled by the server's accept loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT/SIGTERM has been received (or [`request_shutdown`]
/// called).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Programmatic equivalent of receiving SIGTERM (used by tests and the
/// in-process shutdown handle).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Test/support hook: clears the flag so one process can start a server
/// more than once.
pub fn reset() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
mod imp {
    /// Linux/POSIX signal numbers (stable ABI on every Unix Rust
    /// targets).
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)` from the C library `std` already links.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// The installed handler: flip the flag, nothing else (only
    /// async-signal-safe operations are legal here).
    extern "C" fn on_signal(_signum: i32) {
        super::request_shutdown();
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Non-Unix targets run without signal-driven shutdown; ctrl-c
    /// terminates the process the default way.
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (idempotent).
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_reset_round_trip() {
        reset();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
    }
}
