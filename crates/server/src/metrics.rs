//! Service counters exported in the Prometheus text exposition format.
//!
//! Everything is lock-free atomics: request counters by status code,
//! a cumulative-bucket latency histogram for `/v1/eval`, and gauges
//! sampled at scrape time (queue depth, compiled-image cache counters).

use std::sync::atomic::{AtomicU64, Ordering};
use workloads::eval::CacheStats;

/// Histogram bucket upper bounds, in seconds (Prometheus classic
/// buckets, truncated to the service's realistic range).
pub const LATENCY_BUCKETS: [f64; 12] =
    [0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0];

/// Status codes the service emits, in export order.
const CODES: [u16; 9] = [200, 400, 404, 405, 413, 422, 500, 503, 504];

/// Shared counter registry.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests answered, indexed like [`CODES`].
    by_code: [AtomicU64; 9],
    /// `/v1/eval` latency histogram: per-bucket counts (non-cumulative;
    /// accumulated at render time) plus `+Inf`.
    latency_buckets: [AtomicU64; 13],
    /// Sum of observed latencies, in microseconds.
    latency_sum_us: AtomicU64,
    /// Count of observed latencies.
    latency_count: AtomicU64,
    /// Requests shed with 503 because the queue was full.
    rejected_full: AtomicU64,
    /// Requests shed with 503 because the server was draining.
    rejected_draining: AtomicU64,
    /// Requests that hit their deadline (504).
    deadline_expired: AtomicU64,
    /// Sweep-engine sub-cohort forks across all sweep requests.
    sweep_forks: AtomicU64,
    /// Sweep-engine sub-cohort merges across all sweep requests.
    sweep_merges: AtomicU64,
    /// Scheduling rounds sweep instances spent on detached scalar
    /// machines (the escape hatch; 0 in healthy fork/merge traffic).
    sweep_scalar_steps: AtomicU64,
    /// Lockstep issues across all sweep requests (occupancy denominator).
    sweep_issues: AtomicU64,
    /// Summed issue widths across all sweep requests (occupancy
    /// numerator: `sweep_occupancy_sum / sweep_issues` is the mean
    /// slots-per-issue).
    sweep_occupancy_sum: AtomicU64,
    /// Cache hits per memory-hierarchy level (index 0 = L1) across all
    /// hierarchy-model runs.
    mem_hits: [AtomicU64; 3],
    /// Cache misses per memory-hierarchy level.
    mem_misses: [AtomicU64; 3],
    /// Misses merged into an in-flight MSHR entry, per level.
    mem_mshr_merges: [AtomicU64; 3],
    /// MSHR penalty cycles (merge waits + full-file stalls), per level.
    mem_mshr_stalls: [AtomicU64; 3],
    /// Global accesses that missed every cache level.
    mem_dram_accesses: AtomicU64,
    /// DRAM segments serviced.
    mem_dram_segments: AtomicU64,
    /// IPDOM reconvergence-stack pushes across all hardware-model runs.
    recon_stack_pushes: AtomicU64,
    /// IPDOM reconvergence-stack pops across all hardware-model runs.
    recon_stack_pops: AtomicU64,
    /// Warp splits forked across all hardware-model runs.
    recon_splits: AtomicU64,
    /// Warp-split re-fusions across all hardware-model runs.
    recon_fusions: AtomicU64,
    /// Issue slots given up inside the re-fusion window.
    recon_deferrals: AtomicU64,
}

impl ServerMetrics {
    /// Records one answered request.
    pub fn record_status(&self, status: u16) {
        if let Some(i) = CODES.iter().position(|&c| c == status) {
            self.by_code[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one `/v1/eval` latency observation.
    pub fn record_latency(&self, seconds: f64) {
        let idx =
            LATENCY_BUCKETS.iter().position(|&ub| seconds <= ub).unwrap_or(LATENCY_BUCKETS.len());
        self.latency_buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add((seconds * 1e6) as u64, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a queue-full rejection.
    pub fn record_rejected_full(&self) {
        self.rejected_full.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a draining rejection.
    pub fn record_rejected_draining(&self) {
        self.rejected_draining.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a deadline expiry.
    pub fn record_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one completed sweep's engine counters into the registry.
    /// Takes the raw counters (not the stats struct) so the metrics
    /// layer stays decoupled from the simulator types.
    pub fn record_sweep(
        &self,
        forks: u64,
        merges: u64,
        scalar_steps: u64,
        occupancy_sum: u64,
        lockstep_issues: u64,
    ) {
        self.sweep_forks.fetch_add(forks, Ordering::Relaxed);
        self.sweep_merges.fetch_add(merges, Ordering::Relaxed);
        self.sweep_scalar_steps.fetch_add(scalar_steps, Ordering::Relaxed);
        self.sweep_occupancy_sum.fetch_add(occupancy_sum, Ordering::Relaxed);
        self.sweep_issues.fetch_add(lockstep_issues, Ordering::Relaxed);
    }

    /// Folds one request's hardware-reconvergence counters into the
    /// registry. Raw counters (like [`ServerMetrics::record_sweep`]) so
    /// the metrics layer stays decoupled from the simulator types.
    pub fn record_recon(
        &self,
        stack_pushes: u64,
        stack_pops: u64,
        splits: u64,
        fusions: u64,
        deferrals: u64,
    ) {
        self.recon_stack_pushes.fetch_add(stack_pushes, Ordering::Relaxed);
        self.recon_stack_pops.fetch_add(stack_pops, Ordering::Relaxed);
        self.recon_splits.fetch_add(splits, Ordering::Relaxed);
        self.recon_fusions.fetch_add(fusions, Ordering::Relaxed);
        self.recon_deferrals.fetch_add(deferrals, Ordering::Relaxed);
    }

    /// Folds one request's memory-hierarchy counters into the registry.
    /// `levels` is `[hits, misses, mshr_merges, mshr_stall_cycles]` per
    /// cache level (raw counters, like [`ServerMetrics::record_sweep`],
    /// so the metrics layer stays decoupled from the simulator types).
    pub fn record_mem(&self, levels: &[[u64; 4]; 3], dram_accesses: u64, dram_segments: u64) {
        for (i, l) in levels.iter().enumerate() {
            self.mem_hits[i].fetch_add(l[0], Ordering::Relaxed);
            self.mem_misses[i].fetch_add(l[1], Ordering::Relaxed);
            self.mem_mshr_merges[i].fetch_add(l[2], Ordering::Relaxed);
            self.mem_mshr_stalls[i].fetch_add(l[3], Ordering::Relaxed);
        }
        self.mem_dram_accesses.fetch_add(dram_accesses, Ordering::Relaxed);
        self.mem_dram_segments.fetch_add(dram_segments, Ordering::Relaxed);
    }

    /// Total requests answered with a 2xx status.
    pub fn ok_count(&self) -> u64 {
        self.by_code[0].load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text exposition. Gauges (`queue_*`,
    /// cache counters) are sampled by the caller at scrape time.
    pub fn render(
        &self,
        queue_depth: usize,
        queue_peak: usize,
        queue_capacity: usize,
        cache: CacheStats,
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);

        out.push_str("# HELP specrecon_requests_total Requests answered, by status code.\n");
        out.push_str("# TYPE specrecon_requests_total counter\n");
        for (i, &code) in CODES.iter().enumerate() {
            let _ = writeln!(
                out,
                "specrecon_requests_total{{code=\"{code}\"}} {}",
                self.by_code[i].load(Ordering::Relaxed)
            );
        }

        out.push_str(
            "# HELP specrecon_rejected_total Requests shed with 503, by reason.\n\
             # TYPE specrecon_rejected_total counter\n",
        );
        let _ = writeln!(
            out,
            "specrecon_rejected_total{{reason=\"queue_full\"}} {}",
            self.rejected_full.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "specrecon_rejected_total{{reason=\"draining\"}} {}",
            self.rejected_draining.load(Ordering::Relaxed)
        );

        out.push_str(
            "# HELP specrecon_deadline_expired_total Requests that hit their deadline.\n\
             # TYPE specrecon_deadline_expired_total counter\n",
        );
        let _ = writeln!(
            out,
            "specrecon_deadline_expired_total {}",
            self.deadline_expired.load(Ordering::Relaxed)
        );

        out.push_str(
            "# HELP specrecon_queue_depth Evaluation jobs waiting in the bounded queue.\n\
             # TYPE specrecon_queue_depth gauge\n",
        );
        let _ = writeln!(out, "specrecon_queue_depth {queue_depth}");
        out.push_str(
            "# HELP specrecon_queue_depth_peak High-water mark of the queue depth.\n\
             # TYPE specrecon_queue_depth_peak gauge\n",
        );
        let _ = writeln!(out, "specrecon_queue_depth_peak {queue_peak}");
        out.push_str(
            "# HELP specrecon_queue_capacity Configured queue bound.\n\
             # TYPE specrecon_queue_capacity gauge\n",
        );
        let _ = writeln!(out, "specrecon_queue_capacity {queue_capacity}");

        out.push_str(
            "# HELP specrecon_cache_hits_total Compiled-image cache hits.\n\
             # TYPE specrecon_cache_hits_total counter\n",
        );
        let _ = writeln!(out, "specrecon_cache_hits_total {}", cache.hits);
        out.push_str(
            "# HELP specrecon_cache_misses_total Compiled-image cache misses.\n\
             # TYPE specrecon_cache_misses_total counter\n",
        );
        let _ = writeln!(out, "specrecon_cache_misses_total {}", cache.misses);
        out.push_str(
            "# HELP specrecon_cache_evictions_total Compiled images evicted by the LRU bound.\n\
             # TYPE specrecon_cache_evictions_total counter\n",
        );
        let _ = writeln!(out, "specrecon_cache_evictions_total {}", cache.evictions);
        out.push_str(
            "# HELP specrecon_cache_hit_rate Hit fraction of the compiled-image cache.\n\
             # TYPE specrecon_cache_hit_rate gauge\n",
        );
        let _ = writeln!(out, "specrecon_cache_hit_rate {}", cache.hit_rate());

        out.push_str(
            "# HELP specrecon_sweep_forks_total Sub-cohort forks across all seed sweeps.\n\
             # TYPE specrecon_sweep_forks_total counter\n",
        );
        let _ = writeln!(
            out,
            "specrecon_sweep_forks_total {}",
            self.sweep_forks.load(Ordering::Relaxed)
        );
        out.push_str(
            "# HELP specrecon_sweep_merges_total Sub-cohort merges across all seed sweeps.\n\
             # TYPE specrecon_sweep_merges_total counter\n",
        );
        let _ = writeln!(
            out,
            "specrecon_sweep_merges_total {}",
            self.sweep_merges.load(Ordering::Relaxed)
        );
        out.push_str(
            "# HELP specrecon_sweep_scalar_steps_total Rounds sweeps spent on detached scalar machines (escape hatch).\n\
             # TYPE specrecon_sweep_scalar_steps_total counter\n",
        );
        let _ = writeln!(
            out,
            "specrecon_sweep_scalar_steps_total {}",
            self.sweep_scalar_steps.load(Ordering::Relaxed)
        );
        out.push_str(
            "# HELP specrecon_sweep_mean_occupancy Mean slots per lockstep issue over all sweeps.\n\
             # TYPE specrecon_sweep_mean_occupancy gauge\n",
        );
        let issues = self.sweep_issues.load(Ordering::Relaxed);
        let occ = if issues == 0 {
            0.0
        } else {
            self.sweep_occupancy_sum.load(Ordering::Relaxed) as f64 / issues as f64
        };
        let _ = writeln!(out, "specrecon_sweep_mean_occupancy {occ}");

        for (what, help, counters) in [
            ("hits", "Cache hits", &self.mem_hits),
            ("misses", "Cache misses", &self.mem_misses),
            ("mshr_merges", "Misses merged into an in-flight MSHR entry", &self.mem_mshr_merges),
            ("mshr_stall_cycles", "MSHR penalty cycles", &self.mem_mshr_stalls),
        ] {
            let _ = writeln!(
                out,
                "# HELP specrecon_mem_{what}_total {help}, per memory-hierarchy level.\n\
                 # TYPE specrecon_mem_{what}_total counter"
            );
            for (i, c) in counters.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "specrecon_mem_{what}_total{{level=\"L{}\"}} {}",
                    i + 1,
                    c.load(Ordering::Relaxed)
                );
            }
        }
        out.push_str(
            "# HELP specrecon_mem_dram_accesses_total Global accesses that missed every cache level.\n\
             # TYPE specrecon_mem_dram_accesses_total counter\n",
        );
        let _ = writeln!(
            out,
            "specrecon_mem_dram_accesses_total {}",
            self.mem_dram_accesses.load(Ordering::Relaxed)
        );
        out.push_str(
            "# HELP specrecon_mem_dram_segments_total DRAM segments serviced.\n\
             # TYPE specrecon_mem_dram_segments_total counter\n",
        );
        let _ = writeln!(
            out,
            "specrecon_mem_dram_segments_total {}",
            self.mem_dram_segments.load(Ordering::Relaxed)
        );

        for (name, help, counter) in [
            ("stack_pushes", "IPDOM reconvergence-stack pushes", &self.recon_stack_pushes),
            ("stack_pops", "IPDOM reconvergence-stack pops", &self.recon_stack_pops),
            ("splits", "Warp splits forked", &self.recon_splits),
            ("fusions", "Warp-split re-fusions", &self.recon_fusions),
            (
                "deferrals",
                "Issue slots deferred inside the re-fusion window",
                &self.recon_deferrals,
            ),
        ] {
            let _ = writeln!(
                out,
                "# HELP specrecon_recon_{name}_total {help}, over hardware-reconvergence runs.\n\
                 # TYPE specrecon_recon_{name}_total counter\n\
                 specrecon_recon_{name}_total {}",
                counter.load(Ordering::Relaxed)
            );
        }

        out.push_str(
            "# HELP specrecon_eval_latency_seconds Wall-clock latency of /v1/eval requests.\n\
             # TYPE specrecon_eval_latency_seconds histogram\n",
        );
        let mut cumulative = 0u64;
        for (i, ub) in LATENCY_BUCKETS.iter().enumerate() {
            cumulative += self.latency_buckets[i].load(Ordering::Relaxed);
            let _ =
                writeln!(out, "specrecon_eval_latency_seconds_bucket{{le=\"{ub}\"}} {cumulative}");
        }
        cumulative += self.latency_buckets[LATENCY_BUCKETS.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "specrecon_eval_latency_seconds_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(
            out,
            "specrecon_eval_latency_seconds_sum {}",
            self.latency_sum_us.load(Ordering::Relaxed) as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "specrecon_eval_latency_seconds_count {}",
            self.latency_count.load(Ordering::Relaxed)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_prometheus_shaped() {
        let m = ServerMetrics::default();
        m.record_status(200);
        m.record_status(200);
        m.record_status(503);
        m.record_rejected_full();
        m.record_latency(0.003);
        m.record_latency(0.3);
        m.record_latency(30.0); // lands in +Inf
        let text = m.render(2, 4, 8, CacheStats { hits: 3, misses: 1, evictions: 0, entries: 1 });
        assert!(text.contains("specrecon_requests_total{code=\"200\"} 2"), "{text}");
        assert!(text.contains("specrecon_requests_total{code=\"503\"} 1"), "{text}");
        assert!(text.contains("specrecon_rejected_total{reason=\"queue_full\"} 1"), "{text}");
        assert!(text.contains("specrecon_queue_depth 2"), "{text}");
        assert!(text.contains("specrecon_queue_depth_peak 4"), "{text}");
        assert!(text.contains("specrecon_cache_hit_rate 0.75"), "{text}");
        // Histogram buckets are cumulative and +Inf matches the count.
        assert!(text.contains("specrecon_eval_latency_seconds_bucket{le=\"0.005\"} 1"), "{text}");
        assert!(text.contains("specrecon_eval_latency_seconds_bucket{le=\"0.5\"} 2"), "{text}");
        assert!(text.contains("specrecon_eval_latency_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("specrecon_eval_latency_seconds_count 3"), "{text}");
    }

    #[test]
    fn sweep_counters_accumulate_and_render() {
        let m = ServerMetrics::default();
        let empty = CacheStats { hits: 0, misses: 0, evictions: 0, entries: 0 };
        // Before any sweep, the occupancy gauge must not divide by zero.
        let text = m.render(0, 0, 8, CacheStats { ..empty });
        assert!(text.contains("specrecon_sweep_mean_occupancy 0"), "{text}");
        m.record_sweep(3, 2, 0, 96, 4);
        m.record_sweep(1, 1, 5, 32, 4);
        let text = m.render(0, 0, 8, empty);
        assert!(text.contains("specrecon_sweep_forks_total 4"), "{text}");
        assert!(text.contains("specrecon_sweep_merges_total 3"), "{text}");
        assert!(text.contains("specrecon_sweep_scalar_steps_total 5"), "{text}");
        // (96 + 32) / (4 + 4) = 16 mean slots per issue.
        assert!(text.contains("specrecon_sweep_mean_occupancy 16"), "{text}");
    }

    #[test]
    fn mem_counters_accumulate_and_render() {
        let m = ServerMetrics::default();
        let empty = CacheStats { hits: 0, misses: 0, evictions: 0, entries: 0 };
        m.record_mem(&[[10, 2, 1, 8], [1, 1, 0, 0], [0, 0, 0, 0]], 1, 3);
        m.record_mem(&[[5, 0, 0, 0], [0, 0, 0, 0], [0, 0, 0, 0]], 0, 0);
        let text = m.render(0, 0, 8, empty);
        assert!(text.contains("specrecon_mem_hits_total{level=\"L1\"} 15"), "{text}");
        assert!(text.contains("specrecon_mem_misses_total{level=\"L1\"} 2"), "{text}");
        assert!(text.contains("specrecon_mem_hits_total{level=\"L2\"} 1"), "{text}");
        assert!(text.contains("specrecon_mem_mshr_merges_total{level=\"L1\"} 1"), "{text}");
        assert!(text.contains("specrecon_mem_mshr_stall_cycles_total{level=\"L1\"} 8"), "{text}");
        assert!(text.contains("specrecon_mem_dram_accesses_total 1"), "{text}");
        assert!(text.contains("specrecon_mem_dram_segments_total 3"), "{text}");
    }

    #[test]
    fn recon_counters_accumulate_and_render() {
        let m = ServerMetrics::default();
        let empty = CacheStats { hits: 0, misses: 0, evictions: 0, entries: 0 };
        m.record_recon(4, 4, 0, 0, 0);
        m.record_recon(0, 0, 3, 2, 1);
        let text = m.render(0, 0, 8, empty);
        assert!(text.contains("specrecon_recon_stack_pushes_total 4"), "{text}");
        assert!(text.contains("specrecon_recon_stack_pops_total 4"), "{text}");
        assert!(text.contains("specrecon_recon_splits_total 3"), "{text}");
        assert!(text.contains("specrecon_recon_fusions_total 2"), "{text}");
        assert!(text.contains("specrecon_recon_deferrals_total 1"), "{text}");
    }

    #[test]
    fn ok_count_tracks_2xx() {
        let m = ServerMetrics::default();
        assert_eq!(m.ok_count(), 0);
        m.record_status(200);
        m.record_status(404);
        assert_eq!(m.ok_count(), 1);
    }
}
