//! A deliberately small HTTP/1.1 subset: enough for the eval service and
//! its load generator, nothing more.
//!
//! Supported: request line + headers + `Content-Length` bodies,
//! keep-alive (the HTTP/1.1 default) and `Connection: close`, and
//! responses with a fixed header set. Not supported: chunked encoding,
//! trailers, pipelining beyond one in-flight request per connection,
//! TLS. Limits guard the parser: oversized request heads or bodies are
//! rejected before buffering them.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body; kernels are text, so this is generous.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query string included, if any).
    pub path: String,
    /// Headers as `(lowercased-name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange. `Connection` is a comma-separated token list (RFC 9110
    /// §7.6.1), so `close` must be matched as a token — clients send
    /// values like `keep-alive, close` or `close, TE`.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.split(',').any(|token| token.trim().eq_ignore_ascii_case("close")))
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request.
    Eof,
    /// The read timed out (the stream has a read timeout configured).
    TimedOut,
    /// The bytes were not a parseable HTTP request.
    Malformed(String),
    /// Request head or body exceeded the configured limits.
    TooLarge(&'static str),
    /// Underlying transport error.
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Eof => write!(f, "connection closed"),
            ReadError::TimedOut => write!(f, "read timed out"),
            ReadError::Malformed(m) => write!(f, "malformed request: {m}"),
            ReadError::TooLarge(what) => write!(f, "{what} too large"),
            ReadError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

/// Reads one request from a buffered stream.
///
/// A read timeout on the underlying socket surfaces as
/// [`ReadError::TimedOut`] — the server's connection loop uses that as
/// its shutdown poll point.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let mut head = Vec::new();
    // Read byte-wise until the blank line; BufReader makes this cheap,
    // and it never over-reads into the body.
    loop {
        let mut line = Vec::new();
        match read_line(reader, &mut line, MAX_HEAD_BYTES) {
            Ok(()) => {}
            // A timeout on an idle connection (nothing consumed yet) is
            // the server's shutdown poll point; a timeout mid-request
            // leaves the parser desynchronized, so the connection must
            // be torn down instead of re-parsed.
            Err(ReadError::TimedOut) if head.is_empty() && line.is_empty() => {
                return Err(ReadError::TimedOut)
            }
            Err(ReadError::TimedOut) => {
                return Err(ReadError::Malformed("stalled mid-request".into()))
            }
            Err(e) => return Err(e),
        }
        if head.is_empty() && line.is_empty() {
            return Err(ReadError::Eof);
        }
        if line.is_empty() || line == b"\r" {
            break;
        }
        if head.len() + line.len() > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge("request head"));
        }
        head.extend_from_slice(&line);
        head.push(b'\n');
    }
    let head = String::from_utf8(head)
        .map_err(|_| ReadError::Malformed("non-utf8 request head".into()))?;
    let mut lines = head.lines();
    let request_line = lines.next().ok_or_else(|| ReadError::Malformed("empty head".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let path = parts.next().ok_or_else(|| ReadError::Malformed("missing path".into()))?.to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("unsupported version {version}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| ReadError::Malformed("bad content-length".into()))?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge("request body"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| match io_to_read_error(e) {
        ReadError::TimedOut => ReadError::Malformed("stalled mid-body".into()),
        other => other,
    })?;

    Ok(Request { method, path, headers, body })
}

/// Reads one `\n`-terminated line (terminator stripped) with a length cap.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    out: &mut Vec<u8>,
    cap: usize,
) -> Result<(), ReadError> {
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) => return Err(io_to_read_error(e)),
        };
        if available.is_empty() {
            // EOF: a partial line is malformed, a clean boundary is EOF
            // (signalled by the caller seeing an empty first line).
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                out.extend_from_slice(&available[..i]);
                reader.consume(i + 1);
                if out.last() == Some(&b'\r') {
                    out.pop();
                }
                return Ok(());
            }
            None => {
                out.extend_from_slice(available);
                let n = available.len();
                reader.consume(n);
                if out.len() > cap {
                    return Err(ReadError::TooLarge("request head"));
                }
            }
        }
    }
}

fn io_to_read_error(e: io::Error) -> ReadError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ReadError::TimedOut,
        io::ErrorKind::UnexpectedEof => ReadError::Eof,
        _ => ReadError::Io(e),
    }
}

/// An HTTP response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the standard set.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with the given status and a JSON body.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into_bytes(),
        }
    }

    /// A response with the given status and a plain-text body.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serializes the response to `stream`, flushing it. `close` emits
    /// `Connection: close`; otherwise keep-alive is advertised.
    pub fn write(&self, stream: &mut TcpStream, close: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.body.len(),
            if close { "close" } else { "keep-alive" }
        );
        for (k, v) in &self.headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        // One write per response: splitting head and body into separate
        // small segments triggers Nagle + delayed-ACK stalls (~40ms per
        // round trip) on loopback keep-alive connections.
        let mut frame = head.into_bytes();
        frame.extend_from_slice(&self.body);
        stream.write_all(&frame)?;
        stream.flush()
    }
}

/// Canonical reason phrases for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips a raw request string through a real socket pair.
    fn parse_raw(raw: &str) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw.as_bytes()).unwrap();
        drop(client);
        let (server_side, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(server_side);
        read_request(&mut reader)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse_raw("POST /v1/eval HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/eval");
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_get_without_body_and_connection_close() {
        let req = parse_raw("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn connection_header_is_a_token_list() {
        // `close` anywhere in the comma-separated list means close...
        for value in ["close", "Close", " close ", "keep-alive, close", "close, TE", "te,close"] {
            let req = parse_raw(&format!("GET / HTTP/1.1\r\nConnection: {value}\r\n\r\n")).unwrap();
            assert!(req.wants_close(), "Connection: {value:?} must close");
        }
        // ...but `close` as a substring of another token does not.
        for value in ["keep-alive", "closed", "not-close", "upgrade"] {
            let req = parse_raw(&format!("GET / HTTP/1.1\r\nConnection: {value}\r\n\r\n")).unwrap();
            assert!(!req.wants_close(), "Connection: {value:?} must keep alive");
        }
    }

    #[test]
    fn empty_connection_is_eof_and_garbage_is_malformed() {
        assert!(matches!(parse_raw(""), Err(ReadError::Eof)));
        assert!(matches!(parse_raw("NOT-HTTP\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(parse_raw("GET / HTTP/2.0\r\n\r\n"), Err(ReadError::Malformed(_))));
    }

    #[test]
    fn oversized_body_is_rejected_without_buffering() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse_raw(&raw), Err(ReadError::TooLarge(_))));
    }

    #[test]
    fn response_serialization_is_parseable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        Response::json(200, "{\"ok\":true}".into())
            .with_header("Retry-After", "1")
            .write(&mut server_side, true)
            .unwrap();
        drop(server_side);
        let mut text = String::new();
        BufReader::new(client).read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
