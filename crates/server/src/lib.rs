//! A threaded HTTP evaluation service for the speculative-reconvergence
//! simulator, plus its load-generator client.
//!
//! `specrecon serve` exposes the [`workloads::Engine`] batch evaluator
//! over a small hand-rolled HTTP/1.1 + JSON surface (the workspace has
//! a no-new-dependencies rule, so there is no hyper/serde here):
//!
//! - `POST /v1/eval` — evaluate a named workload or an inline kernel
//!   module under a chosen scheduling policy / SR variant, returning
//!   per-seed metrics JSON. See [`api`] for the request schema.
//! - `GET /healthz` — liveness (`ok` / `draining`).
//! - `GET /metrics` — Prometheus text exposition: request counts by
//!   status, queue depth/peak, latency histogram, compiled-image cache
//!   hit rate.
//!
//! The service is built from small, separately tested parts:
//!
//! | module      | role                                                |
//! |-------------|-----------------------------------------------------|
//! | [`http`]    | minimal HTTP/1.1 framing (requests and responses)   |
//! | [`json`]    | parse/render for the API payloads                   |
//! | [`queue`]   | bounded MPMC work queue — admission == acceptance   |
//! | [`metrics`] | atomic counters + Prometheus rendering              |
//! | [`signal`]  | SIGINT/SIGTERM → atomic flag, no crates             |
//! | [`api`]     | request validation and engine invocation            |
//! | [`server`]  | accept loop, worker pool, deadlines, graceful drain |
//! | [`loadgen`] | closed-loop benchmark client (`specrecon loadgen`)  |
//!
//! ## Backpressure and shutdown contract
//!
//! A request is *accepted* exactly when it is admitted to the bounded
//! queue. A full queue answers `503` with `Retry-After` immediately;
//! once shutdown begins, new work gets `503` while everything already
//! accepted is drained to completion (or its deadline) before the
//! process exits. Deadlines cancel in-flight simulation cooperatively
//! via [`simt_sim::CancelToken`]. `docs/SERVING.md` is the operator-
//! facing version of this contract.

#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod signal;

pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use server::{DrainReport, ServeConfig, Server, ServerHandle};
