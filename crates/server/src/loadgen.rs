//! `specrecon loadgen` — a closed-loop load generator for the eval
//! service.
//!
//! Drives `connections` concurrent keep-alive connections, each issuing
//! `requests` sequential `POST /v1/eval` calls, and reports throughput
//! plus a latency histogram. Closed-loop means each connection waits
//! for its response before sending the next request — throughput is
//! `completed / wall-clock`, the number the CI smoke gate checks.

use crate::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Load-generator configuration (the `specrecon loadgen` flags).
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:8077`.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Requests per connection.
    pub requests: usize,
    /// Workload name sent in each request.
    pub workload: String,
    /// Warps per launch.
    pub warps: usize,
    /// Per-request deadline forwarded to the server.
    pub deadline_ms: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8077".into(),
            connections: 4,
            requests: 25,
            workload: "microbench".into(),
            warps: 1,
            deadline_ms: 10_000,
        }
    }
}

/// Outcome counts and latency distribution of one loadgen run.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Requests answered 2xx.
    pub ok: u64,
    /// Requests shed with 503 (backpressure).
    pub rejected: u64,
    /// Requests answered 504 (deadline).
    pub timed_out: u64,
    /// Any other status, transport errors included.
    pub failed: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Latencies of 2xx requests, microseconds, unsorted.
    pub latencies_us: Vec<u64>,
}

impl LoadgenReport {
    /// Completed requests (anything that got an HTTP answer).
    pub fn completed(&self) -> u64 {
        self.ok + self.rejected + self.timed_out
    }

    /// 2xx requests per second over the run.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.ok as f64 / secs
        } else {
            0.0
        }
    }

    /// Latency percentile over the 2xx population, in microseconds.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Human-readable summary (what the CLI prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "loadgen: {} ok, {} rejected (503), {} deadline (504), {} failed in {:.2}s",
            self.ok,
            self.rejected,
            self.timed_out,
            self.failed,
            self.elapsed.as_secs_f64()
        );
        let _ = writeln!(out, "throughput: {:.1} req/s (2xx only)", self.throughput());
        if !self.latencies_us.is_empty() {
            let _ = writeln!(
                out,
                "latency: p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms  max {:.2}ms",
                self.percentile_us(50.0) as f64 / 1e3,
                self.percentile_us(90.0) as f64 / 1e3,
                self.percentile_us(99.0) as f64 / 1e3,
                self.latencies_us.iter().max().copied().unwrap_or(0) as f64 / 1e3,
            );
            let _ = writeln!(out, "histogram (2xx):\n{}", self.histogram(8));
        }
        out
    }

    /// A log-ish text histogram of 2xx latencies.
    fn histogram(&self, rows: usize) -> String {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let (min, max) = (sorted[0].max(1), *sorted.last().unwrap());
        let mut out = String::new();
        use std::fmt::Write as _;
        // Geometric buckets covering [min, max]; the last bucket's upper
        // edge is nudged up so rounding can't drop the max sample.
        let ratio = (max as f64 / min as f64).powf(1.0 / rows as f64).max(1.0001);
        let mut lo = min as f64 * 0.999;
        for row in 0..rows {
            let hi = if row + 1 == rows {
                max as f64 * 1.001
            } else {
                min as f64 * ratio.powi(row as i32 + 1)
            };
            let count = sorted.iter().filter(|&&v| (v as f64) > lo && (v as f64) <= hi).count();
            let bar = "#".repeat((count * 40 / sorted.len().max(1)).max(usize::from(count > 0)));
            let _ = writeln!(out, "  {:>9.2}ms {:>6} {}", hi / 1e3, count, bar);
            lo = hi;
        }
        out
    }
}

/// Runs the load, returning the merged report.
///
/// # Errors
///
/// Only setup failures (unresolvable address, zero connections); per-
/// request failures are counted in the report instead.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if cfg.connections == 0 || cfg.requests == 0 {
        return Err("loadgen needs at least one connection and one request".into());
    }
    let body = Json::Obj(vec![
        ("workload".into(), Json::str(cfg.workload.clone())),
        ("warps".into(), Json::u64(cfg.warps as u64)),
        ("deadline_ms".into(), Json::u64(cfg.deadline_ms)),
    ])
    .render();

    let started = Instant::now();
    let reports: Vec<LoadgenReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.connections)
            .map(|_| s.spawn(|| drive_connection(&cfg.addr, &body, cfg.requests)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen thread panicked")).collect()
    });

    let mut merged = LoadgenReport::default();
    for r in reports {
        merged.ok += r.ok;
        merged.rejected += r.rejected;
        merged.timed_out += r.timed_out;
        merged.failed += r.failed;
        merged.latencies_us.extend(r.latencies_us);
    }
    merged.elapsed = started.elapsed();
    Ok(merged)
}

/// One connection's closed loop. Transport errors mark the remaining
/// requests failed (the server may be draining).
fn drive_connection(addr: &str, body: &str, requests: usize) -> LoadgenReport {
    let mut report = LoadgenReport::default();
    let mut stream: Option<TcpStream> = None;
    for _ in 0..requests {
        // (Re)connect lazily; a dropped keep-alive reconnects once per
        // request at most.
        if stream.is_none() {
            stream = TcpStream::connect(addr).ok();
            if let Some(s) = &stream {
                // Small latency-bound exchanges: disable Nagle.
                let _ = s.set_nodelay(true);
            }
        }
        let Some(s) = stream.as_mut() else {
            report.failed += 1;
            continue;
        };
        let t0 = Instant::now();
        match exchange(s, body) {
            Ok(status) => {
                match status {
                    200..=299 => {
                        report.ok += 1;
                        report.latencies_us.push(t0.elapsed().as_micros() as u64);
                    }
                    503 => report.rejected += 1,
                    504 => report.timed_out += 1,
                    _ => report.failed += 1,
                }
                if status == 503 {
                    // Honor backpressure: brief pause before retrying the
                    // connection's next request.
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
            Err(_) => {
                report.failed += 1;
                stream = None;
            }
        }
    }
    report
}

/// Sends one request and reads one response; returns the status code.
fn exchange(stream: &mut TcpStream, body: &str) -> Result<u16, String> {
    // One write per request (see the matching note in `http::Response::
    // write`): split writes stall on Nagle + delayed ACK.
    let frame = format!(
        "POST /v1/eval HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(frame.as_bytes()).map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())?;
    read_status(stream)
}

/// Reads one HTTP response off the stream (status line + headers +
/// `Content-Length` body), returning the status.
pub fn read_status(stream: &mut TcpStream) -> Result<u16, String> {
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {line:?}"))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|e| e.to_string())?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().map_err(|_| "bad content-length")?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    // Drain nothing further: the BufReader is dropped, but because the
    // response was fully consumed the underlying stream is positioned at
    // the next response boundary.
    Ok(status)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_math() {
        let r = LoadgenReport {
            ok: 8,
            rejected: 1,
            timed_out: 1,
            failed: 0,
            elapsed: Duration::from_secs(2),
            latencies_us: vec![1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000],
        };
        assert_eq!(r.completed(), 10);
        assert!((r.throughput() - 4.0).abs() < 1e-9);
        assert_eq!(r.percentile_us(50.0), 5000);
        assert_eq!(r.percentile_us(100.0), 8000);
        let text = r.render();
        assert!(text.contains("8 ok"));
        assert!(text.contains("req/s"));
    }

    #[test]
    fn zero_connections_is_a_setup_error() {
        let cfg = LoadgenConfig { connections: 0, ..LoadgenConfig::default() };
        assert!(run(&cfg).is_err());
    }
}
