//! The batch engine must be bit-deterministic: for every registry
//! workload, running with one worker and with many workers must produce
//! byte-identical metrics and final memory. Parallelism may only change
//! wall-clock, never results.

use simt_sim::SimConfig;
use specrecon_core::CompileOptions;
use workloads::eval::{with_warps, Engine, EvalJob};
use workloads::registry;

fn jobs_for(opts: CompileOptions) -> Vec<EvalJob> {
    registry()
        .iter()
        .map(|w| EvalJob::new(with_warps(w, 2), opts.clone(), SimConfig::default()))
        .collect()
}

#[test]
fn batch_results_are_identical_for_any_worker_count() {
    for opts in [CompileOptions::baseline(), CompileOptions::speculative()] {
        let jobs = jobs_for(opts);
        let sequential = Engine::new(1).run_batch(&jobs);
        assert_eq!(sequential.len(), jobs.len());
        for n in [2, 4, 8] {
            let parallel = Engine::new(n).run_batch(&jobs);
            assert_eq!(sequential.len(), parallel.len());
            for ((s, p), job) in sequential.iter().zip(&parallel).zip(&jobs) {
                let (s_summary, s_mem) = s.as_ref().expect("sequential run succeeded");
                let (p_summary, p_mem) = p.as_ref().expect("parallel run succeeded");
                assert_eq!(
                    s_summary, p_summary,
                    "{}: metrics digest diverged at {n} workers",
                    job.workload.name
                );
                assert_eq!(
                    s_mem, p_mem,
                    "{}: final memory diverged at {n} workers",
                    job.workload.name
                );
            }
        }
    }
}

#[test]
fn full_metrics_are_identical_across_engines() {
    // Beyond the digest: the complete Metrics struct (stall cycles, cache
    // counters, per-warp breakdowns) must match between independent
    // engines, proving the cache and worker pool leak no state into runs.
    let cfg = SimConfig::default();
    let a = Engine::new(1);
    let b = Engine::new(4);
    for w in registry() {
        let w = with_warps(&w, 2);
        let out_a = a.run_full(&w, &CompileOptions::speculative(), &cfg).expect("runs");
        let out_b = b.run_full(&w, &CompileOptions::speculative(), &cfg).expect("runs");
        assert_eq!(out_a.metrics, out_b.metrics, "{}", w.name);
        assert_eq!(out_a.global_mem, out_b.global_mem, "{}", w.name);
    }
}

#[test]
fn cache_hits_do_not_change_results() {
    // Two runs through one engine: the second hits the image cache; both
    // must equal a run through a fresh engine.
    let cfg = SimConfig::default();
    let engine = Engine::new(2);
    let w = with_warps(&registry().remove(0), 2);
    let first = engine.run_config(&w, &CompileOptions::speculative(), &cfg).expect("runs");
    let second = engine.run_config(&w, &CompileOptions::speculative(), &cfg).expect("runs");
    let fresh = Engine::new(1).run_config(&w, &CompileOptions::speculative(), &cfg).expect("runs");
    assert_eq!(first, second);
    assert_eq!(first, fresh);
}
