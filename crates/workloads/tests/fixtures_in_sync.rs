//! The committed `examples/kernels/*.sr` fixtures must stay in sync with
//! the workload generators (regenerate with
//! `cargo run -p specrecon-bench --bin dump-kernels`).

use simt_ir::parse_module;
use workloads::{microbench, registry};

#[test]
fn kernel_fixtures_match_generators() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/kernels");
    let mut all = registry();
    all.push(microbench::build_common_call(&microbench::Params::default()));
    all.push(microbench::build_fig2a(&microbench::Fig2Params::default()));
    all.push(microbench::build_fig2b(&microbench::Fig2Params::default()));
    for w in all {
        let path = dir.join(format!("{}.sr", w.name.replace('-', "_")));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("{}: fixture missing ({e}); run dump-kernels", path.display())
        });
        let parsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("{}: fixture does not parse: {e}", path.display()));
        assert_eq!(parsed, w.module, "{}: fixture out of date; rerun dump-kernels", w.name);
    }
}
