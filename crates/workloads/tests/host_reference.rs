//! Host-reference validation: independent Rust reimplementations of the
//! deterministic workload kernels (MeiyaMD5's digest search, MUMmer's
//! match counting, RSBench's task→material mapping), checked cell-by-cell
//! against the memory the simulated IR kernels produce. This pins down
//! that the IR programs compute what their rustdoc claims — not just that
//! they diverge interestingly.

use simt_sim::{run, SimConfig};
use specrecon_core::{compile, CompileOptions};
use workloads::reference::{meiyamd5_digest, mummer_match_length, rsbench_accumulator, MASK32};
use workloads::{meiyamd5, mummer, rsbench};

#[test]
fn meiyamd5_digests_match_host_model() {
    let p = meiyamd5::Params { num_tasks: 64, num_warps: 1, ..meiyamd5::Params::default() };
    let w = meiyamd5::build(&p);
    let compiled = compile(&w.module, &CompileOptions::speculative()).unwrap();
    let out = run(&compiled.module, &SimConfig::default(), &w.launch).unwrap();
    let l = meiyamd5::layout(&p);

    for task in 0..p.num_tasks {
        let best = meiyamd5_digest(&p, task);
        let got = out.global_mem[(l.result_base + task) as usize].as_i64();
        assert_eq!(got, best, "task {task}: digest mismatch");
    }
}

#[test]
fn mummer_match_lengths_match_host_model() {
    let p = mummer::Params { num_queries: 64, num_warps: 1, ..mummer::Params::default() };
    let w = mummer::build(&p);
    let compiled = compile(&w.module, &CompileOptions::speculative()).unwrap();
    let out = run(&compiled.module, &SimConfig::default(), &w.launch).unwrap();
    let l = mummer::layout(&p);

    // The reference sequence as the launch built it.
    let ref_seq: Vec<i64> = (0..p.ref_len as usize)
        .map(|i| out.global_mem[(l.ref_base as usize) + i].as_i64())
        .collect();

    for task in 0..p.num_queries {
        let matched = mummer_match_length(&p, &ref_seq, task);
        let got = out.global_mem[(l.result_base + task) as usize].as_i64();
        assert_eq!(got, matched, "task {task}: match length mismatch");
    }
}

#[test]
fn rsbench_accumulators_match_host_model() {
    let p = rsbench::Params { num_tasks: 48, num_warps: 1, ..rsbench::Params::default() };
    let w = rsbench::build(&p);
    let compiled = compile(&w.module, &CompileOptions::speculative()).unwrap();
    let out = run(&compiled.module, &SimConfig::default(), &w.launch).unwrap();
    let l = rsbench::layout(&p);

    let data: Vec<f64> = (0..p.data_len as usize)
        .map(|i| out.global_mem[(l.data_base as usize) + i].as_f64())
        .collect();

    for task in 0..p.num_tasks {
        let acc = rsbench_accumulator(&p, &data, task);
        let got = out.global_mem[(l.result_base + task) as usize].as_f64();
        assert!((got - acc).abs() < 1e-9 * (1.0 + acc.abs()), "task {task}: {got} vs host {acc}");
    }
}

#[test]
fn host_models_agree_across_compilations() {
    // The reference checks above ran against the speculative build; the
    // baseline build must produce the same cells (already asserted
    // elsewhere via compare(), re-checked here through the host model for
    // one workload).
    let p = meiyamd5::Params { num_tasks: 32, num_warps: 1, ..meiyamd5::Params::default() };
    let w = meiyamd5::build(&p);
    let l = meiyamd5::layout(&p);
    let base = compile(&w.module, &CompileOptions::baseline()).unwrap();
    let out = run(&base.module, &SimConfig::default(), &w.launch).unwrap();
    for task in 0..p.num_tasks {
        let got = out.global_mem[(l.result_base + task) as usize].as_i64();
        assert!((0..=MASK32).contains(&got));
    }
}
