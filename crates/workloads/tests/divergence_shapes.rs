//! Distribution checks: each workload's divergence profile actually has
//! the shape its Table-2 description claims (trip-count spreads, branch
//! probabilities, load imbalance). These catch silent parameter drift that
//! would invalidate the figure reproductions.

use simt_ir::Value;
use simt_sim::{run, SimConfig};
use specrecon_core::{compile, CompileOptions};
use workloads::{gpumcml, mcb, meiyamd5, mummer, pathtracer, rsbench};

use workloads::reference::hash as host_hash;

#[test]
fn rsbench_materials_cover_the_4_to_321_range() {
    // Over a reasonable task count, the hash-based material pick must hit
    // both the 321-nuclide and the single-digit-nuclide materials — the
    // paper's "4 to 321 iterations per thread".
    let p = rsbench::Params::default();
    let mut counts_seen = std::collections::HashSet::new();
    for task in 0..p.num_tasks {
        let mat = host_hash(task) % rsbench::NUCLIDE_COUNTS.len() as i64;
        counts_seen.insert(rsbench::NUCLIDE_COUNTS[mat as usize]);
    }
    assert!(counts_seen.contains(&321), "the heavy material must occur");
    assert!(counts_seen.contains(&9), "a light material must occur");
    assert!(counts_seen.len() >= 10, "most materials sampled: {counts_seen:?}");
}

#[test]
fn meiyamd5_batch_sizes_are_heavily_imbalanced() {
    let p = meiyamd5::Params::default();
    let sizes: Vec<i64> = (0..p.num_tasks)
        .map(|t| {
            let m0 = host_hash(t) % p.max_candidates;
            (m0 * m0) / p.max_candidates + 1
        })
        .collect();
    let max = *sizes.iter().max().unwrap();
    let mean = sizes.iter().sum::<i64>() as f64 / sizes.len() as f64;
    assert!(max as f64 > 2.5 * mean, "quadratic skew expected: max {max} vs mean {mean:.1}");
}

#[test]
fn mummer_query_lengths_span_and_skew() {
    let p = mummer::Params::default();
    let lens: Vec<i64> = (0..p.num_queries)
        .map(|t| {
            let q0 = host_hash(t) % (p.max_query_len - 4);
            (q0 * q0) / (p.max_query_len - 4) + 4
        })
        .collect();
    let min = *lens.iter().min().unwrap();
    let max = *lens.iter().max().unwrap();
    assert!(min >= 4);
    assert!(max > p.max_query_len / 2, "long reads present: max {max}");
    let mean = lens.iter().sum::<i64>() as f64 / lens.len() as f64;
    assert!(mean < 0.6 * max as f64, "skewed toward short reads: mean {mean:.1}, max {max}");
}

#[test]
fn pathtracer_bounce_depths_look_geometric() {
    // Run the kernel and read per-sample radiance as a bounce-count proxy
    // is fragile; instead re-derive bounce statistics from the step
    // output of gpu-mcml-style counting — here we re-run pathtracer with
    // a tiny scale and check termination spread via cycles shape:
    // geometric roulette must yield wide variance in baseline efficiency.
    let p = pathtracer::Params { num_samples: 128, num_warps: 1, ..pathtracer::Params::default() };
    let w = pathtracer::build(&p);
    let compiled = compile(&w.module, &CompileOptions::baseline()).unwrap();
    let out = run(&compiled.module, &SimConfig::default(), &w.launch).unwrap();
    let eff = out.metrics.simt_efficiency();
    assert!(
        (0.15..0.75).contains(&eff),
        "roulette termination should leave mid-range baseline efficiency, got {eff}"
    );
}

#[test]
fn gpumcml_step_counts_have_wide_spread() {
    let p = gpumcml::Params { num_photons: 128, num_warps: 1, ..gpumcml::Params::default() };
    let w = gpumcml::build(&p);
    let compiled = compile(&w.module, &CompileOptions::baseline()).unwrap();
    let out = run(&compiled.module, &SimConfig::default(), &w.launch).unwrap();
    let l = gpumcml::layout(&p);
    let steps: Vec<i64> = (0..p.num_photons as usize)
        .map(|t| out.global_mem[(l.result_base as usize) + t].as_i64())
        .collect();
    let min = *steps.iter().min().unwrap();
    let max = *steps.iter().max().unwrap();
    assert!(min >= 1, "every photon takes at least one step");
    assert!(max >= 2 * min.max(1), "lifetimes vary: {min}..{max}");
    assert!(max <= p.max_steps, "cap respected");
}

#[test]
fn mcb_tallies_are_positive_and_varied() {
    let p = mcb::Params { num_particles: 128, num_warps: 1, ..mcb::Params::default() };
    let w = mcb::build(&p);
    let compiled = compile(&w.module, &CompileOptions::baseline()).unwrap();
    let out = run(&compiled.module, &SimConfig::default(), &w.launch).unwrap();
    let l = mcb::layout(&p);
    let tallies: Vec<f64> = (0..p.num_particles as usize)
        .map(|t| out.global_mem[(l.result_base as usize) + t].as_f64())
        .collect();
    assert!(tallies.iter().all(|&t| t > 0.0), "free flight always accumulates");
    let distinct: std::collections::HashSet<u64> = tallies.iter().map(|t| t.to_bits()).collect();
    assert!(distinct.len() > 100, "tallies should be distinct per particle");
}

#[test]
fn seeds_change_monte_carlo_outputs_but_not_table_driven_ones() {
    // rsbench is fully table/hash-driven: different launch seeds leave
    // results identical. mcb is RNG-driven per task (seeded by task id),
    // so its results are ALSO seed-independent — the launch seed only
    // affects pre-seed draws, of which our kernels have none. Verify both,
    // documenting the counter-based design.
    let pr = rsbench::Params { num_tasks: 48, num_warps: 1, ..rsbench::Params::default() };
    let wr = rsbench::build(&pr);
    let compiled = compile(&wr.module, &CompileOptions::baseline()).unwrap();
    let mut l1 = wr.launch.clone();
    l1.seed = 1;
    let mut l2 = wr.launch.clone();
    l2.seed = 2;
    let cfg = SimConfig::default();
    let a = run(&compiled.module, &cfg, &l1).unwrap().global_mem;
    let b = run(&compiled.module, &cfg, &l2).unwrap().global_mem;
    assert_eq!(a, b, "table-driven workload must be launch-seed independent");

    let pm = mcb::Params { num_particles: 48, num_warps: 1, ..mcb::Params::default() };
    let wm = mcb::build(&pm);
    let compiled = compile(&wm.module, &CompileOptions::baseline()).unwrap();
    let mut l1 = wm.launch.clone();
    l1.seed = 1;
    let mut l2 = wm.launch.clone();
    l2.seed = 2;
    let a = run(&compiled.module, &cfg, &l1).unwrap().global_mem;
    let b = run(&compiled.module, &cfg, &l2).unwrap().global_mem;
    assert_eq!(a, b, "task-seeded RNG makes results launch-seed independent");
    let _ = Value::I64(0);
}
