//! Hardware-resource check: every Table-2 workload (and the Fig. 2(c)
//! microbenchmark), compiled with the full speculative pipeline *and*
//! barrier register allocation, fits within Volta's 16 barrier registers
//! — and allocation never changes kernel results.

use simt_sim::{run, SimConfig};
use specrecon_core::{compile, CompileOptions, VOLTA_BARRIER_REGISTERS};
use workloads::{eval::with_warps, microbench, registry};

#[test]
fn all_workloads_fit_in_volta_barrier_registers() {
    let alloc_opts = CompileOptions {
        barrier_allocation: true,
        barrier_limit: Some(VOLTA_BARRIER_REGISTERS),
        ..CompileOptions::speculative()
    };
    let cfg = SimConfig::default();

    let mut all = registry();
    all.push(microbench::build_common_call(&microbench::Params::default()));
    for w in all {
        let w = with_warps(&w, 1);
        let plain = compile(&w.module, &CompileOptions::speculative())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let allocated =
            compile(&w.module, &alloc_opts).unwrap_or_else(|e| panic!("{}: {e}", w.name));

        let a = allocated.barrier_alloc.as_ref().expect("allocation ran");
        assert!(a.after <= VOLTA_BARRIER_REGISTERS, "{}: {} registers", w.name, a.after);
        assert!(a.after <= a.before);

        let a =
            run(&plain.module, &cfg, &w.launch).unwrap_or_else(|e| panic!("{} plain: {e}", w.name));
        let b = run(&allocated.module, &cfg, &w.launch)
            .unwrap_or_else(|e| panic!("{} allocated: {e}", w.name));
        assert_eq!(a.global_mem, b.global_mem, "{}: allocation changed results", w.name);
        assert_eq!(a.metrics.cycles, b.metrics.cycles, "{}: allocation changed timing", w.name);
    }
}
