//! Every workload module (annotations included) survives a print→parse
//! round trip: the textual IR is a complete serialization of the suite.

use simt_ir::parse_and_link;
use workloads::{microbench, registry};

#[test]
fn all_workloads_round_trip_through_text() {
    let mut all = registry();
    all.push(microbench::build_common_call(&microbench::Params::default()));
    for w in all {
        let printed = w.module.to_string();
        let reparsed = parse_and_link(&printed)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{printed}", w.name));
        assert_eq!(w.module, reparsed, "{}: round trip changed the module", w.name);
    }
}

#[test]
fn compiled_workloads_round_trip_too() {
    use specrecon_core::{compile, CompileOptions};
    for w in registry().into_iter().take(3) {
        let compiled = compile(&w.module, &CompileOptions::speculative()).unwrap();
        let printed = compiled.module.to_string();
        let reparsed =
            parse_and_link(&printed).unwrap_or_else(|e| panic!("{}: reparse failed: {e}", w.name));
        assert_eq!(compiled.module, reparsed, "{}", w.name);
    }
}
