//! Seed-storm: a seed-divergent sweep stressor.
//!
//! Promoted from the shapes the `sweep_differential` conformance genome
//! generates most often: *seed-dependent uniform branches*. Each round,
//! every lane draws from its RNG and the warp votes; the vote count is
//! warp-uniform but a pure function of the launch seed, so under a seed
//! sweep whole instances disagree on the branch on nearly every round.
//! This is the worst case for a lockstep sweep with a scalar fallback —
//! the old engine spent most of its time replaying minority seeds on
//! scalar machines — and the best case for masked sub-cohort forking,
//! which keeps each disagreeing class executing SIMD-style under its
//! own slot mask and merges the sub-cohorts back at every join.
//!
//! Two deliberate design points:
//!
//! - The arms are *cost*-symmetric (identical opcode sequences over
//!   different operands): sub-cohorts can only merge when their clocks
//!   and control planes agree, which is also exactly when the old
//!   engine could rejoin a detached scalar — so the workload isolates
//!   the masked-vs-scalar difference rather than changing which
//!   reconvergences are possible.
//! - One branch per warp per round: each warp votes independently, so a
//!   cohort splits into (at most) 2^warps classes per round and merges
//!   back at the join. Nesting branches would *multiply* per-warp path
//!   counts past [`MAX_SUBCOHORTS`](simt_sim::sweep::MAX_SUBCOHORTS)
//!   and turn the measurement into a cap benchmark; nested-divergence
//!   coverage lives in the conformance genome instead.
//!
//! The kernel is *not* part of [`registry`](crate::registry) (that list
//! mirrors Table 2 of the paper); it is exposed as a named workload to
//! the CLI/server the same way the microbenchmark is, and the seed-sweep
//! perf harness measures it alongside the Monte Carlo registry entries
//! (`sweep/seed-storm` in `BENCH_4.json`). Measured with identical
//! probes on the same host, the fork/merge engine runs this kernel at
//! ~1.5x the detach-to-scalar engine it replaced (which burned ~2k
//! scalar-machine rounds per 32-seed sweep here; the fork/merge engine
//! burns none) and ~1.4x the independent per-seed scalar baseline.

use crate::common::{emit_hash, MEM_BASE};
use crate::{DivergencePattern, Workload};
use simt_ir::{BinOp, FuncKind, FunctionBuilder, Module, SpecialValue, Value};
use simt_sim::Launch;

/// Parameters of the seed-storm kernel.
#[derive(Clone, Debug)]
pub struct Params {
    /// Warps in the launch.
    pub num_warps: usize,
    /// Rounds per thread; each round votes on fresh RNG draws, so each
    /// round is a fresh fork/merge cycle for the sweep engine.
    pub rounds: i64,
    /// Synthetic cycles on each (cost-symmetric) arm.
    pub arm_work: u32,
    /// ALU instructions on each arm (beyond the `work` marker). The
    /// arms carry real straight-line instruction count — not just
    /// synthetic `work` cycles — because that is what the sweep engine
    /// amortizes: each masked issue executes once per sub-cohort
    /// instead of once per seed, so the fork/merge win scales with the
    /// instructions between divergence and join.
    pub arm_ops: u32,
    /// RNG seed of the default launch (sweeps override it per slot).
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self { num_warps: 2, rounds: 24, arm_work: 20, arm_ops: 48, seed: 0x5EED_0D1F }
    }
}

/// Emits one cost-symmetric arm: `work`, then `arm_ops` straight-line
/// ALU instructions folding `c` into `acc` (a rotating mul/add/xor
/// chain over arm-specific constants), then a jump to the join block.
/// Both arms run the identical opcode sequence, so both paths through
/// a round burn the same cycles and the engine can merge the forked
/// sub-cohorts at the join.
fn emit_arm(
    b: &mut FunctionBuilder,
    p: &Params,
    acc: simt_ir::Reg,
    c: simt_ir::Reg,
    k1: i64,
    k2: i64,
    join: simt_ir::BlockId,
) {
    b.work(p.arm_work);
    for op in 0..p.arm_ops {
        match op % 3 {
            0 => {
                let t = b.bin(BinOp::Mul, c, k1 + i64::from(op));
                b.bin_into(acc, BinOp::Add, acc, t);
            }
            1 => {
                let m = b.bin(BinOp::Xor, acc, k2 + i64::from(op));
                b.mov_into(acc, m);
            }
            _ => b.bin_into(acc, BinOp::Add, acc, k1 ^ i64::from(op)),
        }
    }
    b.jmp(join);
}

/// Builds the seed-storm workload.
///
/// Per round: every lane draws from its RNG, the warp votes, and the
/// warp-uniform count steers a divergent branch between two
/// cost-symmetric arms. Under a seed sweep the vote count is a pure
/// function of the seed, so whole instances fork apart — and because
/// both paths cost the same, the forks re-merge at the join block
/// every round.
pub fn build(p: &Params) -> Workload {
    let mut b = FunctionBuilder::new("seed_storm", FuncKind::Kernel, 0);
    let tid = b.special(SpecialValue::Tid);
    let h = emit_hash(&mut b, tid);
    let acc = b.mov(h);
    let i = b.mov(0i64);
    let header = b.block("round");
    let heavy = b.block("heavy");
    let light = b.block("light");
    let join = b.block("join");
    let out = b.block("out");
    b.jmp(header);

    b.switch_to(header);
    let u = b.rng_unit();
    let pred = b.bin(BinOp::Lt, u, 0.5f64);
    let count = b.vote(pred);
    // Half the default warp width: the vote count is binomial around
    // this threshold, so the branch is a near-coin-flip per (seed, warp).
    let hot = b.bin(BinOp::Lt, count, 16i64);
    b.br_div(hot, light, heavy);

    b.switch_to(heavy);
    emit_arm(&mut b, p, acc, count, 3, 5, join);
    b.switch_to(light);
    emit_arm(&mut b, p, acc, count, 11, 13, join);

    b.switch_to(join);
    b.bin_into(i, BinOp::Add, i, 1i64);
    let more = b.bin(BinOp::Lt, i, p.rounds);
    b.br_div(more, header, out);

    b.switch_to(out);
    let slot = b.bin(BinOp::Add, tid, MEM_BASE);
    b.store_global(acc, slot);
    b.exit();

    let mut module = Module::new();
    module.add_function(b.finish());
    let mut launch = Launch::new("seed_storm", p.num_warps);
    launch.seed = p.seed;
    launch.global_mem = vec![Value::I64(0); MEM_BASE as usize + p.num_warps * 32];
    Workload {
        name: "seed-storm",
        description: "Seed-divergent sweep stressor promoted from the conformance genome: \
                      vote-uniform RNG branches with cost-symmetric arms, so instances fork \
                      apart and re-merge on every round of a seed sweep.",
        pattern: DivergencePattern::IterationDelay,
        module,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Engine;
    use simt_sim::SimConfig;

    #[test]
    fn sweep_forks_and_remerges_without_scalar_fallback() {
        let w = build(&Params::default());
        let engine = Engine::new(1);
        let out = engine.run_sweep(&w, None, &SimConfig::default(), 0, 32, None).unwrap();
        for run in &out.runs {
            run.result.as_ref().expect("no faults in seed-storm");
        }
        assert!(out.stats.forks > 0, "seeds must disagree on votes: {:?}", out.stats);
        assert!(out.stats.merges > 0, "forked sub-cohorts must re-merge: {:?}", out.stats);
        assert_eq!(out.stats.scalar_steps, 0, "2^warps classes fit the cap: {:?}", out.stats);
        assert!(
            out.stats.mean_occupancy() > 4.0,
            "divergent sweep still runs many slots per issue: {:?}",
            out.stats
        );
    }

    #[test]
    fn kernel_writes_every_thread_slot() {
        let w = build(&Params::default());
        let engine = Engine::new(1);
        let out = engine.run_sweep(&w, None, &SimConfig::default(), 7, 8, None).unwrap();
        let run = out.runs[0].result.as_ref().unwrap();
        let touched =
            run.global_mem.iter().skip(MEM_BASE as usize).filter(|v| **v != Value::I64(0)).count();
        assert!(touched > 32, "most threads accumulate something: {touched}");
    }
}
