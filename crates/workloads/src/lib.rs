//! # workloads — the CGO'20 benchmark suite, in simt-ir
//!
//! Models of the nine applications of Table 2 of *Speculative
//! Reconvergence for Improved SIMT Efficiency*, plus the Figure 2(c)
//! common-function-call microbenchmark and the §5.4 synthetic corpus.
//!
//! The real applications are CUDA programs; what the paper's results
//! depend on is their *divergence structure* — inner-loop trip-count
//! distributions, the cost split between the common code and the
//! prolog/epilog (task refill), and compute-vs-memory balance. Each model
//! here reproduces those properties with seeded randomness and documents
//! its parameters; `DESIGN.md` records the substitution rationale.
//!
//! ```
//! use workloads::{registry, eval};
//! use simt_sim::SimConfig;
//!
//! let workloads = registry();
//! assert_eq!(workloads.len(), 9);
//! let small = eval::with_warps(&workloads[0], 1);
//! let cmp = eval::compare(&small, &SimConfig::default()).unwrap();
//! assert!(cmp.speedup() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod common;
pub mod corpus;
pub mod eval;
pub mod gpumcml;
pub mod mcb;
pub mod mcgpu;
pub mod meiyamd5;
pub mod microbench;
pub mod mummer;
pub mod optix;
pub mod pathtracer;
pub mod reference;
pub mod rsbench;
pub mod seedstorm;
pub mod srad;
pub mod xsbench;

pub use eval::{Engine, EvalJob, Rebind};

use simt_ir::Module;
use simt_sim::Launch;

/// Which §3 divergence pattern a workload exhibits (Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergencePattern {
    /// Divergent condition within a loop (Figure 2(a)).
    IterationDelay,
    /// Loop trip-count divergence (Figure 2(b)).
    LoopMerge,
    /// Common function call across divergent paths (Figure 2(c)).
    CommonFunctionCall,
}

impl std::fmt::Display for DivergencePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivergencePattern::IterationDelay => write!(f, "iteration delay"),
            DivergencePattern::LoopMerge => write!(f, "loop merge"),
            DivergencePattern::CommonFunctionCall => write!(f, "common function call"),
        }
    }
}

/// A ready-to-run benchmark: annotated module plus its default launch.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short name (matches the paper's Table 2).
    pub name: &'static str,
    /// Table-2 description.
    pub description: &'static str,
    /// The divergence pattern the workload exercises.
    pub pattern: DivergencePattern,
    /// The kernel module, carrying its `Predict` annotations.
    pub module: Module,
    /// Default launch (memory tables initialized, seed fixed).
    pub launch: Launch,
}

/// All Table-2 workloads at their default parameters, in the paper's
/// order.
pub fn registry() -> Vec<Workload> {
    vec![
        rsbench::build(&rsbench::Params::default()),
        xsbench::build(&xsbench::Params::default()),
        mcb::build(&mcb::Params::default()),
        pathtracer::build(&pathtracer::Params::default()),
        mcgpu::build(&mcgpu::Params::default()),
        mummer::build(&mummer::Params::default()),
        meiyamd5::build(&meiyamd5::Params::default()),
        optix::build(&optix::Params::default()),
        gpumcml::build(&gpumcml::Params::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_match_table_2() {
        let names: Vec<&str> = registry().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "rsbench",
                "xsbench",
                "mcb",
                "pathtracer",
                "mc-gpu",
                "mummer",
                "meiyamd5",
                "optix",
                "gpu-mcml"
            ]
        );
    }

    #[test]
    fn every_workload_verifies_and_has_predictions() {
        for w in registry() {
            simt_ir::assert_verified(&w.module);
            let kernel = w.module.function_by_name(&w.launch.kernel).expect("kernel exists");
            let f = &w.module.functions[kernel];
            assert!(
                !f.predictions.is_empty(),
                "{}: workloads carry their paper annotation",
                w.name
            );
            assert!(!w.description.is_empty());
        }
    }
}
