//! Host-side reference models of the deterministic workload kernels.
//!
//! These are independent Rust reimplementations of the arithmetic the IR
//! kernels perform — used by the validation tests
//! (`tests/host_reference.rs`) to check the simulated kernels
//! cell-by-cell, and available to downstream users who want ground truth
//! for their own experiments.

use crate::{meiyamd5, mummer, rsbench};

/// Host replica of [`crate::common::emit_hash`]: xorshift-multiply on
/// `i64` with the sign bit cleared.
pub fn hash(x: i64) -> i64 {
    let s1 = ((x as u64) >> 12) as i64;
    let x1 = x ^ s1;
    let m1 = x1.wrapping_mul(0x2545F491);
    let s2 = ((m1 as u64) >> 19) as i64;
    (m1 ^ s2) & i64::MAX
}

/// 32-bit mask used by the MD5 model.
pub const MASK32: i64 = 0xFFFF_FFFF;

/// Host replica of MeiyaMD5's round function:
/// `a = b + rotl(a + F(b,c,d) + x + k, s)` with
/// `F(b,c,d) = (b & c) | (!b & d)`, in 32-bit arithmetic.
pub fn md5_round(a: &mut i64, b: i64, c: i64, d: i64, x: i64, k: i64, s: i64) {
    let f = (b & c) | ((b ^ MASK32) & d);
    let t = a.wrapping_add(f).wrapping_add(x).wrapping_add(k) & MASK32;
    let hi = ((t as u64) << (s as u64 & 63)) as i64;
    let lo = ((t as u64) >> ((32 - s) as u64 & 63)) as i64;
    *a = b.wrapping_add((hi | lo) & MASK32) & MASK32;
}

/// Expected MeiyaMD5 result for one task: the best (max) digest over the
/// task's candidate batch.
pub fn meiyamd5_digest(p: &meiyamd5::Params, task: i64) -> i64 {
    let h = hash(task);
    let m0 = h % p.max_candidates;
    let count = (m0 * m0) / p.max_candidates + 1;
    let mut best: i64 = 0;
    for i in 0..count {
        let x = (i.wrapping_mul(2654435761) ^ h) & MASK32;
        let mut a: i64 = 0x67452301;
        let b: i64 = 0xefcdab89;
        let c: i64 = 0x98badcfe;
        let mut d: i64 = 0x10325476;
        for r in 0..p.rounds {
            md5_round(&mut a, b, c, d, x, 0xd76aa478 + r * 0x1000, 7 + (r % 4) * 5);
            md5_round(&mut d, a, b, c, x, 0xe8c7b756 - r * 0x333, 12);
        }
        best = best.max(a);
    }
    best
}

/// Expected MUMmer match length for one task, given the reference
/// sequence the launch built.
pub fn mummer_match_length(p: &mummer::Params, ref_seq: &[i64], task: i64) -> i64 {
    let h = hash(task);
    let qlen0 = h % (p.max_query_len - 4);
    let qlen = (qlen0 * qlen0) / (p.max_query_len - 4) + 4;
    let start = h % p.ref_len;
    (0..qlen)
        .filter(|&depth| {
            let rsym = ref_seq[((start + depth) % p.ref_len) as usize];
            let qsym = (depth.wrapping_mul(1099087573) ^ h) & 3;
            rsym == qsym
        })
        .count() as i64
}

/// Expected RSBench accumulator for one task, given the cross-section
/// table the launch built.
pub fn rsbench_accumulator(p: &rsbench::Params, data: &[f64], task: i64) -> f64 {
    let h = hash(task);
    let mat = h % rsbench::NUCLIDE_COUNTS.len() as i64;
    let count = rsbench::NUCLIDE_COUNTS[mat as usize];
    (0..count)
        .map(|j| {
            let idx = (mat * 131 + j * 17) % p.data_len;
            let pole = data[idx as usize];
            (pole * pole).sqrt() + 0.5
        })
        .sum()
}

/// The material (index into [`rsbench::NUCLIDE_COUNTS`]) a task draws.
pub fn rsbench_material(task: i64) -> usize {
    (hash(task) % rsbench::NUCLIDE_COUNTS.len() as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_nonnegative_and_spreads() {
        let vals: Vec<i64> = (0..64).map(hash).collect();
        assert!(vals.iter().all(|&v| v >= 0));
        let distinct: std::collections::HashSet<i64> = vals.iter().copied().collect();
        assert!(distinct.len() > 60);
    }

    #[test]
    fn md5_round_stays_in_32_bits() {
        let mut a = 0x67452301;
        md5_round(&mut a, 0xefcdab89, 0x98badcfe, 0x10325476, 0x1234, 0xd76aa478, 7);
        assert!((0..=MASK32).contains(&a));
        // Deterministic.
        let mut a2 = 0x67452301;
        md5_round(&mut a2, 0xefcdab89, 0x98badcfe, 0x10325476, 0x1234, 0xd76aa478, 7);
        assert_eq!(a, a2);
    }

    #[test]
    fn digests_are_deterministic_per_task() {
        let p = crate::meiyamd5::Params::default();
        assert_eq!(meiyamd5_digest(&p, 5), meiyamd5_digest(&p, 5));
        assert_ne!(meiyamd5_digest(&p, 5), meiyamd5_digest(&p, 6));
    }

    #[test]
    fn material_indices_in_range() {
        for t in 0..256 {
            assert!(rsbench_material(t) < crate::rsbench::NUCLIDE_COUNTS.len());
        }
    }
}
