//! SRAD — speckle-reducing anisotropic diffusion (Rodinia).
//!
//! Each lane diffuses one pixel over a fixed number of iterations. Per
//! iteration it reads a neighbor value, then takes a data-dependent
//! branch: ~30% of lanes land on the *clamp* path (the diffusion
//! coefficient left the stable range and the local Laplacian must be
//! recomputed before updating), the rest on the plain *diffuse* path.
//! Both paths then run the same expensive update tail with path-specific
//! coefficients — the unbalanced then/else shape SR cannot repair
//! (the lanes are on *different* paths, so no reconvergence schedule
//! de-duplicates the tail) but control-flow melding can. The `Predict`
//! annotation marks the clamp arm so the SR comparison arm has its best
//! shot at batching the clamp prologue.
//!
//! Not part of the Table-2 [`crate::registry`] (the paper does not
//! evaluate SRAD); addressable by name from the CLI sweep, the eval
//! service, and the figures harness.

use crate::{DivergencePattern, Workload};
use simt_ir::{BinOp, FuncKind, FunctionBuilder, Module, Value};
use simt_sim::Launch;

/// Base of the neighbor-value table in global memory.
const IMAGE_BASE: i64 = 64;

/// Tunable workload size.
#[derive(Clone, Debug)]
pub struct Params {
    /// Diffusion iterations per pixel.
    pub iters: i64,
    /// Warps in the launch.
    pub num_warps: usize,
    /// Probability a lane takes the clamp path each iteration.
    pub clamp_prob: f64,
    /// Synthetic cycles of the shared update tail (runs on both paths).
    pub tail_work: u32,
    /// Synthetic cycles of the clamp-only Laplacian recompute.
    pub clamp_work: u32,
    /// Neighbor-table length.
    pub image_len: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            iters: 24,
            num_warps: 4,
            clamp_prob: 0.3,
            tail_work: 80,
            clamp_work: 40,
            image_len: 512,
            seed: 0x5EED_0010,
        }
    }
}

/// Builds the SRAD workload.
pub fn build(p: &Params) -> Workload {
    let mut b = FunctionBuilder::new("srad", FuncKind::Kernel, 0);
    b.predict_label("clamp", None);

    let tid = b.special(simt_ir::SpecialValue::Tid);
    let i = b.mov(0i64);
    let acc = b.mov(0i64);
    // Shared destinations for the update tail: both arms write the same
    // registers, only their coefficients differ.
    let coef = b.mov(0i64);
    let head = b.block("head");
    let clamp = b.block("clamp");
    let diffuse = b.block("diffuse");
    let next = b.block("next");
    let done = b.block("done");
    b.jmp(head);

    // ---- Loop head: read a neighbor, decide the path ---------------------
    b.switch_to(head);
    let npos0 = b.bin(BinOp::Add, tid, i);
    let npos = b.bin(BinOp::Rem, npos0, p.image_len);
    let naddr = b.bin(BinOp::Add, npos, IMAGE_BASE);
    let neighbor = b.load_global(naddr);
    let u = b.rng_unit();
    let unstable = b.bin(BinOp::Lt, u, p.clamp_prob);
    b.br_div(unstable, clamp, diffuse);

    // ---- Clamp path: Laplacian recompute, then the update tail -----------
    b.switch_to(clamp);
    b.mark_roi();
    b.work(p.clamp_work);
    b.work(p.tail_work);
    b.bin_into(coef, BinOp::Mul, neighbor, 3i64);
    b.bin_into(coef, BinOp::Add, coef, 1i64);
    b.bin_into(acc, BinOp::Add, acc, coef);
    b.jmp(next);

    // ---- Diffuse path: the same tail with plain coefficients -------------
    b.switch_to(diffuse);
    b.mark_roi();
    b.work(p.tail_work);
    b.bin_into(coef, BinOp::Mul, neighbor, 5i64);
    b.bin_into(coef, BinOp::Add, coef, 2i64);
    b.bin_into(acc, BinOp::Add, acc, coef);
    b.jmp(next);

    // ---- Iterate ----------------------------------------------------------
    b.switch_to(next);
    b.bin_into(i, BinOp::Add, i, 1i64);
    let go_on = b.bin(BinOp::Lt, i, p.iters);
    b.br_div(go_on, head, done);

    b.switch_to(done);
    let slot = b.bin(BinOp::Add, tid, IMAGE_BASE + p.image_len);
    b.store_global(acc, slot);
    b.exit();

    let mut module = Module::new();
    module.add_function(b.finish());

    let mut launch = Launch::new("srad", p.num_warps);
    launch.seed = p.seed;
    // Result slots sized for the default 32-lane warps.
    let lanes = p.num_warps * 32;
    let mut mem = vec![Value::I64(0); (IMAGE_BASE + p.image_len) as usize + lanes];
    let mut state = p.seed | 1;
    for cell in mem.iter_mut().skip(IMAGE_BASE as usize).take(p.image_len as usize) {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *cell = Value::I64(((state >> 33) & 0xFF) as i64);
    }
    launch.global_mem = mem;

    Workload {
        name: "srad",
        description: "Speckle-reducing anisotropic diffusion: per-pixel update loop whose \
                      clamp/diffuse branch is unbalanced but shares an expensive update tail \
                      across both arms.",
        pattern: DivergencePattern::IterationDelay,
        module,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::run_config;
    use simt_sim::SimConfig;
    use specrecon_core::RepairStrategy;

    fn small() -> Workload {
        build(&Params { num_warps: 1, ..Params::default() })
    }

    #[test]
    fn all_repairs_agree_on_results() {
        let w = small();
        let cfg = SimConfig::default();
        let (_, base) = run_config(&w, &RepairStrategy::Pdom.options(), &cfg).unwrap();
        for r in RepairStrategy::ALL {
            let (_, mem) = run_config(&w, &r.options(), &cfg).unwrap();
            assert_eq!(base, mem, "{r} diverged from pdom results");
        }
    }

    #[test]
    fn melding_beats_both_pdom_and_sr() {
        let w = small();
        let cfg = SimConfig::default();
        let eff = |r: RepairStrategy| run_config(&w, &r.options(), &cfg).unwrap().0.simt_eff;
        let (pdom, sr, meld) =
            (eff(RepairStrategy::Pdom), eff(RepairStrategy::Sr), eff(RepairStrategy::Meld));
        assert!(meld > pdom, "meld {meld} should beat pdom {pdom}");
        assert!(meld > sr, "meld {meld} should beat sr {sr}");
    }
}
