//! RSBench — multipole macroscopic cross-section lookup (Figure 3).
//!
//! The paper's primary Loop-Merge example: each lookup walks every nuclide
//! of a randomly chosen material and accumulates cross-section data. The
//! per-material nuclide counts come from the real RSBench "large" input
//! (12 materials, 4..321 nuclides), which is exactly the 4–321 range the
//! paper quotes — this is what makes the inner trip count divergent.
//! The kernel is compute-bound: the per-nuclide body carries substantial
//! arithmetic next to one gather load.
//!
//! Annotation: `Predict(L1)` at the kernel entry with the inner-loop
//! header as the reconvergence point (Figure 3's `L1`).

use crate::common::{begin_task_loop, emit_hash, MEM_BASE, QUEUE_ADDR};
use crate::{DivergencePattern, Workload};
use simt_ir::{BinOp, FuncKind, FunctionBuilder, Module, UnOp, Value};
use simt_sim::Launch;

/// Per-material nuclide counts from RSBench's default (large) input.
pub const NUCLIDE_COUNTS: [i64; 12] = [321, 96, 34, 22, 20, 21, 12, 11, 10, 9, 16, 45];

/// Tunable workload size.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of lookup tasks in the work queue.
    pub num_tasks: i64,
    /// Warps in the launch.
    pub num_warps: usize,
    /// Size of the cross-section gather table.
    pub data_len: i64,
    /// Synthetic cycles of multipole math per nuclide (the compute-bound
    /// knob; RSBench evaluates a Faddeeva function per pole).
    pub body_work: u32,
    /// Synthetic cycles of per-lookup post-processing (epilog).
    pub epilog_work: u32,
    /// RNG seed for the launch.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            num_tasks: 512,
            num_warps: 4,
            data_len: 2048,
            body_work: 22,
            epilog_work: 8,
            seed: 0x5EED_0001,
        }
    }
}

/// Memory layout of the launch built by [`build`].
#[derive(Clone, Copy, Debug)]
pub struct MemLayout {
    /// Base of the 12-entry material → nuclide-count table.
    pub counts_base: i64,
    /// Base of the cross-section data table.
    pub data_base: i64,
    /// Base of the per-task result array.
    pub result_base: i64,
}

/// Computes the memory layout for the given parameters.
pub fn layout(p: &Params) -> MemLayout {
    let counts_base = MEM_BASE;
    let data_base = counts_base + NUCLIDE_COUNTS.len() as i64;
    let result_base = data_base + p.data_len;
    MemLayout { counts_base, data_base, result_base }
}

/// Builds the RSBench workload.
///
/// ```
/// use workloads::rsbench;
/// use workloads::eval::compare;
/// use simt_sim::SimConfig;
///
/// let params = rsbench::Params { num_tasks: 64, num_warps: 1, ..Default::default() };
/// let w = rsbench::build(&params);
/// let cmp = compare(&w, &SimConfig::default()).unwrap();
/// assert!(cmp.speedup() > 1.0);
/// ```
pub fn build(p: &Params) -> Workload {
    let l = layout(p);
    let mut b = FunctionBuilder::new("rsbench", FuncKind::Kernel, 0);
    b.predict_label("L1", None);
    let tl = begin_task_loop(&mut b, p.num_tasks);

    // ---- Prolog: pick a material and load its nuclide count -------------
    let h = emit_hash(&mut b, tl.task);
    let mat = b.bin(BinOp::Rem, h, NUCLIDE_COUNTS.len() as i64);
    let count_addr = b.bin(BinOp::Add, mat, l.counts_base);
    let count = b.load_global(count_addr);
    let acc = b.mov(0.0f64);
    let j = b.mov(0i64);
    let inner = b.block("L1");
    let epilog = b.block("epilog");
    b.jmp(inner);

    // ---- Inner loop: accumulate one nuclide's cross sections ------------
    b.switch_to(inner);
    b.mark_roi();
    // Gather one pole's data for this (material, nuclide) pair.
    let stride = b.bin(BinOp::Mul, mat, 131i64);
    let jj = b.bin(BinOp::Mul, j, 17i64);
    let mix = b.bin(BinOp::Add, stride, jj);
    let idx = b.bin(BinOp::Rem, mix, p.data_len);
    let addr = b.bin(BinOp::Add, idx, l.data_base);
    let pole = b.load_global(addr);
    // Multipole evaluation stand-in: real flops plus a work knob.
    let sq = b.bin(BinOp::Mul, pole, pole);
    let e = b.un(UnOp::Sqrt, sq);
    b.work(p.body_work);
    let contrib = b.bin(BinOp::Add, e, 0.5f64);
    b.bin_into(acc, BinOp::Add, acc, contrib);
    b.bin_into(j, BinOp::Add, j, 1i64);
    let more = b.bin(BinOp::Lt, j, count);
    b.br_div(more, inner, epilog);

    // ---- Epilog: post-processing and result store ------------------------
    b.switch_to(epilog);
    b.work(p.epilog_work);
    let slot = b.bin(BinOp::Add, tl.task, l.result_base);
    b.store_global(acc, slot);
    b.jmp(tl.fetch);

    let mut module = Module::new();
    module.add_function(b.finish());

    let mut launch = Launch::new("rsbench", p.num_warps);
    launch.seed = p.seed;
    let mem_len = (l.result_base + p.num_tasks) as usize;
    let mut mem = vec![Value::I64(0); mem_len];
    mem[QUEUE_ADDR as usize] = Value::I64(0);
    for (i, &c) in NUCLIDE_COUNTS.iter().enumerate() {
        mem[(l.counts_base as usize) + i] = Value::I64(c);
    }
    // Deterministic cross-section table (values in [0.5, 1.5)).
    let mut state = p.seed | 1;
    for i in 0..p.data_len as usize {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
        mem[(l.data_base as usize) + i] = Value::F64(0.5 + unit);
    }
    launch.global_mem = mem;

    Workload {
        name: "rsbench",
        description: "A nuclear reactor simulation mini-application that optimizes Monte Carlo \
                      neutron transport. The main kernel has a loop with a divergent trip count \
                      (4..321 nuclides per material); thread coarsening increases work per thread.",
        pattern: DivergencePattern::LoopMerge,
        module,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{compare, with_warps};
    use simt_sim::SimConfig;

    fn small() -> Workload {
        let p = Params { num_tasks: 96, num_warps: 1, ..Params::default() };
        build(&p)
    }

    #[test]
    fn speculative_improves_efficiency_and_speed() {
        let w = small();
        let cmp = compare(&w, &SimConfig::default()).unwrap();
        assert!(
            cmp.speculative.simt_eff > cmp.baseline.simt_eff + 0.1,
            "eff: {} -> {}",
            cmp.baseline.simt_eff,
            cmp.speculative.simt_eff
        );
        assert!(cmp.speedup() > 1.2, "speedup {}", cmp.speedup());
    }

    #[test]
    fn baseline_efficiency_is_low() {
        // The 4..321 trip-count spread should leave the PDOM baseline well
        // under 50% efficiency, as in the paper's Figure 7.
        let w = small();
        let cmp = compare(&w, &SimConfig::default()).unwrap();
        assert!(cmp.baseline.simt_eff < 0.5, "baseline eff {}", cmp.baseline.simt_eff);
    }

    #[test]
    fn results_are_deterministic_across_runs() {
        let w = small();
        let a = compare(&w, &SimConfig::default()).unwrap();
        let b = compare(&w, &SimConfig::default()).unwrap();
        assert_eq!(a.baseline.cycles, b.baseline.cycles);
        assert_eq!(a.speculative.cycles, b.speculative.cycles);
    }

    #[test]
    fn default_params_build_and_shrink() {
        let w = build(&Params::default());
        let w1 = with_warps(&w, 1);
        assert_eq!(w1.launch.num_warps, 1);
        simt_ir::assert_verified(&w1.module);
    }
}
