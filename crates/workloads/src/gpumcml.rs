//! GPU-MCML — photon transport in turbid media (light dosimetry).
//!
//! Photons hop/drop/spin until roulette kills them: *hop* samples a step
//! length (logarithm), *drop* deposits weight into an absorption grid
//! (scatter store), *spin* resamples the direction (the expensive
//! trig-heavy part). Photon lifetimes vary enormously, so the photon loop
//! has strong trip-count divergence; the paper reports one of the largest
//! efficiency gains here.

use crate::common::{begin_task_loop, emit_hash, MEM_BASE, QUEUE_ADDR};
use crate::{DivergencePattern, Workload};
use simt_ir::{BinOp, FuncKind, FunctionBuilder, Module, UnOp, Value};
use simt_sim::Launch;

/// Tunable workload size.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of photons (tasks).
    pub num_photons: i64,
    /// Warps in the launch.
    pub num_warps: usize,
    /// Weight decay per step (survival factor).
    pub albedo: f64,
    /// Roulette: photons below this weight face termination.
    pub weight_floor: f64,
    /// Roulette survival probability below the floor.
    pub roulette_p: f64,
    /// Maximum steps per photon.
    pub max_steps: i64,
    /// Synthetic cycles of the spin (direction resampling).
    pub spin_work: u32,
    /// Absorption grid size.
    pub grid_len: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            num_photons: 512,
            num_warps: 4,
            albedo: 0.9,
            weight_floor: 0.12,
            roulette_p: 0.3,
            max_steps: 64,
            spin_work: 42,
            grid_len: 1024,
            seed: 0x5EED_0009,
        }
    }
}

/// Memory layout of the launch built by [`build`].
#[derive(Clone, Copy, Debug)]
pub struct MemLayout {
    /// Base of the absorption grid.
    pub grid_base: i64,
    /// Base of the per-photon step-count output.
    pub result_base: i64,
}

/// Computes the memory layout for the given parameters.
pub fn layout(p: &Params) -> MemLayout {
    let grid_base = MEM_BASE;
    let result_base = grid_base + p.grid_len;
    MemLayout { grid_base, result_base }
}

/// Builds the GPU-MCML workload.
pub fn build(p: &Params) -> Workload {
    let l = layout(p);
    let mut b = FunctionBuilder::new("gpumcml", FuncKind::Kernel, 0);
    b.predict_label("hop", None);
    let tl = begin_task_loop(&mut b, p.num_photons);

    // ---- Photon setup ---------------------------------------------------------
    let h = emit_hash(&mut b, tl.task);
    let pos = b.bin(BinOp::And, h, 0x3FF_i64);
    let weight = b.mov(1.0f64);
    let step = b.mov(0i64);
    let hop = b.block("hop");
    let roulette = b.block("roulette");
    let dead = b.block("dead");
    b.jmp(hop);

    // ---- Hop + drop + spin: one photon step -------------------------------------
    b.switch_to(hop);
    b.mark_roi();
    // Hop: step length.
    let u = b.rng_unit();
    let lg = b.un(UnOp::Log, u);
    let s = b.un(UnOp::Neg, lg);
    // Drop: deposit (1 - albedo) * weight into the grid.
    let dep = b.bin(BinOp::Mul, weight, 1.0 - p.albedo);
    let cell0 = b.bin(BinOp::Mul, pos, 17i64);
    let cell1 = b.bin(BinOp::Add, cell0, step);
    let cell = b.bin(BinOp::Rem, cell1, p.grid_len);
    let caddr = b.bin(BinOp::Add, cell, l.grid_base);
    // Atomic deposit: photons from different warps share grid cells.
    b.atomic_add(caddr, dep);
    let w2 = b.bin(BinOp::Mul, weight, p.albedo);
    b.mov_into(weight, w2);
    // Spin: direction resampling (expensive trig).
    b.work(p.spin_work);
    let sv = b.bin(BinOp::Mul, s, 0.5f64);
    let _cos = b.un(UnOp::Sqrt, sv);
    b.bin_into(step, BinOp::Add, step, 1i64);
    // Continue while weight above the floor and under the cap.
    let low = b.bin(BinOp::Lt, weight, p.weight_floor);
    let capped = b.bin(BinOp::Ge, step, p.max_steps);
    let must_check = b.bin(BinOp::Or, low, capped);
    let keep_flying = b.bin(BinOp::Eq, must_check, 0i64);
    b.br_div(keep_flying, hop, roulette);

    // ---- Roulette ---------------------------------------------------------------
    b.switch_to(roulette);
    let r = b.rng_unit();
    let survive0 = b.bin(BinOp::Lt, r, p.roulette_p);
    let under_cap = b.bin(BinOp::Lt, step, p.max_steps);
    let survive = b.bin(BinOp::And, survive0, under_cap);
    // Surviving photons get their weight boosted (unbiased estimator).
    let boosted = b.bin(BinOp::Div, weight, p.roulette_p);
    let wnew = b.sel(survive, boosted, weight);
    b.mov_into(weight, wnew);
    b.br_div(survive, hop, dead);

    b.switch_to(dead);
    let slot = b.bin(BinOp::Add, tl.task, l.result_base);
    b.store_global(step, slot);
    b.jmp(tl.fetch);

    let mut module = Module::new();
    module.add_function(b.finish());

    let mut launch = Launch::new("gpumcml", p.num_warps);
    launch.seed = p.seed;
    let mem_len = (l.result_base + p.num_photons) as usize;
    let mut mem = vec![Value::I64(0); mem_len];
    mem[QUEUE_ADDR as usize] = Value::I64(0);
    for i in 0..p.grid_len as usize {
        mem[(l.grid_base as usize) + i] = Value::F64(0.0);
    }
    launch.global_mem = mem;

    Workload {
        name: "gpu-mcml",
        description: "Simulates photon transport in turbid media (light dosimetry). Hop/drop/\
                      spin steps repeat until roulette terminates the photon; lifetimes vary \
                      enormously, giving strong loop trip count divergence.",
        pattern: DivergencePattern::LoopMerge,
        module,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::compare;
    use simt_sim::SimConfig;

    fn small() -> Workload {
        build(&Params { num_photons: 96, num_warps: 1, ..Params::default() })
    }

    #[test]
    fn sr_substantially_improves_efficiency() {
        let cmp = compare(&small(), &SimConfig::default()).unwrap();
        assert!(
            cmp.speculative.simt_eff > cmp.baseline.simt_eff + 0.1,
            "eff: {} -> {}",
            cmp.baseline.simt_eff,
            cmp.speculative.simt_eff
        );
    }

    #[test]
    fn absorption_grid_accumulates_weight() {
        let w = small();
        let (_, mem) = crate::eval::run_config(
            &w,
            &specrecon_core::CompileOptions::baseline(),
            &SimConfig::default(),
        )
        .unwrap();
        let p = Params { num_photons: 96, num_warps: 1, ..Params::default() };
        let l = layout(&p);
        let total: f64 =
            (0..p.grid_len as usize).map(|i| mem[(l.grid_base as usize) + i].as_f64()).sum();
        assert!(total > 1.0, "deposited weight {total}");
    }
}
