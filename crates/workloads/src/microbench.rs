//! Microbenchmarks.
//!
//! The paper found no full application exhibiting the common-function-call
//! pattern of Figure 2(c) and validated it with microbenchmarks instead
//! (§5.1); this module provides that microbenchmark plus a
//! convergent-control sanity kernel used by the corpus and tests.

use crate::common::{emit_hash, MEM_BASE, QUEUE_ADDR};
use crate::{DivergencePattern, Workload};
use simt_ir::{BinOp, FuncKind, FunctionBuilder, Module, SpecialValue, Value};
use simt_sim::Launch;

/// Parameters of the common-function-call microbenchmark.
#[derive(Clone, Debug)]
pub struct Params {
    /// Warps in the launch.
    pub num_warps: usize,
    /// Iterations of the divergent-call loop per thread.
    pub iterations: i64,
    /// Synthetic cycles inside the shared function body.
    pub body_work: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self { num_warps: 4, iterations: 24, body_work: 60, seed: 0x5EED_000A }
    }
}

/// Builds the Figure 2(c) microbenchmark: a loop whose divergent branch
/// calls the same device function from both sides, with an
/// interprocedural `Predict(@shade)` annotation.
pub fn build_common_call(p: &Params) -> Workload {
    let mut module = Module::new();

    // The shared device function (the predicted reconvergence point).
    {
        let mut f = FunctionBuilder::new("shade", FuncKind::Device, 1);
        let x = f.param(0);
        let body = f.block("shade_body");
        f.jmp(body);
        f.switch_to(body);
        f.mark_roi();
        f.work(p.body_work);
        let y0 = f.bin(BinOp::Mul, x, 2654435761i64);
        let y = f.bin(BinOp::And, y0, 0xFFFF_i64);
        f.ret(vec![y.into()]);
        module.add_function(f.finish());
    }

    // The kernel: each iteration branches divergently; both sides call
    // @shade with different preprocessing.
    let mut b = FunctionBuilder::new("common_call", FuncKind::Kernel, 0);
    b.predict_function("shade", None);
    let tid = b.special(SpecialValue::Tid);
    let h = emit_hash(&mut b, tid);
    b.seed_rng(h);
    let acc = b.mov(0i64);
    let i = b.mov(0i64);
    let loop_hdr = b.block("loop");
    let heavy_pre = b.block("heavy_pre");
    let light_pre = b.block("light_pre");
    let join = b.block("join");
    let out = b.block("out");
    b.jmp(loop_hdr);

    b.switch_to(loop_hdr);
    let u = b.rng_unit();
    let heavy = b.bin(BinOp::Lt, u, 0.5f64);
    b.br_div(heavy, heavy_pre, light_pre);

    b.switch_to(heavy_pre);
    b.work(12);
    let a1 = b.bin(BinOp::Add, h, i);
    let r1 = b.call("shade", vec![a1.into()], 1);
    b.bin_into(acc, BinOp::Add, acc, r1[0]);
    b.jmp(join);

    b.switch_to(light_pre);
    b.work(3);
    let a2 = b.bin(BinOp::Xor, h, i);
    let r2 = b.call("shade", vec![a2.into()], 1);
    b.bin_into(acc, BinOp::Add, acc, r2[0]);
    b.jmp(join);

    b.switch_to(join);
    b.bin_into(i, BinOp::Add, i, 1i64);
    let more = b.bin(BinOp::Lt, i, p.iterations);
    b.br_div(more, loop_hdr, out);

    b.switch_to(out);
    let slot = b.bin(BinOp::Add, tid, MEM_BASE);
    b.store_global(acc, slot);
    b.exit();
    module.add_function(b.finish());
    module.resolve_calls().expect("shade exists");

    let mut launch = Launch::new("common_call", p.num_warps);
    launch.seed = p.seed;
    let threads = p.num_warps * 32;
    launch.global_mem = vec![Value::I64(0); MEM_BASE as usize + threads];
    // Queue cell unused here but kept for layout uniformity.
    launch.global_mem[QUEUE_ADDR as usize] = Value::I64(0);

    Workload {
        name: "common-call",
        description: "Microbenchmark validating the Figure 2(c) pattern: both sides of a \
                      divergent branch call the same function; the entry of the function is \
                      the predicted reconvergence point (§4.4).",
        pattern: DivergencePattern::CommonFunctionCall,
        module,
        launch,
    }
}

/// Parameters for the Figure 2(a)/2(b) reference kernels.
#[derive(Clone, Debug)]
pub struct Fig2Params {
    /// Warps in the launch.
    pub num_warps: usize,
    /// Outer loop iterations per thread.
    pub outer_iters: i64,
    /// Probability of the divergent condition (2a) per iteration.
    pub branch_p: f64,
    /// Synthetic cycles of the expensive common code.
    pub expensive_work: u32,
    /// Maximum inner-loop trips (2b); actual counts are hash-skewed.
    pub max_trips: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig2Params {
    fn default() -> Self {
        Self {
            num_warps: 2,
            outer_iters: 20,
            branch_p: 0.2,
            expensive_work: 60,
            max_trips: 48,
            seed: 0x5EED_00F2,
        }
    }
}

/// Figure 2(a): a divergent condition within a loop, annotated with the
/// proposed reconvergence point at the expensive block (Iteration Delay).
pub fn build_fig2a(p: &Fig2Params) -> Workload {
    let mut b = FunctionBuilder::new("fig2a", FuncKind::Kernel, 0);
    b.predict_label("L1", None);
    let tid = b.special(SpecialValue::Tid);
    b.seed_rng(tid);
    let acc = b.mov(0i64);
    let i = b.mov(0i64);
    let header = b.block("header");
    let expensive = b.block("L1");
    let epilog = b.block("epilog");
    let out = b.block("out");
    b.jmp(header);

    b.switch_to(header);
    let u = b.rng_unit();
    let taken = b.bin(BinOp::Lt, u, p.branch_p);
    b.br_div(taken, expensive, epilog);

    b.switch_to(expensive);
    b.mark_roi();
    b.work(p.expensive_work);
    b.bin_into(acc, BinOp::Add, acc, 7i64);
    b.jmp(epilog);

    b.switch_to(epilog);
    b.bin_into(i, BinOp::Add, i, 1i64);
    let more = b.bin(BinOp::Lt, i, p.outer_iters);
    b.br_div(more, header, out);

    b.switch_to(out);
    let slot = b.bin(BinOp::Add, tid, MEM_BASE);
    b.store_global(acc, slot);
    b.exit();

    let mut module = Module::new();
    module.add_function(b.finish());
    let mut launch = Launch::new("fig2a", p.num_warps);
    launch.seed = p.seed;
    launch.global_mem = vec![Value::I64(0); MEM_BASE as usize + p.num_warps * 32];
    Workload {
        name: "fig2a",
        description: "Figure 2(a) reference kernel: divergent condition within a loop                       (Iteration Delay).",
        pattern: DivergencePattern::IterationDelay,
        module,
        launch,
    }
}

/// Figure 2(b): a nested loop with a divergent trip count, annotated at
/// the inner-loop header (Loop Merge).
pub fn build_fig2b(p: &Fig2Params) -> Workload {
    let mut b = FunctionBuilder::new("fig2b", FuncKind::Kernel, 0);
    b.predict_label("L1", None);
    let tid = b.special(SpecialValue::Tid);
    let acc = b.mov(0i64);
    let i = b.mov(0i64);
    let header = b.block("header");
    let inner = b.block("L1");
    let epilog = b.block("epilog");
    let out = b.block("out");
    b.jmp(header);

    b.switch_to(header);
    // Prolog: per-(thread, iteration) trip count, hash-skewed.
    let mix0 = b.bin(BinOp::Mul, tid, 0x9E37_i64);
    let mix1 = b.bin(BinOp::Xor, mix0, i);
    let h = emit_hash(&mut b, mix1);
    let t0 = b.bin(BinOp::Rem, h, p.max_trips);
    let tsq = b.bin(BinOp::Mul, t0, t0);
    let trips0 = b.bin(BinOp::Div, tsq, p.max_trips);
    let trips = b.bin(BinOp::Add, trips0, 1i64);
    let j = b.mov(0i64);
    b.jmp(inner);

    b.switch_to(inner);
    b.mark_roi();
    b.work(p.expensive_work / 2);
    b.bin_into(acc, BinOp::Add, acc, j);
    b.bin_into(j, BinOp::Add, j, 1i64);
    let more = b.bin(BinOp::Lt, j, trips);
    b.br_div(more, inner, epilog);

    b.switch_to(epilog);
    b.bin_into(i, BinOp::Add, i, 1i64);
    let outer_more = b.bin(BinOp::Lt, i, p.outer_iters);
    b.br_div(outer_more, header, out);

    b.switch_to(out);
    let slot = b.bin(BinOp::Add, tid, MEM_BASE);
    b.store_global(acc, slot);
    b.exit();

    let mut module = Module::new();
    module.add_function(b.finish());
    let mut launch = Launch::new("fig2b", p.num_warps);
    launch.seed = p.seed;
    launch.global_mem = vec![Value::I64(0); MEM_BASE as usize + p.num_warps * 32];
    Workload {
        name: "fig2b",
        description: "Figure 2(b) reference kernel: loop trip count divergence (Loop Merge).",
        pattern: DivergencePattern::LoopMerge,
        module,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::compare;
    use simt_sim::SimConfig;

    #[test]
    fn interprocedural_sr_converges_shared_body() {
        let w = build_common_call(&Params { num_warps: 1, ..Params::default() });
        let cmp = compare(&w, &SimConfig::default()).unwrap();
        assert!(
            cmp.speculative.roi_eff > cmp.baseline.roi_eff + 0.2,
            "roi eff: {} -> {}",
            cmp.baseline.roi_eff,
            cmp.speculative.roi_eff
        );
        assert!(cmp.speedup() > 1.0, "speedup {}", cmp.speedup());
    }

    #[test]
    fn fig2a_improves_under_sr() {
        let w = build_fig2a(&Fig2Params { num_warps: 1, ..Fig2Params::default() });
        let cmp = compare(&w, &SimConfig::default()).unwrap();
        assert!(
            cmp.speculative.roi_eff > cmp.baseline.roi_eff + 0.2,
            "roi: {} -> {}",
            cmp.baseline.roi_eff,
            cmp.speculative.roi_eff
        );
    }

    #[test]
    fn fig2b_improves_under_sr() {
        let w = build_fig2b(&Fig2Params { num_warps: 1, ..Fig2Params::default() });
        let cmp = compare(&w, &SimConfig::default()).unwrap();
        assert!(
            cmp.speculative.simt_eff > cmp.baseline.simt_eff + 0.08,
            "eff: {} -> {}",
            cmp.baseline.simt_eff,
            cmp.speculative.simt_eff
        );
        assert!(cmp.speedup() > 1.0, "speedup {}", cmp.speedup());
    }

    #[test]
    fn kernel_writes_every_thread_slot() {
        let w = build_common_call(&Params { num_warps: 1, ..Params::default() });
        let (_, mem) = crate::eval::run_config(
            &w,
            &specrecon_core::CompileOptions::baseline(),
            &SimConfig::default(),
        )
        .unwrap();
        for t in 0..32usize {
            assert_ne!(mem[MEM_BASE as usize + t], Value::I64(0), "thread {t}");
        }
    }
}
