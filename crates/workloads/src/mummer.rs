//! MUMmer — suffix-tree sequence alignment for genome matching.
//!
//! Each query walks the reference as long as characters match; query
//! lengths and match depths vary per read, so the matching loop has
//! divergent trip counts. The inner body is a pair of dependent loads
//! (reference node + query character) plus comparison logic. Coarsened
//! over queries; Loop-Merge annotation at the matching loop.

use crate::common::{begin_task_loop, emit_hash, MEM_BASE, QUEUE_ADDR};
use crate::{DivergencePattern, Workload};
use simt_ir::{BinOp, FuncKind, FunctionBuilder, Module, Value};
use simt_sim::Launch;

/// Tunable workload size.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of queries (tasks).
    pub num_queries: i64,
    /// Warps in the launch.
    pub num_warps: usize,
    /// Reference sequence length.
    pub ref_len: i64,
    /// Maximum query length (actual lengths vary 4..max).
    pub max_query_len: i64,
    /// Synthetic cycles of per-character scoring.
    pub score_work: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            num_queries: 512,
            num_warps: 4,
            ref_len: 4096,
            max_query_len: 72,
            score_work: 18,
            seed: 0x5EED_0006,
        }
    }
}

/// Memory layout of the launch built by [`build`].
#[derive(Clone, Copy, Debug)]
pub struct MemLayout {
    /// Base of the reference sequence (one symbol per cell).
    pub ref_base: i64,
    /// Base of the per-query match-length output.
    pub result_base: i64,
}

/// Computes the memory layout for the given parameters.
pub fn layout(p: &Params) -> MemLayout {
    let ref_base = MEM_BASE;
    let result_base = ref_base + p.ref_len;
    MemLayout { ref_base, result_base }
}

/// Builds the MUMmer workload.
pub fn build(p: &Params) -> Workload {
    let l = layout(p);
    let mut b = FunctionBuilder::new("mummer", FuncKind::Kernel, 0);
    b.predict_label("match_loop", None);
    let tl = begin_task_loop(&mut b, p.num_queries);

    // ---- Prolog: derive query start, length, and seed character ----------
    let h = emit_hash(&mut b, tl.task);
    // Quadratically-skewed query lengths (real read sets mix short reads
    // with long repeats): mean well below the max, heavy tail.
    let qlen0 = b.bin(BinOp::Rem, h, p.max_query_len - 4);
    let qsq = b.bin(BinOp::Mul, qlen0, qlen0);
    let qskew = b.bin(BinOp::Div, qsq, p.max_query_len - 4);
    let qlen = b.bin(BinOp::Add, qskew, 4i64);
    let start = b.bin(BinOp::Rem, h, p.ref_len);
    let depth = b.mov(0i64);
    let matched = b.mov(0i64);
    let match_loop = b.block("match_loop");
    let report = b.block("report");
    b.jmp(match_loop);

    // ---- Matching loop -----------------------------------------------------
    b.switch_to(match_loop);
    b.mark_roi();
    // Reference symbol at the walk position.
    let rpos0 = b.bin(BinOp::Add, start, depth);
    let rpos = b.bin(BinOp::Rem, rpos0, p.ref_len);
    let raddr = b.bin(BinOp::Add, rpos, l.ref_base);
    let rsym = b.load_global(raddr);
    // Query symbol derived from the task hash stream (deterministic).
    let qmix0 = b.bin(BinOp::Mul, depth, 1099087573i64);
    let qmix1 = b.bin(BinOp::Xor, qmix0, h);
    let qsym = b.bin(BinOp::And, qmix1, 3i64);
    b.work(p.score_work);
    let eq = b.bin(BinOp::Eq, rsym, qsym);
    b.bin_into(matched, BinOp::Add, matched, eq);
    b.bin_into(depth, BinOp::Add, depth, 1i64);
    // Walk the full query (suffix-tree descent visits every character).
    let go_on = b.bin(BinOp::Lt, depth, qlen);
    b.br_div(go_on, match_loop, report);

    // ---- Epilog: report the match length -----------------------------------
    b.switch_to(report);
    let slot = b.bin(BinOp::Add, tl.task, l.result_base);
    b.store_global(matched, slot);
    b.jmp(tl.fetch);

    let mut module = Module::new();
    module.add_function(b.finish());

    let mut launch = Launch::new("mummer", p.num_warps);
    launch.seed = p.seed;
    let mem_len = (l.result_base + p.num_queries) as usize;
    let mut mem = vec![Value::I64(0); mem_len];
    mem[QUEUE_ADDR as usize] = Value::I64(0);
    // Reference over a 4-symbol alphabet (ACGT).
    let mut state = p.seed | 1;
    for i in 0..p.ref_len as usize {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        mem[(l.ref_base as usize) + i] = Value::I64(((state >> 33) & 3) as i64);
    }
    launch.global_mem = mem;

    Workload {
        name: "mummer",
        description: "A parallel sequence alignment kernel used for genome sequencing. \
                      Per-query match depths vary, giving the matching loop a divergent trip \
                      count.",
        pattern: DivergencePattern::LoopMerge,
        module,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::compare;
    use simt_sim::SimConfig;

    fn small() -> Workload {
        build(&Params { num_queries: 96, num_warps: 1, ..Params::default() })
    }

    #[test]
    fn sr_improves_match_loop_convergence() {
        let cmp = compare(&small(), &SimConfig::default()).unwrap();
        assert!(
            cmp.speculative.roi_eff > cmp.baseline.roi_eff,
            "roi eff: {} -> {}",
            cmp.baseline.roi_eff,
            cmp.speculative.roi_eff
        );
    }

    #[test]
    fn match_lengths_are_plausible() {
        let w = small();
        let (_, mem) = crate::eval::run_config(
            &w,
            &specrecon_core::CompileOptions::baseline(),
            &SimConfig::default(),
        )
        .unwrap();
        let p = Params { num_queries: 96, num_warps: 1, ..Params::default() };
        let l = layout(&p);
        for t in 0..96usize {
            let v = mem[(l.result_base as usize) + t].as_i64();
            assert!((0..=p.max_query_len).contains(&v), "task {t}: matched {v}");
        }
    }
}
