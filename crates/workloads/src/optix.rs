//! OptiX-style ray traversal.
//!
//! Models the divergence profile of a BVH ray tracer built on NVIDIA's
//! OptiX engine (§5.4 notes several automatically-detected candidates live
//! in OptiX workloads): a traversal loop alternates between cheap internal
//! node steps and expensive leaf intersections, chosen data-dependently
//! per ray. Iteration-Delay on the leaf-intersection block collects rays
//! across traversal steps; rays terminate after a variable number of
//! steps (trip-count divergence on top).

use crate::common::{begin_task_loop, emit_hash, MEM_BASE, QUEUE_ADDR};
use crate::{DivergencePattern, Workload};
use simt_ir::{BinOp, FuncKind, FunctionBuilder, Module, Value};
use simt_sim::Launch;

/// Tunable workload size.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of rays (tasks).
    pub num_rays: i64,
    /// Warps in the launch.
    pub num_warps: usize,
    /// Probability a traversal step reaches a leaf (expensive intersect).
    pub leaf_p: f64,
    /// Probability the ray terminates after a leaf test.
    pub hit_p: f64,
    /// Maximum traversal steps.
    pub max_steps: i64,
    /// Synthetic cycles of a leaf intersection (triangle tests).
    pub leaf_work: u32,
    /// Synthetic cycles of an internal node step (AABB slab test).
    pub node_work: u32,
    /// BVH node table size.
    pub bvh_len: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            num_rays: 512,
            num_warps: 4,
            leaf_p: 0.35,
            hit_p: 0.10,
            max_steps: 40,
            leaf_work: 85,
            node_work: 4,
            bvh_len: 2048,
            seed: 0x5EED_0008,
        }
    }
}

/// Memory layout of the launch built by [`build`].
#[derive(Clone, Copy, Debug)]
pub struct MemLayout {
    /// Base of the BVH node table.
    pub bvh_base: i64,
    /// Base of the per-ray hit output.
    pub result_base: i64,
}

/// Computes the memory layout for the given parameters.
pub fn layout(p: &Params) -> MemLayout {
    let bvh_base = MEM_BASE;
    let result_base = bvh_base + p.bvh_len;
    MemLayout { bvh_base, result_base }
}

/// Builds the OptiX-style workload.
pub fn build(p: &Params) -> Workload {
    let l = layout(p);
    let mut b = FunctionBuilder::new("optix", FuncKind::Kernel, 0);
    b.predict_label("leaf", None);
    let tl = begin_task_loop(&mut b, p.num_rays);

    // ---- Ray setup -----------------------------------------------------------
    let h = emit_hash(&mut b, tl.task);
    let node = b.bin(BinOp::And, h, p.bvh_len - 1);
    let t_best = b.mov(0.0f64);
    let step = b.mov(0i64);
    let traverse = b.block("traverse");
    let leaf = b.block("leaf");
    let node_step = b.block("node_step");
    let advance = b.block("advance");
    let finish = b.block("finish");
    b.jmp(traverse);

    // ---- Traversal: leaf or internal node? -----------------------------------
    b.switch_to(traverse);
    let naddr = b.bin(BinOp::Add, node, l.bvh_base);
    let ndata = b.load_global(naddr);
    let r = b.rng_unit();
    let is_leaf = b.bin(BinOp::Lt, r, p.leaf_p);
    b.br_div(is_leaf, leaf, node_step);

    // ---- Leaf intersection: the expensive common code --------------------------
    b.switch_to(leaf);
    b.mark_roi();
    b.work(p.leaf_work);
    let tf = b.bin(BinOp::Mul, ndata, 0.25f64);
    b.bin_into(t_best, BinOp::Add, t_best, tf);
    b.jmp(advance);

    // ---- Internal node: cheap slab test -----------------------------------------
    b.switch_to(node_step);
    b.work(p.node_work);
    let child = b.bin(BinOp::Mul, node, 2i64);
    let child1 = b.bin(BinOp::Add, child, 1i64);
    let wrapped = b.bin(BinOp::Rem, child1, p.bvh_len);
    b.mov_into(node, wrapped);
    b.jmp(advance);

    // ---- Step epilog: termination tests -------------------------------------------
    b.switch_to(advance);
    b.bin_into(step, BinOp::Add, step, 1i64);
    let hr = b.rng_unit();
    let hit = b.bin(BinOp::Lt, hr, p.hit_p);
    let capped = b.bin(BinOp::Ge, step, p.max_steps);
    let stop = b.bin(BinOp::Or, hit, capped);
    let go_on = b.bin(BinOp::Eq, stop, 0i64);
    b.br_div(go_on, traverse, finish);

    b.switch_to(finish);
    let slot = b.bin(BinOp::Add, tl.task, l.result_base);
    b.store_global(t_best, slot);
    b.jmp(tl.fetch);

    let mut module = Module::new();
    module.add_function(b.finish());

    let mut launch = Launch::new("optix", p.num_warps);
    launch.seed = p.seed;
    let mem_len = (l.result_base + p.num_rays) as usize;
    let mut mem = vec![Value::I64(0); mem_len];
    mem[QUEUE_ADDR as usize] = Value::I64(0);
    let mut state = p.seed | 1;
    for i in 0..p.bvh_len as usize {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
        mem[(l.bvh_base as usize) + i] = Value::F64(unit * 8.0);
    }
    launch.global_mem = mem;

    Workload {
        name: "optix",
        description: "NVIDIA's ray tracing engine optimized for high ray-tracing performance \
                      on parallel architectures. Traversal alternates cheap node steps with \
                      expensive leaf intersections, chosen divergently per ray.",
        pattern: DivergencePattern::IterationDelay,
        module,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::compare;
    use simt_sim::SimConfig;

    fn small() -> Workload {
        build(&Params { num_rays: 96, num_warps: 1, ..Params::default() })
    }

    #[test]
    fn leaf_intersections_converge_under_sr() {
        let cmp = compare(&small(), &SimConfig::default()).unwrap();
        assert!(
            cmp.speculative.roi_eff > cmp.baseline.roi_eff + 0.15,
            "roi eff: {} -> {}",
            cmp.baseline.roi_eff,
            cmp.speculative.roi_eff
        );
    }

    #[test]
    fn node_steps_remain_cheap_relative_to_leaves() {
        let p = Params::default();
        assert!(p.leaf_work > 4 * p.node_work, "shape parameter sanity");
    }
}
