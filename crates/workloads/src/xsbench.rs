//! XSBench — macroscopic cross-section lookup, memory-bound variant.
//!
//! Simulates the same problem as RSBench but is bound by memory: the
//! per-nuclide body is dominated by scattered gather loads, and — the
//! property the paper highlights — the *epilog/prolog is expensive too*
//! (the energy-grid binary search that locates the lookup window). That
//! makes full reconvergence suboptimal: refilling an idle thread costs a
//! serialized grid search, so XSBench peaks at a partial soft-barrier
//! threshold in Figure 9 rather than at full convergence.

use crate::common::{begin_task_loop, emit_hash, MEM_BASE, QUEUE_ADDR};
use crate::{DivergencePattern, Workload};
use simt_ir::{BinOp, FuncKind, FunctionBuilder, Module, Value};
use simt_sim::Launch;

/// Per-material nuclide counts (same distribution source as RSBench).
pub const NUCLIDE_COUNTS: [i64; 12] = [321, 96, 34, 22, 20, 21, 12, 11, 10, 9, 16, 45];

/// Tunable workload size.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of lookup tasks.
    pub num_tasks: i64,
    /// Warps in the launch.
    pub num_warps: usize,
    /// Size of the unionized energy grid (gather table).
    pub grid_len: i64,
    /// Iterations of the energy-grid binary search in the prolog — the
    /// expensive task-refill cost.
    pub search_steps: i64,
    /// Synthetic compute per nuclide (small: memory-bound).
    pub body_work: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            num_tasks: 512,
            num_warps: 4,
            grid_len: 4096,
            search_steps: 12,
            body_work: 4,
            seed: 0x5EED_0002,
        }
    }
}

/// Memory layout of the launch built by [`build`].
#[derive(Clone, Copy, Debug)]
pub struct MemLayout {
    /// Base of the material → nuclide-count table.
    pub counts_base: i64,
    /// Base of the unionized energy grid.
    pub grid_base: i64,
    /// Base of the per-task result array.
    pub result_base: i64,
}

/// Computes the memory layout for the given parameters.
pub fn layout(p: &Params) -> MemLayout {
    let counts_base = MEM_BASE;
    let grid_base = counts_base + NUCLIDE_COUNTS.len() as i64;
    let result_base = grid_base + p.grid_len;
    MemLayout { counts_base, grid_base, result_base }
}

/// Builds the XSBench workload.
pub fn build(p: &Params) -> Workload {
    let l = layout(p);
    let mut b = FunctionBuilder::new("xsbench", FuncKind::Kernel, 0);
    b.predict_label("L1", None);
    let tl = begin_task_loop(&mut b, p.num_tasks);

    // ---- Prolog: energy sample + expensive binary search on the grid ----
    let h = emit_hash(&mut b, tl.task);
    let mat = b.bin(BinOp::Rem, h, NUCLIDE_COUNTS.len() as i64);
    let count_addr = b.bin(BinOp::Add, mat, l.counts_base);
    let count = b.load_global(count_addr);

    // Binary search: `search_steps` probes of the energy grid, each a
    // dependent scattered load — the expensive refill the paper calls out.
    let lo = b.mov(0i64);
    let hi = b.mov(p.grid_len - 1);
    let step = b.mov(0i64);
    let search = b.block("grid_search");
    let body_pre = b.anon_block();
    b.jmp(search);
    b.switch_to(search);
    let mid0 = b.bin(BinOp::Add, lo, hi);
    let mid = b.bin(BinOp::Shr, mid0, 1i64);
    let probe_addr = b.bin(BinOp::Add, mid, l.grid_base);
    let probe = b.load_global(probe_addr);
    // Compare probe against the (hashed) target energy and narrow.
    let target = b.bin(BinOp::And, h, 0xFFFF_i64);
    let below = b.bin(BinOp::Lt, probe, target);
    let mid_plus = b.bin(BinOp::Add, mid, 1i64);
    let new_lo = b.sel(below, mid_plus, lo);
    let new_hi = b.sel(below, hi, mid);
    b.mov_into(lo, new_lo);
    b.mov_into(hi, new_hi);
    b.bin_into(step, BinOp::Add, step, 1i64);
    let more_search = b.bin(BinOp::Lt, step, p.search_steps);
    b.br(more_search, search, body_pre);

    b.switch_to(body_pre);
    let acc = b.mov(0i64);
    let j = b.mov(0i64);
    let inner = b.block("L1");
    let epilog = b.block("epilog");
    b.jmp(inner);

    // ---- Inner loop: per-nuclide gather-dominated accumulation ----------
    b.switch_to(inner);
    b.mark_roi();
    let base_idx = b.bin(BinOp::Mul, j, 37i64);
    let e_idx = b.bin(BinOp::Add, base_idx, lo);
    let idx0 = b.bin(BinOp::Rem, e_idx, p.grid_len);
    let a0 = b.bin(BinOp::Add, idx0, l.grid_base);
    let v0 = b.load_global(a0);
    let idx1 = b.bin(BinOp::Xor, idx0, 0x155_i64);
    let idx1m = b.bin(BinOp::Rem, idx1, p.grid_len);
    let a1 = b.bin(BinOp::Add, idx1m, l.grid_base);
    let v1 = b.load_global(a1);
    b.work(p.body_work);
    let s = b.bin(BinOp::Add, v0, v1);
    b.bin_into(acc, BinOp::Add, acc, s);
    b.bin_into(j, BinOp::Add, j, 1i64);
    let more = b.bin(BinOp::Lt, j, count);
    b.br_div(more, inner, epilog);

    // ---- Epilog -----------------------------------------------------------
    b.switch_to(epilog);
    let slot = b.bin(BinOp::Add, tl.task, l.result_base);
    b.store_global(acc, slot);
    b.jmp(tl.fetch);

    let mut module = Module::new();
    module.add_function(b.finish());

    let mut launch = Launch::new("xsbench", p.num_warps);
    launch.seed = p.seed;
    let mem_len = (l.result_base + p.num_tasks) as usize;
    let mut mem = vec![Value::I64(0); mem_len];
    mem[QUEUE_ADDR as usize] = Value::I64(0);
    for (i, &c) in NUCLIDE_COUNTS.iter().enumerate() {
        mem[(l.counts_base as usize) + i] = Value::I64(c);
    }
    // Sorted energy grid (what a binary search expects).
    for i in 0..p.grid_len as usize {
        mem[(l.grid_base as usize) + i] = Value::I64((i as i64) * 0xFFFF / p.grid_len);
    }
    launch.global_mem = mem;

    Workload {
        name: "xsbench",
        description: "Simulates a problem similar to RSBench, but is memory bound rather than \
                      compute bound. The nested divergent loop has both an expensive inner loop \
                      and an expensive epilog (the energy-grid search that refills a thread).",
        pattern: DivergencePattern::LoopMerge,
        module,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{compare, compare_with, with_threshold};
    use simt_sim::SimConfig;
    use specrecon_core::CompileOptions;

    fn small() -> Workload {
        build(&Params { num_tasks: 96, num_warps: 1, ..Params::default() })
    }

    #[test]
    fn speculative_improves_efficiency() {
        let cmp = compare(&small(), &SimConfig::default()).unwrap();
        assert!(
            cmp.speculative.simt_eff > cmp.baseline.simt_eff,
            "eff: {} -> {}",
            cmp.baseline.simt_eff,
            cmp.speculative.simt_eff
        );
    }

    #[test]
    fn soft_thresholds_run_and_preserve_results() {
        let w = small();
        for t in [4u32, 16, 28] {
            let wt = with_threshold(&w, t);
            let cmp =
                compare_with(&wt, &CompileOptions::speculative(), &SimConfig::default()).unwrap();
            assert!(cmp.speculative.cycles > 0, "threshold {t}");
        }
    }

    #[test]
    fn memory_bound_shape() {
        // The grid loads dominate: the inner body issues more memory cost
        // than compute. Indirectly visible as lower speedup potential than
        // rsbench, but results must still be exact.
        let cmp = compare(&small(), &SimConfig::default()).unwrap();
        assert!(cmp.speedup() > 0.8, "speedup collapsed: {}", cmp.speedup());
    }
}
