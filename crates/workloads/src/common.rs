//! Shared scaffolding for the benchmark kernels.
//!
//! All Table-2 workloads are *persistent-thread* kernels (the thread
//! coarsening of §3 / Figure 3 applied): threads fetch task indices from
//! an atomic work queue until it drains. [`begin_task_loop`] builds that
//! scaffold; each workload then writes its task body and jumps back to the
//! fetch block.

use simt_ir::{BinOp, BlockId, FunctionBuilder, Operand, Reg};

/// Global-memory cell used as the work-queue counter by every coarsened
/// workload. Workload tables start above [`MEM_BASE`].
pub const QUEUE_ADDR: i64 = 0;

/// First global cell available for workload tables/results.
pub const MEM_BASE: i64 = 1;

/// Handles into the persistent-thread scaffold of a kernel.
#[derive(Clone, Copy, Debug)]
pub struct TaskLoop {
    /// Register holding the current task index inside the body.
    pub task: Reg,
    /// The fetch block — the back-edge target for the task body, and the
    /// natural `Predict` region entry for Loop Merge.
    pub fetch: BlockId,
    /// The drained-queue exit block.
    pub done: BlockId,
    /// First block of the task body (the builder cursor is placed here).
    pub body: BlockId,
}

/// Builds the task-fetch scaffold on `b`:
///
/// ```text
/// entry: (cursor was here)        fetch: task = atomic_add [queue], 1
///   ... caller's prolog ...              brdiv task < num_tasks, body, done
///   jmp fetch                     done:  exit
/// ```
///
/// The caller must currently be on an *unterminated* block (typically the
/// entry); its code runs once per thread before the task loop. On return
/// the cursor sits on the `body` block; the caller writes the per-task
/// code and ends it with `b.jmp(task_loop.fetch)`.
pub fn begin_task_loop(b: &mut FunctionBuilder, num_tasks: impl Into<Operand>) -> TaskLoop {
    let fetch = b.block("task_fetch");
    let done = b.block("task_done");
    let body = b.block("task_body");

    b.jmp(fetch);

    b.switch_to(fetch);
    let task = b.atomic_add(QUEUE_ADDR, 1i64);
    let in_range = b.bin(BinOp::Lt, task, num_tasks.into());
    b.br_div(in_range, body, done);

    b.switch_to(done);
    b.exit();

    b.switch_to(body);
    // Counter-based RNG: the task's random stream is a function of the
    // task id, not of the thread that happens to run it — so results are
    // identical across compiler configurations and schedulers.
    b.seed_rng(task);
    TaskLoop { task, fetch, done, body }
}

/// Emits a cheap integer hash of `x` (xorshift-multiply), used by
/// workloads to derive pseudo-structured indices from task ids without
/// consuming RNG state.
pub fn emit_hash(b: &mut FunctionBuilder, x: Reg) -> Reg {
    let s1 = b.bin(BinOp::Shr, x, 12i64);
    let x1 = b.bin(BinOp::Xor, x, s1);
    let m1 = b.bin(BinOp::Mul, x1, 0x2545F491_i64);
    let s2 = b.bin(BinOp::Shr, m1, 19i64);
    let x2 = b.bin(BinOp::Xor, m1, s2);
    b.bin(BinOp::And, x2, i64::MAX)
}

/// Emits `base + (index % len)` — a bounded table index.
pub fn emit_table_index(
    b: &mut FunctionBuilder,
    base: i64,
    index: impl Into<Operand>,
    len: i64,
) -> Reg {
    let m = b.bin(BinOp::Rem, index.into(), len);
    b.bin(BinOp::Add, m, base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_ir::{FuncKind, Module, Value};
    use simt_sim::{run, Launch, SimConfig};

    #[test]
    fn task_loop_drains_queue_exactly_once_per_task() {
        let mut b = FunctionBuilder::new("k", FuncKind::Kernel, 0);
        let tl = begin_task_loop(&mut b, 50i64);
        // body: result[task+1] += 1
        let slot = b.bin(BinOp::Add, tl.task, 1i64);
        let old = b.load_global(slot);
        let new = b.bin(BinOp::Add, old, 1i64);
        b.store_global(new, slot);
        b.jmp(tl.fetch);
        let f = b.finish();
        let mut m = Module::new();
        m.add_function(f);
        simt_ir::assert_verified(&m);

        let mut launch = Launch::new("k", 2);
        launch.global_mem = vec![Value::I64(0); 51];
        let out = run(&m, &SimConfig::default(), &launch).unwrap();
        for t in 1..=50 {
            assert_eq!(out.global_mem[t], Value::I64(1), "task {t}");
        }
    }

    #[test]
    fn hash_spreads_and_is_bounded() {
        let mut b = FunctionBuilder::new("k", FuncKind::Kernel, 0);
        let tid = b.special(simt_ir::SpecialValue::Tid);
        let h = emit_hash(&mut b, tid);
        let idx = emit_table_index(&mut b, 10, h, 7);
        let v = b.mov(idx);
        b.store_global(v, tid);
        b.exit();
        let mut m = Module::new();
        m.add_function(b.finish());
        let mut launch = Launch::new("k", 1);
        launch.global_mem = vec![Value::I64(0); 32];
        let out = run(&m, &SimConfig::default(), &launch).unwrap();
        let values: Vec<i64> = out.global_mem.iter().map(|v| v.as_i64()).collect();
        assert!(values.iter().all(|&v| (10..17).contains(&v)), "{values:?}");
        // Different lanes land on different table slots at least sometimes.
        let distinct: std::collections::HashSet<i64> = values.iter().copied().collect();
        assert!(distinct.len() > 2, "hash failed to spread: {values:?}");
    }
}
