//! Evaluation harness: compile a workload under different configurations,
//! run it, and compare — with an output-equality check, since Speculative
//! Reconvergence must never change results.
//!
//! The harness is built around [`Engine`], which caches compiled kernels
//! as decoded execution images (keyed by module text and
//! [`CompileOptions`]) and runs independent jobs on scoped worker
//! threads. The module-level free functions ([`run_config`], [`compare`],
//! [`compare_with`]) delegate to a process-wide single-job engine, so
//! existing callers keep their exact behavior while repeated runs of the
//! same kernel skip recompilation and redecoding.

use crate::Workload;
use simt_ir::Module;
use simt_sim::{
    run_image, run_image_with, run_sweep_image, CancelToken, DecodedImage, Launch, Metrics,
    SimConfig, SimError, SimOutput, SweepLaunch, SweepOutput, SweepStats,
};
use specrecon_core::{compile, CompileOptions, PassError, RepairStrategy};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Error from the evaluation harness.
#[derive(Debug)]
pub enum EvalError {
    /// Compilation failed.
    Compile(PassError),
    /// Simulation failed.
    Sim(SimError),
    /// The transformed kernel produced different memory contents than the
    /// baseline — a correctness bug.
    ResultMismatch {
        /// Workload name.
        workload: String,
        /// First differing cell.
        first_diff: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Compile(e) => write!(f, "compile error: {e}"),
            EvalError::Sim(e) => write!(f, "simulation error: {e}"),
            EvalError::ResultMismatch { workload, first_diff } => write!(
                f,
                "{workload}: transformed kernel changed results (first diff at cell {first_diff})"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<PassError> for EvalError {
    fn from(e: PassError) -> Self {
        EvalError::Compile(e)
    }
}

impl From<SimError> for EvalError {
    fn from(e: SimError) -> Self {
        EvalError::Sim(e)
    }
}

impl EvalError {
    /// Whether this error is a cooperative cancellation (deadline expiry
    /// or shutdown), as opposed to a compile/simulation failure.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, EvalError::Sim(SimError::Cancelled { .. }))
    }
}

/// Counters describing the compiled-image cache's effectiveness; see
/// [`Engine::cache_stats`]. All counts are cumulative over the engine's
/// lifetime except `entries`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile + decode.
    pub misses: u64,
    /// Entries discarded to stay under the capacity bound.
    pub evictions: u64,
    /// Distinct compiled kernels currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A cached decoded image stamped with its last-use tick (for LRU
/// eviction under a capacity bound).
struct CacheEntry {
    image: Arc<DecodedImage>,
    last_used: u64,
}

/// The engine's compiled-image cache: map plus bookkeeping, all guarded
/// by one mutex (lookups are rare next to the simulation work they
/// front).
#[derive(Default)]
struct Cache {
    map: HashMap<String, CacheEntry>,
    /// Monotonic use counter driving `last_used` stamps.
    tick: u64,
    /// `None` = unbounded (the historical behavior).
    capacity: Option<usize>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Cache {
    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
        }
    }

    /// Discards least-recently-used entries until the capacity bound
    /// holds. A capacity of zero is clamped to one so an insert directly
    /// followed by a lookup of the same key still hits.
    fn enforce_capacity(&mut self) {
        let Some(cap) = self.capacity else { return };
        let cap = cap.max(1);
        while self.map.len() > cap {
            let Some(oldest) =
                self.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            else {
                return;
            };
            self.map.remove(&oldest);
            self.evictions += 1;
        }
    }
}

/// Metrics digest of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary {
    /// Overall SIMT efficiency.
    pub simt_eff: f64,
    /// SIMT efficiency inside the workload's region of interest.
    pub roi_eff: f64,
    /// Total cycles.
    pub cycles: u64,
    /// Dynamic barrier operations (overhead indicator).
    pub barrier_ops: u64,
}

impl From<&Metrics> for RunSummary {
    fn from(m: &Metrics) -> Self {
        Self {
            simt_eff: m.simt_efficiency(),
            roi_eff: m.roi_simt_efficiency(),
            cycles: m.cycles,
            barrier_ops: m.barrier_ops,
        }
    }
}

/// One independent simulation job for [`Engine::run_batch`]: a workload
/// compiled under `opts` and executed under `cfg`.
#[derive(Clone, Debug)]
pub struct EvalJob {
    /// Workload to compile and run (its launch is used as-is).
    pub workload: Workload,
    /// Compiler configuration.
    pub opts: CompileOptions,
    /// Machine configuration.
    pub cfg: SimConfig,
}

impl EvalJob {
    /// Convenience constructor.
    pub fn new(workload: Workload, opts: CompileOptions, cfg: SimConfig) -> Self {
        Self { workload, opts, cfg }
    }
}

/// Batch evaluation engine: a compiled-kernel cache plus a worker pool.
///
/// Compilation and decode are deterministic, and a [`DecodedImage`] is
/// independent of [`SimConfig`] (issue costs are resolved per run), so the
/// cache is keyed only by the module's textual form and the
/// [`CompileOptions`] — two workloads that lower to the same kernel share
/// one image.
///
/// [`Engine::run_batch`] and [`Engine::par_map`] execute independent jobs
/// on `std::thread::scope` worker threads. Results are merged by job
/// index, so output order — and, because each simulation is a pure
/// function of `(image, cfg, launch)`, every byte of every result — is
/// identical no matter how many workers run.
pub struct Engine {
    jobs: usize,
    cache: Mutex<Cache>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("jobs", &self.jobs)
            .field("cached_images", &self.cached_images())
            .finish()
    }
}

impl Engine {
    /// Creates an engine that runs batches on `jobs` worker threads
    /// (clamped to at least 1). The compiled-image cache is unbounded;
    /// use [`Engine::with_capacity`] for long-lived engines fed
    /// arbitrary kernels (the evaluation service).
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1), cache: Mutex::new(Cache::default()) }
    }

    /// Like [`Engine::new`] but bounds the compiled-image cache to
    /// `capacity` entries, evicting least-recently-used images. A
    /// capacity of zero is clamped to one.
    pub fn with_capacity(jobs: usize, capacity: usize) -> Self {
        let engine = Self::new(jobs);
        engine.cache.lock().expect("engine cache poisoned").capacity = Some(capacity);
        engine
    }

    /// Creates an engine sized to the machine's available parallelism.
    pub fn with_default_parallelism() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Number of worker threads batches run on.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Number of distinct compiled kernels currently cached.
    pub fn cached_images(&self) -> usize {
        self.cache.lock().expect("engine cache poisoned").map.len()
    }

    /// Hit/miss/eviction counters for the compiled-image cache (the
    /// evaluation service exports these as Prometheus gauges).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("engine cache poisoned").stats()
    }

    /// Returns the cached decoded image for `(module, opts)`, compiling
    /// and decoding on a miss. `opts: None` means "run the module as-is"
    /// (the CLI path, which compiles itself).
    fn image(
        &self,
        module: &Module,
        opts: Option<&CompileOptions>,
    ) -> Result<Arc<DecodedImage>, EvalError> {
        // Key by full text, not by hash: collisions would silently run the
        // wrong kernel. Modules are small; the memory cost is negligible.
        let key = match opts {
            Some(o) => format!("{module}\u{1}{o:?}"),
            None => format!("{module}\u{1}raw"),
        };
        {
            let mut cache = self.cache.lock().expect("engine cache poisoned");
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(entry) = cache.map.get_mut(&key) {
                entry.last_used = tick;
                let image = Arc::clone(&entry.image);
                cache.hits += 1;
                return Ok(image);
            }
            cache.misses += 1;
        }
        let img = Arc::new(match opts {
            Some(o) => DecodedImage::decode(&compile(module, o)?.module),
            None => DecodedImage::decode(module),
        });
        // A concurrent miss may insert first; both images are identical,
        // so last-write-wins is fine.
        let mut cache = self.cache.lock().expect("engine cache poisoned");
        cache.tick += 1;
        let entry = CacheEntry { image: Arc::clone(&img), last_used: cache.tick };
        cache.map.insert(key, entry);
        cache.enforce_capacity();
        Ok(img)
    }

    /// Returns the cached decoded execution image for `module` compiled
    /// under `opts` (`None` runs the module as-is), compiling and
    /// decoding on a miss.
    ///
    /// This is the entry for callers that drive
    /// [`run_image`](simt_sim::run_image) themselves in a tight loop —
    /// the perf harness, for one — and must not pay the cache lock per
    /// run.
    ///
    /// # Errors
    ///
    /// Compilation failures (when `opts` is `Some`).
    pub fn decoded(
        &self,
        module: &Module,
        opts: Option<&CompileOptions>,
    ) -> Result<Arc<DecodedImage>, EvalError> {
        self.image(module, opts)
    }

    /// Runs an already-compiled module under `cfg`, caching its decoded
    /// image. This is the entry for callers that drive compilation
    /// themselves (the CLI, profile-guided flows).
    pub fn run_module(
        &self,
        module: &Module,
        cfg: &SimConfig,
        launch: &Launch,
    ) -> Result<SimOutput, EvalError> {
        let image = self.image(module, None)?;
        Ok(run_image(&image, cfg, launch)?)
    }

    /// [`Engine::run_module`] with a cooperative [`CancelToken`]: the
    /// simulation polls the token between scheduling rounds and stops
    /// with a [`SimError::Cancelled`] error once it flips. The cache is
    /// untouched by cancellation — the image stays resident and the next
    /// request for the same kernel hits.
    pub fn run_module_with(
        &self,
        module: &Module,
        cfg: &SimConfig,
        launch: &Launch,
        cancel: Option<&CancelToken>,
    ) -> Result<SimOutput, EvalError> {
        let image = self.image(module, None)?;
        Ok(run_image_with(&image, cfg, launch, cancel)?)
    }

    /// [`Engine::run_full`] with a cooperative [`CancelToken`] (see
    /// [`Engine::run_module_with`]).
    pub fn run_full_with(
        &self,
        w: &Workload,
        opts: &CompileOptions,
        cfg: &SimConfig,
        cancel: Option<&CancelToken>,
    ) -> Result<SimOutput, EvalError> {
        let image = self.image(&w.module, Some(opts))?;
        Ok(run_image_with(&image, cfg, &w.launch, cancel)?)
    }

    /// Compiles the workload with `opts` and runs it, returning the full
    /// [`SimOutput`] (including trace/profile when `cfg` requests them).
    pub fn run_full(
        &self,
        w: &Workload,
        opts: &CompileOptions,
        cfg: &SimConfig,
    ) -> Result<SimOutput, EvalError> {
        let image = self.image(&w.module, Some(opts))?;
        Ok(run_image(&image, cfg, &w.launch)?)
    }

    /// Compiles the workload with `opts` and runs it; returns the metrics
    /// digest and the final memory (for cross-configuration checks).
    pub fn run_config(
        &self,
        w: &Workload,
        opts: &CompileOptions,
        cfg: &SimConfig,
    ) -> Result<(RunSummary, Vec<simt_ir::Value>), EvalError> {
        let out = self.run_full(w, opts, cfg)?;
        Ok(((&out.metrics).into(), out.global_mem))
    }

    /// Compiles the workload under the given divergence-repair strategy
    /// and runs it — the `--repair` axis entry shared by the CLI, the
    /// eval service, and the figures harness. Each strategy maps to a
    /// distinct [`CompileOptions`], so every repair gets its own
    /// compiled-image cache entry.
    pub fn run_repair(
        &self,
        w: &Workload,
        repair: RepairStrategy,
        cfg: &SimConfig,
    ) -> Result<(RunSummary, Vec<simt_ir::Value>), EvalError> {
        self.run_config(w, &repair.options(), cfg)
    }

    /// Baseline-vs-speculative comparison (see the free [`compare`]).
    pub fn compare(&self, w: &Workload, cfg: &SimConfig) -> Result<Comparison, EvalError> {
        self.compare_with(w, &CompileOptions::speculative(), cfg)
    }

    /// Like [`Engine::compare`] but with a custom speculative-side
    /// configuration.
    pub fn compare_with(
        &self,
        w: &Workload,
        spec_opts: &CompileOptions,
        cfg: &SimConfig,
    ) -> Result<Comparison, EvalError> {
        let (base, base_mem) = self.run_config(w, &CompileOptions::baseline(), cfg)?;
        let (spec, spec_mem) = self.run_config(w, spec_opts, cfg)?;
        if let Some(first_diff) = first_difference(&base_mem, &spec_mem) {
            return Err(EvalError::ResultMismatch { workload: w.name.to_string(), first_diff });
        }
        Ok(Comparison { name: w.name.to_string(), baseline: base, speculative: spec })
    }

    /// Runs independent jobs on the worker pool; the result vector is in
    /// job order regardless of worker count.
    pub fn run_batch(
        &self,
        jobs: &[EvalJob],
    ) -> Vec<Result<(RunSummary, Vec<simt_ir::Value>), EvalError>> {
        self.par_map(jobs, |j| self.run_config(&j.workload, &j.opts, &j.cfg))
    }

    /// Like [`Engine::run_batch`] but returning each job's full
    /// [`SimOutput`] — traces, profiles, and journals included when the
    /// job's config requests them. This is the batch entry for
    /// observability sweeps (e.g. exporting a Chrome trace per workload);
    /// journal writer callbacks run on the worker threads, which is why
    /// [`simt_sim::JournalWriter`] requires `Send + Sync`.
    pub fn run_batch_full(&self, jobs: &[EvalJob]) -> Vec<Result<SimOutput, EvalError>> {
        self.par_map(jobs, |j| self.run_full(&j.workload, &j.opts, &j.cfg))
    }

    /// Runs the workload over the seed range `[seed_lo, seed_hi)` with
    /// the lockstep sweep engine
    /// ([`run_sweep_image`](simt_sim::run_sweep_image)): the kernel is
    /// compiled and decoded **once** (through the compiled-image cache),
    /// the range is partitioned into cohort-sized chunks balanced across
    /// the worker pool, and per-seed results come back in seed order —
    /// each bit-identical to a standalone run of that seed.
    ///
    /// `opts: None` runs the module as-is (the CLI path).
    ///
    /// # Errors
    ///
    /// Compile failures, [`SimError::SweepUnsupported`] when `cfg`
    /// requests trace/profile/journal collection, and
    /// [`SimError::Cancelled`] when the token fires. Per-seed faults are
    /// *not* errors here — they are reported in the failing seed's
    /// [`SeedRun`](simt_sim::SeedRun).
    pub fn run_sweep(
        &self,
        w: &Workload,
        opts: Option<&CompileOptions>,
        cfg: &SimConfig,
        seed_lo: u64,
        seed_hi: u64,
        cancel: Option<&CancelToken>,
    ) -> Result<SweepOutput, EvalError> {
        let image = self.image(&w.module, opts)?;
        self.sweep_image_range(&image, cfg, &w.launch, seed_lo, seed_hi, cancel)
            .map_err(EvalError::Sim)
    }

    /// The image-level half of [`Engine::run_sweep`]: partitions the
    /// seed range `[seed_lo, seed_hi)` into cohort-sized chunks balanced
    /// across the worker pool and runs each through
    /// [`run_sweep_image`](simt_sim::run_sweep_image). Callers that
    /// already hold a decoded image (e.g. the HTTP eval path, which
    /// decodes through its own cache) use this directly; ranges wider
    /// than one cohort are handled transparently.
    ///
    /// # Errors
    ///
    /// [`SimError::SweepUnsupported`] when `cfg` requests
    /// trace/profile/journal collection, [`SimError::Cancelled`] when the
    /// token fires. Per-seed faults are reported in the failing seed's
    /// [`SeedRun`](simt_sim::SeedRun), not as errors.
    pub fn sweep_image_range(
        &self,
        image: &DecodedImage,
        cfg: &SimConfig,
        launch: &Launch,
        seed_lo: u64,
        seed_hi: u64,
        cancel: Option<&CancelToken>,
    ) -> Result<SweepOutput, SimError> {
        let n = seed_hi.saturating_sub(seed_lo);
        if n == 0 {
            return Ok(SweepOutput { runs: Vec::new(), stats: SweepStats::default() });
        }
        // Chunk the range to fill the worker pool, but never wider than
        // one cohort; a remainder chunk at the end is fine.
        let per_worker = n.div_ceil(self.jobs as u64);
        let chunk = per_worker.clamp(1, simt_sim::sweep::COHORT_SLOTS as u64);
        let mut ranges = Vec::with_capacity(n.div_ceil(chunk) as usize);
        let mut lo = seed_lo;
        while lo < seed_hi {
            let hi = seed_hi.min(lo.saturating_add(chunk));
            ranges.push((lo, hi));
            lo = hi;
        }
        let chunks = self.par_map(&ranges, |&(lo, hi)| {
            let sweep = SweepLaunch::new(launch.clone(), lo, hi);
            run_sweep_image(image, cfg, &sweep, cancel)
        });
        let mut runs = Vec::with_capacity(n as usize);
        let mut stats = SweepStats::default();
        for chunk in chunks {
            let out = chunk?;
            runs.extend(out.runs);
            stats.merge(&out.stats);
        }
        Ok(SweepOutput { runs, stats })
    }

    /// Applies `f` to every item on the worker pool and returns results in
    /// item order.
    ///
    /// Work is distributed by an atomic cursor (dynamic load balancing);
    /// each worker records `(index, result)` pairs which are merged by
    /// index after the scope joins, so the output is deterministic. With
    /// one worker (or one item) this degenerates to a plain sequential
    /// map on the calling thread.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.iter().map(&f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            out.push((i, f(&items[i])));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("engine worker panicked")).collect()
        });
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        for (i, r) in per_worker.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots.into_iter().map(|r| r.expect("engine worker skipped an item")).collect()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new(1)
    }
}

/// The process-wide engine behind the module-level free functions:
/// single-job (sequential), with the shared kernel cache. Exposed for
/// callers that want the cache without constructing their own engine.
pub fn shared() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| Engine::new(1))
}

fn default_engine() -> &'static Engine {
    shared()
}

/// Compiles the workload with `opts` and runs it; returns the metrics
/// digest and the final memory (for cross-configuration checks).
///
/// Delegates to a process-wide sequential [`Engine`], so repeated runs of
/// the same kernel hit its compiled-image cache.
pub fn run_config(
    w: &Workload,
    opts: &CompileOptions,
    cfg: &SimConfig,
) -> Result<(RunSummary, Vec<simt_ir::Value>), EvalError> {
    default_engine().run_config(w, opts, cfg)
}

/// Baseline-vs-speculative comparison for one workload (the Figure 7/8
/// measurement).
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Workload name.
    pub name: String,
    /// PDOM baseline run.
    pub baseline: RunSummary,
    /// Speculative Reconvergence run.
    pub speculative: RunSummary,
}

impl Comparison {
    /// Relative SIMT-efficiency improvement (1.0 = unchanged).
    pub fn efficiency_gain(&self) -> f64 {
        self.speculative.simt_eff / self.baseline.simt_eff
    }

    /// Speedup (1.0 = unchanged; above 1 = speculative is faster).
    pub fn speedup(&self) -> f64 {
        self.baseline.cycles as f64 / self.speculative.cycles as f64
    }
}

/// Runs the workload under the baseline and the paper's speculative
/// configuration and checks result equality.
///
/// # Errors
///
/// Any compile or simulation failure, or differing kernel output between
/// configurations.
pub fn compare(w: &Workload, cfg: &SimConfig) -> Result<Comparison, EvalError> {
    default_engine().compare(w, cfg)
}

/// Like [`compare`] but with a custom speculative-side configuration
/// (soft-barrier thresholds, static deconfliction, automatic mode, ...).
pub fn compare_with(
    w: &Workload,
    spec_opts: &CompileOptions,
    cfg: &SimConfig,
) -> Result<Comparison, EvalError> {
    default_engine().compare_with(w, spec_opts, cfg)
}

fn first_difference(a: &[simt_ir::Value], b: &[simt_ir::Value]) -> Option<usize> {
    if a.len() != b.len() {
        return Some(a.len().min(b.len()));
    }
    a.iter().zip(b).position(|(x, y)| match (x, y) {
        (simt_ir::Value::F64(p), simt_ir::Value::F64(q)) => {
            // Atomic accumulation order may differ between configurations;
            // tolerate float rounding.
            (p - q).abs() > 1e-9 * (1.0 + p.abs().max(q.abs()))
        }
        _ => x != y,
    })
}

/// A builder over a cloned [`Workload`], started by [`Workload::rebind`]:
/// the one place launch and annotation adjustments live. The historical
/// helpers ([`with_threshold`], [`with_warps`], [`with_seed`]) are thin
/// wrappers over it, and sweep partitioning uses it to stamp per-chunk
/// seeds.
#[derive(Clone, Debug)]
pub struct Rebind {
    w: Workload,
}

impl Rebind {
    /// Sets the soft-barrier threshold of every `Predict` annotation in
    /// the module (the Figure 9 sweep axis).
    pub fn threshold(mut self, threshold: u32) -> Self {
        for (_, f) in self.w.module.functions.iter_mut() {
            for p in &mut f.predictions {
                p.threshold = Some(threshold);
            }
        }
        self
    }

    /// Sets the launch's warp count (reduced-size variants for fast
    /// tests).
    pub fn warps(mut self, warps: usize) -> Self {
        self.w.launch.num_warps = warps;
        self
    }

    /// Sets the launch seed (determinism / variance testing, per-seed
    /// sweep baselines).
    pub fn seed(mut self, seed: u64) -> Self {
        self.w.launch.seed = seed;
        self
    }

    /// Finishes the rebind, yielding the adjusted workload.
    pub fn done(self) -> Workload {
        self.w
    }
}

impl Workload {
    /// Starts a builder-style rebind: a clone of this workload whose
    /// launch (and prediction thresholds) can be adjusted fluently —
    /// `w.rebind().warps(2).seed(7).done()`.
    pub fn rebind(&self) -> Rebind {
        Rebind { w: self.clone() }
    }
}

/// Applies the workload's recommended soft-barrier threshold to its
/// predictions, returning a modified clone (used by the Figure 9 sweep).
pub fn with_threshold(w: &Workload, threshold: u32) -> Workload {
    w.rebind().threshold(threshold).done()
}

/// A reduced-size variant of the workload for fast tests: shrinks the warp
/// count.
pub fn with_warps(w: &Workload, warps: usize) -> Workload {
    w.rebind().warps(warps).done()
}

/// Convenience: the default launch with a different seed (determinism and
/// variance testing).
pub fn with_seed(w: &Workload, seed: u64) -> Workload {
    w.rebind().seed(seed).done()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsbench;

    #[test]
    fn error_displays_are_informative() {
        let e = EvalError::ResultMismatch { workload: "x".into(), first_diff: 7 };
        assert!(e.to_string().contains("cell 7"));
    }

    #[test]
    fn first_difference_tolerates_float_rounding() {
        use simt_ir::Value;
        let a = vec![Value::F64(1.0), Value::I64(2)];
        let b = vec![Value::F64(1.0 + 1e-12), Value::I64(2)];
        assert_eq!(first_difference(&a, &b), None);
        let c = vec![Value::F64(1.1), Value::I64(2)];
        assert_eq!(first_difference(&a, &c), Some(0));
        let short = vec![Value::F64(1.0)];
        assert_eq!(first_difference(&a, &short), Some(1));
    }

    #[test]
    fn with_threshold_sets_every_prediction() {
        let w = rsbench::build(&rsbench::Params::default());
        let wt = with_threshold(&w, 12);
        for (_, f) in wt.module.functions.iter() {
            for p in &f.predictions {
                assert_eq!(p.threshold, Some(12));
            }
        }
        // Original untouched.
        let kernel = w.module.function_by_name("rsbench").unwrap();
        assert_eq!(w.module.functions[kernel].predictions[0].threshold, None);
    }

    #[test]
    fn with_helpers_adjust_launch() {
        let w = rsbench::build(&rsbench::Params::default());
        assert_eq!(with_warps(&w, 2).launch.num_warps, 2);
        assert_eq!(with_seed(&w, 9).launch.seed, 9);
    }

    #[test]
    fn rebind_composes_and_leaves_the_original_untouched() {
        let w = rsbench::build(&rsbench::Params::default());
        let r = w.rebind().threshold(12).warps(3).seed(99).done();
        assert_eq!(r.launch.num_warps, 3);
        assert_eq!(r.launch.seed, 99);
        for (_, f) in r.module.functions.iter() {
            for p in &f.predictions {
                assert_eq!(p.threshold, Some(12));
            }
        }
        // One chain, one clone; the source workload is unchanged.
        let kernel = w.module.function_by_name("rsbench").unwrap();
        assert_eq!(w.module.functions[kernel].predictions[0].threshold, None);
        assert_ne!(w.launch.seed, 99);
    }

    #[test]
    fn run_sweep_matches_per_seed_runs_and_compiles_once() {
        let engine = Engine::new(3);
        let w = with_warps(&rsbench::build(&rsbench::Params::default()), 1);
        let cfg = SimConfig::default();
        let opts = CompileOptions::baseline();
        // 5 seeds over 3 workers: chunked (2, 2, 1), merged in seed order.
        let out = engine.run_sweep(&w, Some(&opts), &cfg, 10, 15, None).unwrap();
        assert_eq!(out.runs.len(), 5);
        assert_eq!(out.stats.instances, 5);
        assert_eq!(engine.cache_stats().misses, 1, "the sweep compiles once");
        for run in &out.runs {
            let scalar = engine.run_full(&w.rebind().seed(run.seed).done(), &opts, &cfg).unwrap();
            let swept = run.result.as_ref().expect("rsbench runs clean");
            assert_eq!(swept.metrics, scalar.metrics, "seed {}", run.seed);
            assert_eq!(swept.global_mem, scalar.global_mem, "seed {}", run.seed);
        }
        assert_eq!(
            out.runs.iter().map(|r| r.seed).collect::<Vec<_>>(),
            (10..15).collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_sweep_empty_range_and_cancellation() {
        let engine = Engine::new(2);
        let w = with_warps(&rsbench::build(&rsbench::Params::default()), 1);
        let cfg = SimConfig::default();
        let out = engine.run_sweep(&w, None, &cfg, 7, 7, None).unwrap();
        assert!(out.runs.is_empty());
        let token = CancelToken::new();
        token.cancel();
        let err = engine.run_sweep(&w, None, &cfg, 0, 4, Some(&token)).unwrap_err();
        assert!(err.is_cancelled(), "got {err}");
    }

    #[test]
    fn engine_caches_compiled_kernels() {
        let engine = Engine::new(1);
        let w = with_warps(&rsbench::build(&rsbench::Params::default()), 2);
        let cfg = SimConfig::default();
        assert_eq!(engine.cached_images(), 0);
        let a = engine.run_config(&w, &CompileOptions::baseline(), &cfg).unwrap();
        assert_eq!(engine.cached_images(), 1);
        let b = engine.run_config(&w, &CompileOptions::baseline(), &cfg).unwrap();
        assert_eq!(engine.cached_images(), 1, "second run must hit the cache");
        assert_eq!(a, b);
        // A different compile configuration is a different cache entry.
        engine.run_config(&w, &CompileOptions::speculative(), &cfg).unwrap();
        assert_eq!(engine.cached_images(), 2);
    }

    #[test]
    fn engine_matches_free_functions() {
        let engine = Engine::new(2);
        let w = with_warps(&rsbench::build(&rsbench::Params::default()), 2);
        let cfg = SimConfig::default();
        let via_engine = engine.compare(&w, &cfg).unwrap();
        let via_free = compare(&w, &cfg).unwrap();
        assert_eq!(via_engine.baseline, via_free.baseline);
        assert_eq!(via_engine.speculative, via_free.speculative);
    }

    #[test]
    fn par_map_is_order_preserving_and_complete() {
        for jobs in [1, 2, 3, 8] {
            let engine = Engine::new(jobs);
            let items: Vec<usize> = (0..25).collect();
            let out = engine.par_map(&items, |&i| i * i);
            assert_eq!(out, items.iter().map(|&i| i * i).collect::<Vec<_>>(), "jobs={jobs}");
        }
        // Empty input short-circuits.
        assert_eq!(Engine::new(4).par_map(&[] as &[usize], |&i| i), Vec::<usize>::new());
    }

    #[test]
    fn run_batch_order_matches_job_order() {
        let engine = Engine::new(4);
        let base = rsbench::build(&rsbench::Params::default());
        let jobs: Vec<EvalJob> = [1usize, 2, 3]
            .iter()
            .map(|&warps| {
                EvalJob::new(
                    with_warps(&base, warps),
                    CompileOptions::baseline(),
                    SimConfig::default(),
                )
            })
            .collect();
        let results = engine.run_batch(&jobs);
        assert_eq!(results.len(), 3);
        for (job, result) in jobs.iter().zip(&results) {
            let (summary, _) = result.as_ref().unwrap();
            let (expected, _) = run_config(&job.workload, &job.opts, &job.cfg).unwrap();
            assert_eq!(summary, &expected, "warps={}", job.workload.launch.num_warps);
        }
    }

    #[test]
    fn run_batch_full_threads_trace_and_journal_requests() {
        use simt_sim::JournalConfig;
        let engine = Engine::new(2);
        let base = with_warps(&rsbench::build(&rsbench::Params::default()), 1);
        let observed = SimConfig {
            trace: true,
            journal: Some(JournalConfig::default()),
            ..SimConfig::default()
        };
        let jobs = vec![
            EvalJob::new(base.clone(), CompileOptions::baseline(), observed),
            EvalJob::new(base.clone(), CompileOptions::baseline(), SimConfig::default()),
        ];
        let results = engine.run_batch_full(&jobs);
        assert_eq!(results.len(), 2);
        let traced = results[0].as_ref().unwrap();
        assert!(traced.trace.is_some(), "trace request survives the batch path");
        let journal = traced.journal.as_ref().expect("journal request survives the batch path");
        assert!(journal.recorded() > 0, "a divergent workload journals events");
        let plain = results[1].as_ref().unwrap();
        assert!(plain.trace.is_none() && plain.journal.is_none());
        // Observability off/on agree on the execution itself.
        assert_eq!(traced.metrics, plain.metrics);
        assert_eq!(traced.global_mem, plain.global_mem);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let engine = Engine::new(1);
        let w = with_warps(&rsbench::build(&rsbench::Params::default()), 2);
        let cfg = SimConfig::default();
        assert_eq!(engine.cache_stats(), CacheStats::default());
        engine.run_config(&w, &CompileOptions::baseline(), &cfg).unwrap();
        let s = engine.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 1, 1));
        engine.run_config(&w, &CompileOptions::baseline(), &cfg).unwrap();
        engine.run_config(&w, &CompileOptions::baseline(), &cfg).unwrap();
        let s = engine.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        engine.run_config(&w, &CompileOptions::speculative(), &cfg).unwrap();
        assert_eq!(engine.cache_stats().misses, 2);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let engine = Engine::with_capacity(1, 2);
        let w = with_warps(&rsbench::build(&rsbench::Params::default()), 1);
        let cfg = SimConfig::default();
        let base = CompileOptions::baseline();
        let spec = CompileOptions::speculative();
        let auto = CompileOptions::automatic(specrecon_core::DetectOptions::default());
        engine.run_config(&w, &base, &cfg).unwrap(); // miss: {base}
        engine.run_config(&w, &spec, &cfg).unwrap(); // miss: {base, spec}
        engine.run_config(&w, &base, &cfg).unwrap(); // hit, refreshes base
        engine.run_config(&w, &auto, &cfg).unwrap(); // miss: evicts spec (LRU)
        let s = engine.cache_stats();
        assert_eq!((s.entries, s.evictions), (2, 1));
        // base survived the eviction (it was refreshed), spec did not.
        engine.run_config(&w, &base, &cfg).unwrap();
        assert_eq!(engine.cache_stats().hits, 2, "base still resident");
        engine.run_config(&w, &spec, &cfg).unwrap();
        let s = engine.cache_stats();
        assert_eq!(s.misses, 4, "spec was evicted and re-compiles");
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one_entry() {
        let engine = Engine::with_capacity(1, 0);
        let w = with_warps(&rsbench::build(&rsbench::Params::default()), 1);
        let cfg = SimConfig::default();
        engine.run_config(&w, &CompileOptions::baseline(), &cfg).unwrap();
        engine.run_config(&w, &CompileOptions::baseline(), &cfg).unwrap();
        let s = engine.cache_stats();
        assert_eq!((s.hits, s.entries), (1, 1));
    }

    #[test]
    fn cancellation_mid_batch_leaves_cache_usable() {
        let engine = Engine::new(2);
        let w = with_warps(&rsbench::build(&rsbench::Params::default()), 2);
        let cfg = SimConfig::default();
        let opts = CompileOptions::baseline();
        // Pre-cancelled token: the run compiles + caches, then stops at
        // the first scheduling round.
        let token = CancelToken::new();
        token.cancel();
        let err = engine.run_full_with(&w, &opts, &cfg, Some(&token)).unwrap_err();
        assert!(err.is_cancelled(), "got {err}");
        assert_eq!(engine.cached_images(), 1, "the image outlives the cancelled run");
        // The same kernel still runs to completion from the cache, and a
        // parallel batch over it matches an un-cancelled engine.
        let fresh = Engine::new(1);
        let cancelled_then_ok = engine.run_config(&w, &opts, &cfg).unwrap();
        let clean = fresh.run_config(&w, &opts, &cfg).unwrap();
        assert_eq!(cancelled_then_ok, clean);
        assert_eq!(engine.cache_stats().hits, 1, "the rerun hit the cache");
        let jobs: Vec<EvalJob> =
            (1..=3).map(|s| EvalJob::new(with_seed(&w, s), opts.clone(), cfg.clone())).collect();
        for r in engine.run_batch(&jobs) {
            r.expect("batch after cancellation succeeds");
        }
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let engine = Engine::new(1);
        let w = with_warps(&rsbench::build(&rsbench::Params::default()), 2);
        let cfg = SimConfig::default();
        let opts = CompileOptions::baseline();
        let token = CancelToken::new();
        let with_token = engine.run_full_with(&w, &opts, &cfg, Some(&token)).unwrap();
        let without = engine.run_full(&w, &opts, &cfg).unwrap();
        assert_eq!(with_token.metrics, without.metrics);
        assert_eq!(with_token.global_mem, without.global_mem);
    }

    #[test]
    fn run_repair_matches_explicit_options() {
        let engine = Engine::new(1);
        let w = with_warps(&rsbench::build(&rsbench::Params::default()), 1);
        let cfg = SimConfig::default();
        for r in RepairStrategy::ALL {
            let (via_repair, mem_r) = engine.run_repair(&w, r, &cfg).unwrap();
            let (via_opts, mem_o) = engine.run_config(&w, &r.options(), &cfg).unwrap();
            assert_eq!(via_repair, via_opts, "{r}");
            assert_eq!(mem_r, mem_o, "{r}");
        }
    }

    #[test]
    fn comparison_ratios() {
        let mk = |cycles, eff| RunSummary { simt_eff: eff, roi_eff: eff, cycles, barrier_ops: 0 };
        let c = Comparison { name: "t".into(), baseline: mk(200, 0.2), speculative: mk(100, 0.5) };
        assert!((c.speedup() - 2.0).abs() < 1e-12);
        assert!((c.efficiency_gain() - 2.5).abs() < 1e-12);
    }
}
