//! Evaluation harness: compile a workload under different configurations,
//! run it, and compare — with an output-equality check, since Speculative
//! Reconvergence must never change results.

use crate::Workload;
use simt_sim::{run, Metrics, SimConfig, SimError};
use specrecon_core::{compile, CompileOptions, PassError};
use std::fmt;

/// Error from the evaluation harness.
#[derive(Debug)]
pub enum EvalError {
    /// Compilation failed.
    Compile(PassError),
    /// Simulation failed.
    Sim(SimError),
    /// The transformed kernel produced different memory contents than the
    /// baseline — a correctness bug.
    ResultMismatch {
        /// Workload name.
        workload: String,
        /// First differing cell.
        first_diff: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Compile(e) => write!(f, "compile error: {e}"),
            EvalError::Sim(e) => write!(f, "simulation error: {e}"),
            EvalError::ResultMismatch { workload, first_diff } => write!(
                f,
                "{workload}: transformed kernel changed results (first diff at cell {first_diff})"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<PassError> for EvalError {
    fn from(e: PassError) -> Self {
        EvalError::Compile(e)
    }
}

impl From<SimError> for EvalError {
    fn from(e: SimError) -> Self {
        EvalError::Sim(e)
    }
}

/// Metrics digest of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary {
    /// Overall SIMT efficiency.
    pub simt_eff: f64,
    /// SIMT efficiency inside the workload's region of interest.
    pub roi_eff: f64,
    /// Total cycles.
    pub cycles: u64,
    /// Dynamic barrier operations (overhead indicator).
    pub barrier_ops: u64,
}

impl From<&Metrics> for RunSummary {
    fn from(m: &Metrics) -> Self {
        Self {
            simt_eff: m.simt_efficiency(),
            roi_eff: m.roi_simt_efficiency(),
            cycles: m.cycles,
            barrier_ops: m.barrier_ops,
        }
    }
}

/// Compiles the workload with `opts` and runs it; returns the metrics
/// digest and the final memory (for cross-configuration checks).
pub fn run_config(
    w: &Workload,
    opts: &CompileOptions,
    cfg: &SimConfig,
) -> Result<(RunSummary, Vec<simt_ir::Value>), EvalError> {
    let compiled = compile(&w.module, opts)?;
    let out = run(&compiled.module, cfg, &w.launch)?;
    Ok(((&out.metrics).into(), out.global_mem))
}

/// Baseline-vs-speculative comparison for one workload (the Figure 7/8
/// measurement).
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Workload name.
    pub name: String,
    /// PDOM baseline run.
    pub baseline: RunSummary,
    /// Speculative Reconvergence run.
    pub speculative: RunSummary,
}

impl Comparison {
    /// Relative SIMT-efficiency improvement (1.0 = unchanged).
    pub fn efficiency_gain(&self) -> f64 {
        self.speculative.simt_eff / self.baseline.simt_eff
    }

    /// Speedup (1.0 = unchanged; above 1 = speculative is faster).
    pub fn speedup(&self) -> f64 {
        self.baseline.cycles as f64 / self.speculative.cycles as f64
    }
}

/// Runs the workload under the baseline and the paper's speculative
/// configuration and checks result equality.
///
/// # Errors
///
/// Any compile or simulation failure, or differing kernel output between
/// configurations.
pub fn compare(w: &Workload, cfg: &SimConfig) -> Result<Comparison, EvalError> {
    compare_with(w, &CompileOptions::speculative(), cfg)
}

/// Like [`compare`] but with a custom speculative-side configuration
/// (soft-barrier thresholds, static deconfliction, automatic mode, ...).
pub fn compare_with(
    w: &Workload,
    spec_opts: &CompileOptions,
    cfg: &SimConfig,
) -> Result<Comparison, EvalError> {
    let (base, base_mem) = run_config(w, &CompileOptions::baseline(), cfg)?;
    let (spec, spec_mem) = run_config(w, spec_opts, cfg)?;
    if let Some(first_diff) = first_difference(&base_mem, &spec_mem) {
        return Err(EvalError::ResultMismatch { workload: w.name.to_string(), first_diff });
    }
    Ok(Comparison { name: w.name.to_string(), baseline: base, speculative: spec })
}

fn first_difference(a: &[simt_ir::Value], b: &[simt_ir::Value]) -> Option<usize> {
    if a.len() != b.len() {
        return Some(a.len().min(b.len()));
    }
    a.iter().zip(b).position(|(x, y)| match (x, y) {
        (simt_ir::Value::F64(p), simt_ir::Value::F64(q)) => {
            // Atomic accumulation order may differ between configurations;
            // tolerate float rounding.
            (p - q).abs() > 1e-9 * (1.0 + p.abs().max(q.abs()))
        }
        _ => x != y,
    })
}

/// Applies the workload's recommended soft-barrier threshold to its
/// predictions, returning a modified clone (used by the Figure 9 sweep).
pub fn with_threshold(w: &Workload, threshold: u32) -> Workload {
    let mut w2 = w.clone();
    for (_, f) in w2.module.functions.iter_mut() {
        for p in &mut f.predictions {
            p.threshold = Some(threshold);
        }
    }
    w2
}

/// A reduced-size variant of the workload for fast tests: shrinks the warp
/// count.
pub fn with_warps(w: &Workload, warps: usize) -> Workload {
    let mut w2 = w.clone();
    w2.launch.num_warps = warps;
    w2
}

/// Convenience: the default launch with a different seed (determinism and
/// variance testing).
pub fn with_seed(w: &Workload, seed: u64) -> Workload {
    let mut w2 = w.clone();
    w2.launch.seed = seed;
    w2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsbench;

    #[test]
    fn error_displays_are_informative() {
        let e = EvalError::ResultMismatch { workload: "x".into(), first_diff: 7 };
        assert!(e.to_string().contains("cell 7"));
    }

    #[test]
    fn first_difference_tolerates_float_rounding() {
        use simt_ir::Value;
        let a = vec![Value::F64(1.0), Value::I64(2)];
        let b = vec![Value::F64(1.0 + 1e-12), Value::I64(2)];
        assert_eq!(first_difference(&a, &b), None);
        let c = vec![Value::F64(1.1), Value::I64(2)];
        assert_eq!(first_difference(&a, &c), Some(0));
        let short = vec![Value::F64(1.0)];
        assert_eq!(first_difference(&a, &short), Some(1));
    }

    #[test]
    fn with_threshold_sets_every_prediction() {
        let w = rsbench::build(&rsbench::Params::default());
        let wt = with_threshold(&w, 12);
        for (_, f) in wt.module.functions.iter() {
            for p in &f.predictions {
                assert_eq!(p.threshold, Some(12));
            }
        }
        // Original untouched.
        let kernel = w.module.function_by_name("rsbench").unwrap();
        assert_eq!(w.module.functions[kernel].predictions[0].threshold, None);
    }

    #[test]
    fn with_helpers_adjust_launch() {
        let w = rsbench::build(&rsbench::Params::default());
        assert_eq!(with_warps(&w, 2).launch.num_warps, 2);
        assert_eq!(with_seed(&w, 9).launch.seed, 9);
    }

    #[test]
    fn comparison_ratios() {
        let mk = |cycles, eff| RunSummary { simt_eff: eff, roi_eff: eff, cycles, barrier_ops: 0 };
        let c = Comparison { name: "t".into(), baseline: mk(200, 0.2), speculative: mk(100, 0.5) };
        assert!((c.speedup() - 2.0).abs() < 1e-12);
        assert!((c.efficiency_gain() - 2.5).abs() < 1e-12);
    }
}
