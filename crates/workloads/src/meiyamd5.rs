//! MeiyaMD5 — MD5 hash reversal.
//!
//! Each task tests a batch of candidate pre-images against a target
//! digest; batch sizes are heavily load-imbalanced (the search space is
//! partitioned unevenly), and each candidate costs a fixed block of
//! genuinely compute-dense MD5-style rounds. The paper calls this "a
//! load-imbalanced, compute-heavy inner loop making it the ideal
//! candidate for Loop Merge" (§5.4).
//!
//! The inner body implements real MD5-round arithmetic (F function,
//! rotate-left, additive constants) on 32-bit values carried in our i64
//! registers — compute with zero memory traffic.

use crate::common::{begin_task_loop, emit_hash, MEM_BASE, QUEUE_ADDR};
use crate::{DivergencePattern, Workload};
use simt_ir::{BinOp, FuncKind, FunctionBuilder, Module, Reg, Value};
use simt_sim::Launch;

/// Tunable workload size.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of candidate batches (tasks).
    pub num_tasks: i64,
    /// Warps in the launch.
    pub num_warps: usize,
    /// Maximum candidates per batch; actual counts are `(h % max)^2 / max`
    /// — a skewed (quadratic) imbalance.
    pub max_candidates: i64,
    /// MD5-ish rounds per candidate.
    pub rounds: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self { num_tasks: 384, num_warps: 4, max_candidates: 48, rounds: 4, seed: 0x5EED_0007 }
    }
}

/// Memory layout of the launch built by [`build`].
#[derive(Clone, Copy, Debug)]
pub struct MemLayout {
    /// Base of the per-task best-digest output.
    pub result_base: i64,
}

/// Computes the memory layout for the given parameters.
pub fn layout(_p: &Params) -> MemLayout {
    MemLayout { result_base: MEM_BASE }
}

const MASK32: i64 = 0xFFFF_FFFF;

/// Emits one MD5-style round: `a = b + rotl(a + F(b,c,d) + x + k, s)` with
/// `F(b,c,d) = (b & c) | (!b & d)`, all in 32-bit arithmetic.
#[allow(clippy::too_many_arguments)] // mirrors the MD5 round signature
fn emit_md5_round(
    b: &mut FunctionBuilder,
    a: Reg,
    bb: Reg,
    c: Reg,
    d: Reg,
    x: Reg,
    k: i64,
    s: i64,
) {
    use BinOp::*;
    let bc = b.bin(And, bb, c);
    let nb = b.bin(Xor, bb, MASK32);
    let nbd = b.bin(And, nb, d);
    let f = b.bin(Or, bc, nbd);
    let t0 = b.bin(Add, a, f);
    let t1 = b.bin(Add, t0, x);
    let t2 = b.bin(Add, t1, k);
    let t2m = b.bin(And, t2, MASK32);
    let hi = b.bin(Shl, t2m, s);
    let lo = b.bin(Shr, t2m, 32 - s);
    let rot0 = b.bin(Or, hi, lo);
    let rot = b.bin(And, rot0, MASK32);
    let sum = b.bin(Add, bb, rot);
    let out = b.bin(And, sum, MASK32);
    b.mov_into(a, out);
}

/// Builds the MeiyaMD5 workload.
pub fn build(p: &Params) -> Workload {
    let l = layout(p);
    let mut b = FunctionBuilder::new("meiyamd5", FuncKind::Kernel, 0);
    b.predict_label("digest_loop", None);
    let tl = begin_task_loop(&mut b, p.num_tasks);

    // ---- Prolog: batch size (quadratically skewed) ------------------------
    let h = emit_hash(&mut b, tl.task);
    let m0 = b.bin(BinOp::Rem, h, p.max_candidates);
    let sq = b.bin(BinOp::Mul, m0, m0);
    let skew = b.bin(BinOp::Div, sq, p.max_candidates);
    let count = b.bin(BinOp::Add, skew, 1i64);
    let best = b.mov(0i64);
    let i = b.mov(0i64);
    let digest_loop = b.block("digest_loop");
    let out_blk = b.block("out");
    b.jmp(digest_loop);

    // ---- Inner loop: hash one candidate ------------------------------------
    b.switch_to(digest_loop);
    b.mark_roi();
    // Candidate word derived from (task, i).
    let cand0 = b.bin(BinOp::Mul, i, 2654435761i64);
    let cand1 = b.bin(BinOp::Xor, cand0, h);
    let x = b.bin(BinOp::And, cand1, MASK32);
    // MD5 state init (standard IV words).
    let a = b.mov(0x67452301i64);
    let bb2 = b.mov(0xefcdab89i64);
    let c = b.mov(0x98badcfei64);
    let d = b.mov(0x10325476i64);
    for r in 0..p.rounds {
        emit_md5_round(&mut b, a, bb2, c, d, x, 0xd76aa478 + r * 0x1000, 7 + (r % 4) * 5);
        emit_md5_round(&mut b, d, a, bb2, c, x, 0xe8c7b756 - r * 0x333, 12);
    }
    let better = b.bin(BinOp::Gt, a, best);
    let nb = b.sel(better, a, best);
    b.mov_into(best, nb);
    b.bin_into(i, BinOp::Add, i, 1i64);
    let more = b.bin(BinOp::Lt, i, count);
    b.br_div(more, digest_loop, out_blk);

    // ---- Epilog -------------------------------------------------------------
    b.switch_to(out_blk);
    let slot = b.bin(BinOp::Add, tl.task, l.result_base);
    b.store_global(best, slot);
    b.jmp(tl.fetch);

    let mut module = Module::new();
    module.add_function(b.finish());

    let mut launch = Launch::new("meiyamd5", p.num_warps);
    launch.seed = p.seed;
    let mem_len = (l.result_base + p.num_tasks) as usize;
    let mut mem = vec![Value::I64(0); mem_len];
    mem[QUEUE_ADDR as usize] = Value::I64(0);
    launch.global_mem = mem;

    Workload {
        name: "meiyamd5",
        description: "Performs Message-Digest algorithm 5 (MD5) hash reverses. Contains a \
                      load-imbalanced, compute-heavy inner loop — the ideal Loop Merge \
                      candidate.",
        pattern: DivergencePattern::LoopMerge,
        module,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::compare;
    use simt_sim::SimConfig;

    fn small() -> Workload {
        build(&Params { num_tasks: 96, num_warps: 1, ..Params::default() })
    }

    #[test]
    fn sr_improves_efficiency_substantially() {
        let cmp = compare(&small(), &SimConfig::default()).unwrap();
        assert!(
            cmp.speculative.simt_eff > cmp.baseline.simt_eff + 0.1,
            "eff: {} -> {}",
            cmp.baseline.simt_eff,
            cmp.speculative.simt_eff
        );
    }

    #[test]
    fn digests_stay_in_32_bits_and_are_nonzero() {
        let w = small();
        let (_, mem) = crate::eval::run_config(
            &w,
            &specrecon_core::CompileOptions::baseline(),
            &SimConfig::default(),
        )
        .unwrap();
        let l = layout(&Params::default());
        let mut nonzero = 0;
        for t in 0..96usize {
            let v = mem[(l.result_base as usize) + t].as_i64();
            assert!((0..=MASK32).contains(&v), "task {t}: digest {v:#x}");
            if v != 0 {
                nonzero += 1;
            }
        }
        assert!(nonzero > 90, "most digests should be nonzero, got {nonzero}");
    }

    #[test]
    fn quadratic_skew_makes_baseline_divergent() {
        let cmp = compare(&small(), &SimConfig::default()).unwrap();
        assert!(cmp.baseline.simt_eff < 0.55, "baseline eff {}", cmp.baseline.simt_eff);
    }
}
