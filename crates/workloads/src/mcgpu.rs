//! MC-GPU — Monte Carlo x-ray transport for CT imaging.
//!
//! Photon histories step through the anatomy; at each interaction point a
//! random channel is chosen: photoelectric absorption (terminates),
//! Compton scattering (the expensive common code: Klein–Nishina sampling),
//! or Rayleigh scattering (cheap). Iteration-Delay on the Compton block
//! collects scattering photons across steps.

use crate::common::{begin_task_loop, emit_hash, MEM_BASE, QUEUE_ADDR};
use crate::{DivergencePattern, Workload};
use simt_ir::{BinOp, FuncKind, FunctionBuilder, Module, UnOp, Value};
use simt_sim::Launch;

/// Tunable workload size.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of photon histories (tasks).
    pub num_photons: i64,
    /// Warps in the launch.
    pub num_warps: usize,
    /// Probability of photoelectric absorption (terminates the photon).
    pub absorb_p: f64,
    /// Probability of Compton scattering (expensive), conditioned on
    /// not absorbing.
    pub compton_p: f64,
    /// Maximum interactions per photon.
    pub max_steps: i64,
    /// Synthetic cycles for Compton sampling.
    pub compton_work: u32,
    /// Synthetic cycles for Rayleigh sampling (cheap path).
    pub rayleigh_work: u32,
    /// Voxel grid size (scatter-store target).
    pub grid_len: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            num_photons: 512,
            num_warps: 4,
            absorb_p: 0.08,
            compton_p: 0.45,
            max_steps: 40,
            compton_work: 95,
            rayleigh_work: 6,
            grid_len: 1024,
            seed: 0x5EED_0005,
        }
    }
}

/// Memory layout of the launch built by [`build`].
#[derive(Clone, Copy, Debug)]
pub struct MemLayout {
    /// Base of the voxel dose grid.
    pub grid_base: i64,
    /// Base of the per-photon path-length output.
    pub result_base: i64,
}

/// Computes the memory layout for the given parameters.
pub fn layout(p: &Params) -> MemLayout {
    let grid_base = MEM_BASE;
    let result_base = grid_base + p.grid_len;
    MemLayout { grid_base, result_base }
}

/// Builds the MC-GPU workload.
pub fn build(p: &Params) -> Workload {
    let l = layout(p);
    let mut b = FunctionBuilder::new("mcgpu", FuncKind::Kernel, 0);
    b.predict_label("compton", None);
    let tl = begin_task_loop(&mut b, p.num_photons);

    let h = emit_hash(&mut b, tl.task);
    let pos = b.bin(BinOp::And, h, 0x3FF_i64);
    let weight = b.mov(1.0f64);
    let step = b.mov(0i64);
    let fly = b.block("fly");
    let choice = b.block("channel_choice");
    let compton = b.block("compton");
    let rayleigh = b.block("rayleigh");
    let interact_done = b.block("interact_done");
    let absorb = b.block("absorb");
    b.jmp(fly);

    // ---- Flight + channel selection ---------------------------------------
    b.switch_to(fly);
    let u = b.rng_unit();
    let logu = b.un(UnOp::Log, u);
    let path = b.un(UnOp::Neg, logu);
    // Deposit dose along the way (scatter store into the voxel grid).
    let voxel0 = b.bin(BinOp::Mul, pos, 13i64);
    let voxel1 = b.bin(BinOp::Add, voxel0, step);
    let voxel = b.bin(BinOp::Rem, voxel1, p.grid_len);
    let vaddr = b.bin(BinOp::Add, voxel, l.grid_base);
    // Atomic dose deposit: voxels are shared across photons and warps.
    b.atomic_add(vaddr, path);
    let c0 = b.rng_unit();
    let absorbed = b.bin(BinOp::Lt, c0, p.absorb_p);
    b.br_div(absorbed, absorb, choice);

    // ---- Channel selection: Compton vs Rayleigh ---------------------------
    b.switch_to(choice);
    let c1 = b.rng_unit();
    let is_compton = b.bin(BinOp::Lt, c1, p.compton_p);
    b.br_div(is_compton, compton, rayleigh);

    // ---- Compton: the expensive common code -------------------------------
    b.switch_to(compton);
    b.mark_roi();
    b.work(p.compton_work);
    let w2 = b.bin(BinOp::Mul, weight, 0.96f64);
    b.mov_into(weight, w2);
    b.jmp(interact_done);

    // ---- Rayleigh: the cheap path ------------------------------------------
    b.switch_to(rayleigh);
    b.work(p.rayleigh_work);
    b.jmp(interact_done);

    // ---- Step epilog --------------------------------------------------------
    b.switch_to(interact_done);
    b.bin_into(step, BinOp::Add, step, 1i64);
    let in_cap = b.bin(BinOp::Lt, step, p.max_steps);
    b.br_div(in_cap, fly, absorb);

    b.switch_to(absorb);
    let slot = b.bin(BinOp::Add, tl.task, l.result_base);
    b.store_global(weight, slot);
    b.jmp(tl.fetch);

    let mut module = Module::new();
    module.add_function(b.finish());

    let mut launch = Launch::new("mcgpu", p.num_warps);
    launch.seed = p.seed;
    let mem_len = (l.result_base + p.num_photons) as usize;
    let mut mem = vec![Value::I64(0); mem_len];
    mem[QUEUE_ADDR as usize] = Value::I64(0);
    launch.global_mem = mem;

    Workload {
        name: "mc-gpu",
        description: "A GPU-accelerated Monte Carlo simulation that models radiation transport \
                      of x-rays for CT scans of the human anatomy. The Compton-scatter channel \
                      is the expensive common code inside the interaction loop.",
        pattern: DivergencePattern::IterationDelay,
        module,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::compare;
    use simt_sim::SimConfig;

    fn small() -> Workload {
        build(&Params { num_photons: 96, num_warps: 1, ..Params::default() })
    }

    #[test]
    fn compton_converges_under_sr() {
        let cmp = compare(&small(), &SimConfig::default()).unwrap();
        assert!(
            cmp.speculative.roi_eff > cmp.baseline.roi_eff + 0.15,
            "roi eff: {} -> {}",
            cmp.baseline.roi_eff,
            cmp.speculative.roi_eff
        );
    }

    #[test]
    fn dose_grid_is_written() {
        let w = small();
        let (_, mem) = crate::eval::run_config(
            &w,
            &specrecon_core::CompileOptions::baseline(),
            &SimConfig::default(),
        )
        .unwrap();
        let l = layout(&Params { num_photons: 96, num_warps: 1, ..Params::default() });
        let touched =
            (0..1024).filter(|i| mem[(l.grid_base as usize) + i] != Value::I64(0)).count();
        assert!(touched > 100, "dose grid barely touched: {touched}");
    }
}
