//! Synthetic application corpus for the §5.4 study.
//!
//! The paper scans a database of 520 CUDA applications: 75 had SIMT
//! efficiency below ~80%, the detector found non-trivial opportunity in
//! 16, and 5 showed significant improvement. We reproduce the *funnel*
//! with a seeded synthetic corpus whose composition mirrors the paper's
//! observation that divergent workloads are a small fraction of GPU
//! applications: most kernels are convergent or mildly divergent, a
//! minority exhibit the §3 patterns with varying profitability.

use crate::common::{begin_task_loop, emit_hash};
use crate::{DivergencePattern, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simt_ir::{BinOp, FuncKind, FunctionBuilder, Module, Value};
use simt_sim::Launch;

/// The composition classes of synthetic kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelClass {
    /// Straight-line or uniformly-branching kernels: fully convergent.
    Convergent,
    /// A divergent branch with only trivial code behind it: low
    /// efficiency impact, nothing to gain.
    MildlyDivergent,
    /// Iteration-Delay pattern with an expensive divergent block.
    IterationDelayRich,
    /// Iteration-Delay pattern with a cheap divergent block (detected as
    /// a pattern, but unprofitable).
    IterationDelayPoor,
    /// Loop-Merge pattern with an expensive inner loop.
    LoopMergeRich,
}

/// One corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Synthetic application id.
    pub id: usize,
    /// Which class the generator drew.
    pub class: KernelClass,
    /// The runnable workload.
    pub workload: Workload,
}

/// Generates a corpus of `size` kernels with the paper-like composition;
/// deterministic in `seed`.
///
/// Composition (matching §5.4's funnel proportions): ~85% convergent or
/// mildly divergent, ~15% carrying a detectable pattern, of which a
/// minority are actually profitable.
pub fn generate(size: usize, seed: u64) -> Vec<CorpusEntry> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(size);
    for id in 0..size {
        let roll: f64 = rng.gen();
        let class = if roll < 0.80 {
            KernelClass::Convergent
        } else if roll < 0.885 {
            KernelClass::MildlyDivergent
        } else if roll < 0.905 {
            KernelClass::IterationDelayRich
        } else if roll < 0.985 {
            KernelClass::IterationDelayPoor
        } else {
            KernelClass::LoopMergeRich
        };
        let workload = build_kernel(id, class, &mut rng);
        out.push(CorpusEntry { id, class, workload });
    }
    out
}

fn build_kernel(id: usize, class: KernelClass, rng: &mut SmallRng) -> Workload {
    match class {
        KernelClass::Convergent => convergent_kernel(id, rng),
        KernelClass::MildlyDivergent => divergent_condition_kernel(id, rng, 2, false),
        KernelClass::IterationDelayRich => {
            let work = rng.gen_range(45..90);
            divergent_condition_kernel(id, rng, work, true)
        }
        KernelClass::IterationDelayPoor => {
            let work = rng.gen_range(2..6);
            divergent_condition_kernel(id, rng, work, true)
        }
        KernelClass::LoopMergeRich => loop_merge_kernel(id, rng),
    }
}

/// A convergent streaming kernel: uniform loop, coalesced accesses.
fn convergent_kernel(id: usize, rng: &mut SmallRng) -> Workload {
    let iters = rng.gen_range(8..24) as i64;
    let mut b = FunctionBuilder::new(format!("corpus_{id}"), FuncKind::Kernel, 0);
    let tid = b.special(simt_ir::SpecialValue::Tid);
    let acc = b.mov(0i64);
    let i = b.mov(0i64);
    let l = b.block("loop");
    let out = b.block("out");
    b.jmp(l);
    b.switch_to(l);
    let t = b.bin(BinOp::Mul, i, 3i64);
    b.bin_into(acc, BinOp::Add, acc, t);
    b.work(4);
    b.bin_into(i, BinOp::Add, i, 1i64);
    let more = b.bin(BinOp::Lt, i, iters);
    b.br(more, l, out); // uniform: every thread runs `iters` iterations
    b.switch_to(out);
    let slot = b.bin(BinOp::Add, tid, 1i64);
    b.store_global(acc, slot);
    b.exit();
    finish(id, b, rng, "convergent streaming kernel")
}

/// A loop with a divergent condition; `work` controls the common-code
/// cost; `annotatable` leaves the loop un-synchronized so the detector
/// may fire.
fn divergent_condition_kernel(
    id: usize,
    rng: &mut SmallRng,
    work: u32,
    annotatable: bool,
) -> Workload {
    let iters = rng.gen_range(12..28) as i64;
    let p: f64 = rng.gen_range(0.15..0.4);
    let mut b = FunctionBuilder::new(format!("corpus_{id}"), FuncKind::Kernel, 0);
    let tid = b.special(simt_ir::SpecialValue::Tid);
    let h = emit_hash(&mut b, tid);
    b.seed_rng(h);
    let acc = b.mov(0i64);
    let i = b.mov(0i64);
    let l = b.block("loop");
    let expensive = b.block("expensive");
    let epilog = b.block("epilog");
    let out = b.block("out");
    b.jmp(l);
    b.switch_to(l);
    let u = b.rng_unit();
    let taken = b.bin(BinOp::Lt, u, p);
    b.br_div(taken, expensive, epilog);
    b.switch_to(expensive);
    b.mark_roi();
    b.work(work);
    b.bin_into(acc, BinOp::Add, acc, 7i64);
    b.jmp(epilog);
    b.switch_to(epilog);
    b.bin_into(i, BinOp::Add, i, 1i64);
    let more = b.bin(BinOp::Lt, i, iters);
    b.br_div(more, l, out);
    b.switch_to(out);
    let slot = b.bin(BinOp::Add, tid, 1i64);
    b.store_global(acc, slot);
    b.exit();
    let _ = annotatable;
    finish(id, b, rng, "loop with a divergent condition")
}

/// A nested loop with a divergent trip count around an expensive body —
/// the RSBench shape: heavy-tailed trip counts, several tasks per thread,
/// a compute-dense inner body, and a thin prolog.
fn loop_merge_kernel(id: usize, rng: &mut SmallRng) -> Workload {
    let tasks = 256i64;
    let max_trip = rng.gen_range(32..96) as i64;
    let work = rng.gen_range(25..55);
    let mut b = FunctionBuilder::new(format!("corpus_{id}"), FuncKind::Kernel, 0);
    let tl = begin_task_loop(&mut b, tasks);
    let h = emit_hash(&mut b, tl.task);
    // Quadratic skew: most tasks are short, a few are very long.
    let t0 = b.bin(BinOp::Rem, h, max_trip);
    let tsq = b.bin(BinOp::Mul, t0, t0);
    let tskew = b.bin(BinOp::Div, tsq, max_trip);
    let trip = b.bin(BinOp::Add, tskew, 1i64);
    let acc = b.mov(0i64);
    let j = b.mov(0i64);
    let inner = b.block("inner");
    let epilog = b.block("epilog");
    b.jmp(inner);
    b.switch_to(inner);
    b.mark_roi();
    b.work(work);
    b.bin_into(acc, BinOp::Add, acc, j);
    b.bin_into(j, BinOp::Add, j, 1i64);
    let more = b.bin(BinOp::Lt, j, trip);
    b.br_div(more, inner, epilog);
    b.switch_to(epilog);
    let slot = b.bin(BinOp::Add, tl.task, 1i64);
    b.store_global(acc, slot);
    b.jmp(tl.fetch);
    finish_sized(id, b, rng, "nested loop with divergent trip count", 257)
}

fn finish(id: usize, b: FunctionBuilder, rng: &mut SmallRng, desc: &'static str) -> Workload {
    finish_sized(id, b, rng, desc, 257)
}

fn finish_sized(
    id: usize,
    b: FunctionBuilder,
    rng: &mut SmallRng,
    desc: &'static str,
    mem_len: usize,
) -> Workload {
    let f = b.finish();
    let kernel = f.name.clone();
    let mut module = Module::new();
    module.add_function(f);
    let mut launch = Launch::new(kernel, 2);
    launch.seed = rng.gen();
    launch.global_mem = vec![Value::I64(0); mem_len.max(1 + 256)];
    let _ = id;
    Workload {
        name: "corpus",
        description: desc,
        pattern: DivergencePattern::IterationDelay,
        module,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let a = generate(40, 7);
        let b = generate(40, 7);
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.class, y.class);
            assert_eq!(x.workload.module, y.workload.module);
        }
    }

    #[test]
    fn composition_is_mostly_convergent() {
        let corpus = generate(200, 42);
        let convergent = corpus
            .iter()
            .filter(|e| matches!(e.class, KernelClass::Convergent | KernelClass::MildlyDivergent))
            .count();
        assert!(
            convergent > 150,
            "divergent workloads should be a small fraction, got {convergent}/200 convergent"
        );
    }

    #[test]
    fn every_corpus_kernel_verifies_and_runs() {
        use simt_sim::{run, SimConfig};
        use specrecon_core::{compile, CompileOptions};
        for e in generate(24, 3) {
            simt_ir::assert_verified(&e.workload.module);
            let compiled = compile(&e.workload.module, &CompileOptions::baseline()).unwrap();
            let out = run(&compiled.module, &SimConfig::default(), &e.workload.launch)
                .unwrap_or_else(|err| panic!("corpus kernel {} failed: {err}", e.id));
            assert!(out.metrics.issues > 0);
        }
    }
}
