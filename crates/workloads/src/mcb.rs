//! MCB — LLNL's Monte Carlo Benchmark (simplified heuristic transport).
//!
//! Iteration-Delay shape: each particle takes a random number of flight
//! segments; on a fraction of segments it suffers a *collision*, whose
//! physics (cross-section evaluation, direction resampling) is the
//! expensive common code. Under PDOM the collision block executes with
//! whatever sub-mask happened to collide this segment; the annotation
//! collects colliding threads across segments instead.

use crate::common::{begin_task_loop, emit_hash, MEM_BASE, QUEUE_ADDR};
use crate::{DivergencePattern, Workload};
use simt_ir::{BinOp, FuncKind, FunctionBuilder, Module, UnOp, Value};
use simt_sim::Launch;

/// Tunable workload size.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of particles (tasks).
    pub num_particles: i64,
    /// Warps in the launch.
    pub num_warps: usize,
    /// Probability a segment ends in a collision.
    pub collision_p: f64,
    /// Probability the particle is absorbed after any segment.
    pub absorb_p: f64,
    /// Maximum segments per particle.
    pub max_segments: i64,
    /// Synthetic cycles of collision physics (the expensive block).
    pub collision_work: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            num_particles: 512,
            num_warps: 4,
            collision_p: 0.3,
            absorb_p: 0.06,
            max_segments: 48,
            collision_work: 55,
            seed: 0x5EED_0003,
        }
    }
}

/// Memory layout of the launch built by [`build`].
#[derive(Clone, Copy, Debug)]
pub struct MemLayout {
    /// Base of the per-particle tally output.
    pub result_base: i64,
}

/// Computes the memory layout for the given parameters.
pub fn layout(_p: &Params) -> MemLayout {
    MemLayout { result_base: MEM_BASE }
}

/// Builds the MCB workload.
pub fn build(p: &Params) -> Workload {
    let l = layout(p);
    let mut b = FunctionBuilder::new("mcb", FuncKind::Kernel, 0);
    b.predict_label("collision", None);
    let tl = begin_task_loop(&mut b, p.num_particles);

    // ---- Per-particle setup ----------------------------------------------
    let h = emit_hash(&mut b, tl.task);
    let energy = b.bin(BinOp::And, h, 0xFF_i64);
    let tally = b.mov(0.0f64);
    let seg = b.mov(0i64);
    let segment = b.block("segment");
    let collision = b.block("collision");
    let post = b.block("post_collision");
    let tally_out = b.block("tally_out");
    b.jmp(segment);

    // ---- Segment loop: free flight, then maybe collide --------------------
    b.switch_to(segment);
    // Free-flight distance sample (cheap).
    let u = b.rng_unit();
    let d = b.un(UnOp::Log, u);
    let dist = b.un(UnOp::Neg, d);
    b.bin_into(tally, BinOp::Add, tally, dist);
    let c = b.rng_unit();
    let collide = b.bin(BinOp::Lt, c, p.collision_p);
    b.br_div(collide, collision, post);

    // ---- Collision physics: the expensive common code ---------------------
    b.switch_to(collision);
    b.mark_roi();
    b.work(p.collision_work);
    let e2 = b.bin(BinOp::Mul, energy, 7i64);
    let e3 = b.bin(BinOp::Rem, e2, 251i64);
    let ef = b.un(UnOp::ItoF, e3);
    let scat = b.un(UnOp::Sqrt, ef);
    b.bin_into(tally, BinOp::Add, tally, scat);
    b.jmp(post);

    // ---- Segment epilog: absorption roulette + cap -------------------------
    b.switch_to(post);
    b.bin_into(seg, BinOp::Add, seg, 1i64);
    let a = b.rng_unit();
    let survive = b.bin(BinOp::Ge, a, p.absorb_p);
    let in_cap = b.bin(BinOp::Lt, seg, p.max_segments);
    let go_on = b.bin(BinOp::And, survive, in_cap);
    b.br_div(go_on, segment, tally_out);

    b.switch_to(tally_out);
    let slot = b.bin(BinOp::Add, tl.task, l.result_base);
    b.store_global(tally, slot);
    b.jmp(tl.fetch);

    let mut module = Module::new();
    module.add_function(b.finish());

    let mut launch = Launch::new("mcb", p.num_warps);
    launch.seed = p.seed;
    let mem_len = (l.result_base + p.num_particles) as usize;
    let mut mem = vec![Value::I64(0); mem_len];
    mem[QUEUE_ADDR as usize] = Value::I64(0);
    launch.global_mem = mem;

    Workload {
        name: "mcb",
        description: "A Monte Carlo benchmark used to test performance of parallel \
                      architectures; simulates a simplified variant of the heuristic transport \
                      equation. A divergent collision branch inside the segment loop holds the \
                      expensive common code.",
        pattern: DivergencePattern::IterationDelay,
        module,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::compare;
    use simt_sim::SimConfig;

    fn small() -> Workload {
        build(&Params { num_particles: 96, num_warps: 1, ..Params::default() })
    }

    #[test]
    fn collision_block_converges_under_sr() {
        let cmp = compare(&small(), &SimConfig::default()).unwrap();
        assert!(
            cmp.speculative.roi_eff > cmp.baseline.roi_eff + 0.2,
            "roi eff: {} -> {}",
            cmp.baseline.roi_eff,
            cmp.speculative.roi_eff
        );
    }

    #[test]
    fn baseline_collision_mask_is_thin() {
        // ~30% of lanes collide per segment: the PDOM collision mask sits
        // around the collision probability.
        let cmp = compare(&small(), &SimConfig::default()).unwrap();
        assert!(cmp.baseline.roi_eff < 0.55, "baseline roi {}", cmp.baseline.roi_eff);
    }

    #[test]
    fn sr_does_not_slow_down_badly() {
        // Iteration Delay trades serialized prolog/epilog for collision
        // convergence; on this configuration it should at worst be mildly
        // slower and typically faster.
        let cmp = compare(&small(), &SimConfig::default()).unwrap();
        assert!(cmp.speedup() > 0.9, "speedup {}", cmp.speedup());
    }
}
