//! PathTracer — Monte Carlo light transport in a Cornell box of spheres.
//!
//! Loop-trip-count divergence: each sample traces one or more bounces, and
//! Russian Roulette terminates paths randomly, so per-sample bounce counts
//! vary wildly. The bounce body (sphere intersection + BRDF sampling) is
//! expensive; fetching a new sample is *cheap* — which is why the paper
//! finds PathTracer fastest at full reconvergence in Figure 9 (threshold
//! at the warp width): idle lanes should be refilled immediately.

use crate::common::{begin_task_loop, emit_hash, MEM_BASE, QUEUE_ADDR};
use crate::{DivergencePattern, Workload};
use simt_ir::{BinOp, FuncKind, FunctionBuilder, Module, UnOp, Value};
use simt_sim::Launch;

/// Tunable workload size.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of samples (tasks).
    pub num_samples: i64,
    /// Warps in the launch.
    pub num_warps: usize,
    /// Russian-roulette continuation probability per bounce.
    pub continue_p: f64,
    /// Maximum bounces per path.
    pub max_bounces: i64,
    /// Synthetic cycles per intersection test (the expensive body).
    pub intersect_work: u32,
    /// Number of spheres in the scene table.
    pub num_spheres: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            num_samples: 512,
            num_warps: 4,
            continue_p: 0.72,
            max_bounces: 24,
            intersect_work: 48,
            num_spheres: 64,
            seed: 0x5EED_0004,
        }
    }
}

/// Memory layout of the launch built by [`build`].
#[derive(Clone, Copy, Debug)]
pub struct MemLayout {
    /// Base of the sphere table.
    pub spheres_base: i64,
    /// Base of the per-sample radiance output.
    pub result_base: i64,
}

/// Computes the memory layout for the given parameters.
pub fn layout(p: &Params) -> MemLayout {
    let spheres_base = MEM_BASE;
    let result_base = spheres_base + p.num_spheres;
    MemLayout { spheres_base, result_base }
}

/// Builds the PathTracer workload.
pub fn build(p: &Params) -> Workload {
    let l = layout(p);
    let mut b = FunctionBuilder::new("pathtracer", FuncKind::Kernel, 0);
    b.predict_label("bounce", None);
    let tl = begin_task_loop(&mut b, p.num_samples);

    // ---- Prolog: camera-ray setup (cheap) --------------------------------
    let h = emit_hash(&mut b, tl.task);
    let radiance = b.mov(0.0f64);
    let depth = b.mov(0i64);
    let ray = b.bin(BinOp::And, h, 0x3FF_i64);
    let bounce = b.block("bounce");
    let shade = b.block("shade");
    b.jmp(bounce);

    // ---- Bounce loop: intersect scene + BRDF sample (expensive) ---------
    b.switch_to(bounce);
    b.mark_roi();
    // Nearest-sphere lookup: one gather plus heavy intersection math.
    let mix = b.bin(BinOp::Mul, ray, 29i64);
    let dmix = b.bin(BinOp::Add, mix, depth);
    let sid = b.bin(BinOp::Rem, dmix, p.num_spheres);
    let saddr = b.bin(BinOp::Add, sid, l.spheres_base);
    let sphere = b.load_global(saddr);
    b.work(p.intersect_work);
    let dot = b.bin(BinOp::Mul, sphere, 0.125f64);
    let root = b.un(UnOp::Sqrt, dot);
    b.bin_into(radiance, BinOp::Add, radiance, root);
    b.bin_into(depth, BinOp::Add, depth, 1i64);
    // Russian roulette + max-depth cutoff.
    let u = b.rng_unit();
    let alive = b.bin(BinOp::Lt, u, p.continue_p);
    let below_max = b.bin(BinOp::Lt, depth, p.max_bounces);
    let go_on = b.bin(BinOp::And, alive, below_max);
    b.br_div(go_on, bounce, shade);

    // ---- Epilog: accumulate radiance (cheap refill) ----------------------
    b.switch_to(shade);
    let slot = b.bin(BinOp::Add, tl.task, l.result_base);
    b.store_global(radiance, slot);
    b.jmp(tl.fetch);

    let mut module = Module::new();
    module.add_function(b.finish());

    let mut launch = Launch::new("pathtracer", p.num_warps);
    launch.seed = p.seed;
    let mem_len = (l.result_base + p.num_samples) as usize;
    let mut mem = vec![Value::I64(0); mem_len];
    mem[QUEUE_ADDR as usize] = Value::I64(0);
    let mut state = p.seed | 1;
    for i in 0..p.num_spheres as usize {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
        mem[(l.spheres_base as usize) + i] = Value::F64(unit * 4.0);
    }
    launch.global_mem = mem;

    Workload {
        name: "pathtracer",
        description: "A CUDA microbenchmark that renders a sample scene of spheres in a Cornell \
                      box. Russian Roulette randomly terminates paths, giving loop trip count \
                      divergence; refilling an idle thread with a new sample is cheap.",
        pattern: DivergencePattern::LoopMerge,
        module,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{compare, compare_with, with_threshold};
    use simt_sim::SimConfig;
    use specrecon_core::CompileOptions;

    fn small() -> Workload {
        build(&Params { num_samples: 96, num_warps: 1, ..Params::default() })
    }

    #[test]
    fn speculative_improves_efficiency_and_speed() {
        let cmp = compare(&small(), &SimConfig::default()).unwrap();
        assert!(
            cmp.speculative.simt_eff > cmp.baseline.simt_eff + 0.1,
            "eff: {} -> {}",
            cmp.baseline.simt_eff,
            cmp.speculative.simt_eff
        );
        assert!(cmp.speedup() > 1.1, "speedup {}", cmp.speedup());
    }

    #[test]
    fn roulette_produces_divergent_baseline() {
        let cmp = compare(&small(), &SimConfig::default()).unwrap();
        assert!(cmp.baseline.simt_eff < 0.6, "baseline eff {}", cmp.baseline.simt_eff);
    }

    #[test]
    fn full_barrier_beats_low_threshold() {
        // PathTracer's Figure-9 shape: cheap refill means maximal
        // convergence wins; a tiny threshold (near-free-running) is worse.
        let w = small();
        let cfg = SimConfig::default();
        let full = compare(&w, &cfg).unwrap();
        let low =
            compare_with(&with_threshold(&w, 2), &CompileOptions::speculative(), &cfg).unwrap();
        assert!(
            full.speculative.cycles < low.speculative.cycles,
            "full {} vs threshold-2 {}",
            full.speculative.cycles,
            low.speculative.cycles
        );
    }
}
