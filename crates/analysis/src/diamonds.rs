//! If/else diamond detection over the decoded CFG.
//!
//! A *diamond* is the structural shape control-flow melding (DARM-style)
//! repairs: a divergent two-way branch whose arms are single basic blocks
//! with no other predecessors, both jumping to one common join block.
//! Anything larger (multi-block arms, shared arm blocks, critical edges
//! into an arm) is left to PDOM or Speculative Reconvergence, which
//! handle general region shapes.

use simt_ir::{BlockId, Function, Terminator};

/// One divergent if/else diamond: `branch` splits into `then_arm` /
/// `else_arm`, which both jump to `join`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Diamond {
    /// Block ending in the divergent two-way branch.
    pub branch: BlockId,
    /// Arm taken when the condition is non-zero.
    pub then_arm: BlockId,
    /// Arm taken when the condition is zero.
    pub else_arm: BlockId,
    /// The common join block both arms jump to.
    pub join: BlockId,
}

/// Finds every divergent if/else diamond in `func`.
///
/// The match is deliberately strict — each arm must be a single block
/// whose only predecessor is the branch, and both arms must end in an
/// unconditional jump to the same join — so a detected diamond can be
/// rewritten without touching any control flow outside the four blocks.
///
/// ```
/// use simt_ir::parse_module;
/// use simt_analysis::find_diamonds;
///
/// let m = parse_module(
///     "kernel @k(params=0, regs=2, barriers=0, entry=bb0) {\n\
///      bb0:\n  %r0 = rng.unit\n  %r1 = lt %r0, 0.5f\n  brdiv %r1, bb1, bb2\n\
///      bb1:\n  work 10\n  jmp bb3\n\
///      bb2:\n  work 20\n  jmp bb3\n\
///      bb3:\n  exit\n}\n",
/// ).unwrap();
/// let f = m.functions.iter().next().unwrap().1;
/// let ds = find_diamonds(f);
/// assert_eq!(ds.len(), 1);
/// assert_eq!(ds[0].branch.index(), 0);
/// assert_eq!(ds[0].join.index(), 3);
/// ```
pub fn find_diamonds(func: &Function) -> Vec<Diamond> {
    let preds = func.predecessors();
    let mut out = Vec::new();
    for (b, block) in func.blocks.iter() {
        let Terminator::Branch { then_bb, else_bb, divergent: true, .. } = block.term else {
            continue;
        };
        if then_bb == else_bb || then_bb == b || else_bb == b {
            continue;
        }
        if preds[then_bb].len() != 1 || preds[else_bb].len() != 1 {
            continue;
        }
        let (Terminator::Jump(tj), Terminator::Jump(ej)) =
            (&func.blocks[then_bb].term, &func.blocks[else_bb].term)
        else {
            continue;
        };
        if tj != ej {
            continue;
        }
        let join = *tj;
        if join == b || join == then_bb || join == else_bb {
            continue;
        }
        out.push(Diamond { branch: b, then_arm: then_bb, else_arm: else_bb, join });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_ir::parse_module;

    fn func_of(src: &str) -> Function {
        let m = parse_module(src).unwrap();
        let f = m.functions.iter().next().unwrap().1.clone();
        f
    }

    #[test]
    fn non_divergent_branch_is_not_a_diamond() {
        let f = func_of(
            "kernel @k(params=0, regs=2, barriers=0, entry=bb0) {\n\
             bb0:\n  %r0 = rng.unit\n  %r1 = lt %r0, 0.5f\n  br %r1, bb1, bb2\n\
             bb1:\n  work 10\n  jmp bb3\n\
             bb2:\n  work 20\n  jmp bb3\n\
             bb3:\n  exit\n}\n",
        );
        assert!(find_diamonds(&f).is_empty());
    }

    #[test]
    fn one_sided_branch_is_not_a_diamond() {
        // then-arm jumps straight to the join (no else arm block).
        let f = func_of(
            "kernel @k(params=0, regs=2, barriers=0, entry=bb0) {\n\
             bb0:\n  %r0 = rng.unit\n  %r1 = lt %r0, 0.5f\n  brdiv %r1, bb1, bb2\n\
             bb1:\n  work 10\n  jmp bb2\n\
             bb2:\n  exit\n}\n",
        );
        assert!(find_diamonds(&f).is_empty());
    }

    #[test]
    fn arm_with_extra_predecessor_is_rejected() {
        // bb1 is also reachable from bb3, so it is not a private arm.
        let f = func_of(
            "kernel @k(params=0, regs=2, barriers=0, entry=bb0) {\n\
             bb0:\n  %r0 = rng.unit\n  %r1 = lt %r0, 0.5f\n  brdiv %r1, bb1, bb2\n\
             bb1:\n  work 10\n  jmp bb4\n\
             bb2:\n  work 20\n  jmp bb4\n\
             bb3:\n  jmp bb1\n\
             bb4:\n  exit\n}\n",
        );
        assert!(find_diamonds(&f).is_empty());
    }

    #[test]
    fn diamond_inside_a_loop_is_found() {
        let f = func_of(
            "kernel @k(params=0, regs=4, barriers=0, entry=bb0) {\n\
             bb0:\n  %r2 = mov 0\n  jmp bb1\n\
             bb1:\n  %r0 = rng.unit\n  %r1 = lt %r0, 0.2f\n  brdiv %r1, bb2, bb3\n\
             bb2:\n  work 60\n  jmp bb4\n\
             bb3:\n  work 40\n  jmp bb4\n\
             bb4:\n  %r2 = add %r2, 1\n  %r1 = lt %r2, 20\n  brdiv %r1, bb1, bb5\n\
             bb5:\n  exit\n}\n",
        );
        let ds = find_diamonds(&f);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].branch, BlockId(1));
        assert_eq!(ds[0].then_arm, BlockId(2));
        assert_eq!(ds[0].else_arm, BlockId(3));
        assert_eq!(ds[0].join, BlockId(4));
    }
}
