//! The two barrier dataflow analyses of §4.2.1 of the paper, plus the
//! conflict detection of §4.3.
//!
//! - **Joined-barrier analysis** (Equation 1): a barrier is *joined* at a
//!   program point if some path from the entry reaches the point with a
//!   `JoinBarrier` not yet cleared by a `WaitBarrier`. Forward, may.
//! - **Barrier liveness** (Equation 2): a barrier is *live* at a point if
//!   some path ahead contains a `WaitBarrier` before any `JoinBarrier`.
//!   Backward, may.
//!
//! The paper's equations ignore `CancelBarrier` / `RejoinBarrier` because
//! they are inserted *after* these analyses run. When re-analyzing already
//! transformed code we treat `Rejoin` as a join, and `Cancel` as clearing
//! the joined state in the *forward* analysis: joined-ness is a per-thread
//! property tracked along paths, and the thread that executes the cancel
//! has left the barrier on that path. Liveness keeps ignoring `Cancel`
//! (a cancelled thread may re-join and wait later), which errs toward
//! keeping barriers live — the safe direction for `Rejoin` placement.

use crate::bitset::BitSet;
use crate::dataflow::{solve, DataflowProblem, DataflowResult, Direction};
use simt_ir::{BarrierId, BarrierOp, BlockId, Function, Inst};

fn scan_forward(func: &Function, block: BlockId, input: &BitSet) -> BitSet {
    let mut state = input.clone();
    for inst in &func.blocks[block].insts {
        apply_forward(inst, &mut state);
    }
    state
}

fn apply_forward(inst: &Inst, state: &mut BitSet) {
    if let Inst::Barrier(op) = inst {
        match op {
            BarrierOp::Join(b) | BarrierOp::Rejoin(b) => {
                state.insert(b.index());
            }
            BarrierOp::Wait(b) | BarrierOp::Cancel(b) => {
                state.remove(b.index());
            }
            // A mask copy makes the destination exactly as joined as the
            // source: the soft-barrier lowering waits on a copied mask, so
            // conflict detection must see it as joined.
            BarrierOp::Copy { dst, src } => {
                if state.contains(src.index()) {
                    state.insert(dst.index());
                } else {
                    state.remove(dst.index());
                }
            }
            BarrierOp::ArrivedCount { .. } => {}
        }
    }
}

fn scan_backward(func: &Function, block: BlockId, output: &BitSet) -> BitSet {
    let mut state = output.clone();
    for inst in func.blocks[block].insts.iter().rev() {
        apply_backward(inst, &mut state);
    }
    state
}

fn apply_backward(inst: &Inst, state: &mut BitSet) {
    if let Inst::Barrier(op) = inst {
        match op {
            BarrierOp::Wait(b) => {
                state.insert(b.index());
            }
            BarrierOp::Join(b) | BarrierOp::Rejoin(b) => {
                state.remove(b.index());
            }
            BarrierOp::Cancel(_) | BarrierOp::Copy { .. } | BarrierOp::ArrivedCount { .. } => {}
        }
    }
}

struct JoinedProblem<'a> {
    func: &'a Function,
}

impl DataflowProblem for JoinedProblem<'_> {
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn domain_size(&self) -> usize {
        self.func.num_barriers
    }
    fn transfer(&self, block: BlockId, input: &BitSet) -> BitSet {
        scan_forward(self.func, block, input)
    }
}

struct LivenessProblem<'a> {
    func: &'a Function,
}

impl DataflowProblem for LivenessProblem<'_> {
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn domain_size(&self) -> usize {
        self.func.num_barriers
    }
    fn transfer(&self, block: BlockId, output: &BitSet) -> BitSet {
        scan_backward(self.func, block, output)
    }
}

/// Result of the joined-barrier analysis (Equation 1).
#[derive(Clone, Debug)]
pub struct BarrierJoined {
    result: DataflowResult,
}

impl BarrierJoined {
    /// Runs the analysis.
    pub fn analyze(func: &Function) -> BarrierJoined {
        BarrierJoined { result: solve(func, &JoinedProblem { func }) }
    }

    /// Barriers joined at the entry of `block`.
    pub fn joined_in(&self, block: BlockId) -> &BitSet {
        &self.result.entry[block]
    }

    /// Barriers joined at the exit of `block`.
    pub fn joined_out(&self, block: BlockId) -> &BitSet {
        &self.result.exit[block]
    }

    /// Barriers joined just *before* instruction `inst_idx` of `block`
    /// (equal to the number of instructions for the point before the
    /// terminator).
    pub fn joined_before(&self, func: &Function, block: BlockId, inst_idx: usize) -> BitSet {
        let mut state = self.result.entry[block].clone();
        for inst in func.blocks[block].insts.iter().take(inst_idx) {
            apply_forward(inst, &mut state);
        }
        state
    }
}

/// Result of the barrier liveness analysis (Equation 2).
#[derive(Clone, Debug)]
pub struct BarrierLiveness {
    result: DataflowResult,
}

impl BarrierLiveness {
    /// Runs the analysis.
    pub fn analyze(func: &Function) -> BarrierLiveness {
        BarrierLiveness { result: solve(func, &LivenessProblem { func }) }
    }

    /// Barriers live at the entry of `block`.
    pub fn live_in(&self, block: BlockId) -> &BitSet {
        &self.result.entry[block]
    }

    /// Barriers live at the exit of `block`.
    pub fn live_out(&self, block: BlockId) -> &BitSet {
        &self.result.exit[block]
    }

    /// Barriers live just *after* instruction `inst_idx` of `block`.
    pub fn live_after(&self, func: &Function, block: BlockId, inst_idx: usize) -> BitSet {
        let insts = &func.blocks[block].insts;
        let mut state = self.result.exit[block].clone();
        for inst in insts.iter().skip(inst_idx + 1).rev() {
            apply_backward(inst, &mut state);
        }
        state
    }
}

/// A pair of conflicting barriers (§4.3): their joined ranges overlap
/// without either being contained in the other.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BarrierConflict {
    /// First barrier of the conflicting pair (lower id).
    pub a: BarrierId,
    /// Second barrier of the conflicting pair.
    pub b: BarrierId,
}

/// Finds all conflicting barrier pairs in `func`.
///
/// Two barriers conflict when their joined ranges overlap in a
/// *non-inclusive* manner (§4.3): each barrier's `WaitBarrier` can execute
/// at a program point where the other barrier is still joined, so the
/// ranges cross rather than nest. Threads could then wait for each other
/// at two different places inside the shared region. Concretely, `X` and
/// `Y` conflict iff some `Wait(X)` sits at a point where `Y` is joined
/// **and** some `Wait(Y)` sits at a point where `X` is joined — for nested
/// (inclusive) ranges only one direction holds, because the inner wait
/// clears the inner barrier before the outer wait is reached.
pub fn find_conflicts(func: &Function) -> Vec<BarrierConflict> {
    let joined = BarrierJoined::analyze(func);
    let nb = func.num_barriers;

    // waits_within[x][y]: some Wait(x) executes while y is joined.
    let mut waits_within = vec![vec![false; nb]; nb];
    for block in func.blocks.ids() {
        let mut state = joined.joined_in(block).clone();
        for inst in &func.blocks[block].insts {
            if let Inst::Barrier(BarrierOp::Wait(x)) = inst {
                for y in state.iter() {
                    if y != x.index() {
                        waits_within[x.index()][y] = true;
                    }
                }
            }
            apply_forward(inst, &mut state);
        }
    }

    let mut out = Vec::new();
    for (i, row) in waits_within.iter().enumerate() {
        for j in (i + 1)..nb {
            if row[j] && waits_within[j][i] {
                out.push(BarrierConflict { a: BarrierId::new(i), b: BarrierId::new(j) });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_ir::parse_module;

    /// The CFG of Figure 4 of the paper (Listing 1): a loop whose body
    /// contains a divergent condition guarding an expensive block.
    ///
    /// bb0 = region start (JoinBarrier b0), bb1 = loop header/prolog +
    /// condition, bb2 = expensive (WaitBarrier b0), bb3 = epilog,
    /// bb4 = region exit. (The paper's BB numbering is shifted by one
    /// because we fold its BB1/BB2 into a single prolog+branch block.)
    fn figure4(with_sync: bool) -> simt_ir::Function {
        let (join, wait) = if with_sync { ("join b0", "wait b0") } else { ("nop", "nop") };
        let src = format!(
            r#"
kernel @fig4(params=0, regs=4, barriers=1, entry=bb0) {{
bb0:
  {join}
  jmp bb1
bb1 (label=prolog):
  %r0 = rng.unit
  %r1 = lt %r0, 0.3f
  brdiv %r1, bb2, bb3
bb2 (label=L1, roi):
  {wait}
  work 40
  jmp bb3
bb3 (label=epilog):
  %r2 = add %r3, 1
  %r3 = mov %r2
  %r1 = lt %r3, 10
  br %r1, bb1, bb4
bb4:
  exit
}}
"#
        );
        let m = parse_module(&src).unwrap();
        let f = m.functions.iter().next().unwrap().1.clone();
        f
    }

    #[test]
    fn joined_analysis_matches_figure_4b() {
        let f = figure4(true);
        let joined = BarrierJoined::analyze(&f);
        let b0 = 0usize;
        // Joined everywhere after bb0 except immediately after the wait in
        // bb3 — the paper's Figure 4(b): JoinedOut = {b0} for BB0, BB1,
        // BB2, BB4, BB5 and {} for BB3.
        assert!(joined.joined_out(BlockId(0)).contains(b0));
        assert!(joined.joined_out(BlockId(1)).contains(b0));
        assert!(!joined.joined_out(BlockId(2)).contains(b0), "wait clears joined state");
        assert!(joined.joined_out(BlockId(3)).contains(b0), "loop edge re-propagates");
        assert!(joined.joined_in(BlockId(2)).contains(b0));
    }

    #[test]
    fn liveness_analysis_matches_figure_4c() {
        let f = figure4(true);
        let live = BarrierLiveness::analyze(&f);
        let b0 = 0usize;
        // Figure 4(c): LiveOut = {b0} for BB0, BB1, BB2, BB3 (via the loop
        // back edge), BB4; {} for BB5.
        assert!(live.live_out(BlockId(0)).contains(b0));
        assert!(live.live_out(BlockId(1)).contains(b0));
        assert!(live.live_out(BlockId(2)).contains(b0), "back edge keeps barrier live");
        assert!(live.live_out(BlockId(3)).contains(b0));
        assert!(!live.live_out(BlockId(4)).contains(b0));
        // The barrier is dead *at entry to* bb0 before the join (Figure
        // 4(c) "LiveOut = {}" for the pre-join point).
        assert!(!live.live_in(BlockId(0)).contains(b0));
    }

    #[test]
    fn instruction_level_queries() {
        let f = figure4(true);
        let joined = BarrierJoined::analyze(&f);
        let live = BarrierLiveness::analyze(&f);
        // In bb2: before inst 0 (the wait) the barrier is joined; after
        // the wait it is not joined but is live again via the loop.
        assert!(joined.joined_before(&f, BlockId(2), 0).contains(0));
        assert!(!joined.joined_before(&f, BlockId(2), 1).contains(0));
        assert!(live.live_after(&f, BlockId(2), 0).contains(0));
        // In bb0: before the join, not joined.
        assert!(!joined.joined_before(&f, BlockId(0), 0).contains(0));
        assert!(joined.joined_before(&f, BlockId(0), 1).contains(0));
    }

    #[test]
    fn no_sync_means_nothing_joined_or_live() {
        let f = figure4(false);
        let joined = BarrierJoined::analyze(&f);
        let live = BarrierLiveness::analyze(&f);
        for b in f.blocks.ids() {
            assert!(joined.joined_out(b).is_empty());
            assert!(live.live_in(b).is_empty());
        }
    }

    #[test]
    fn conflict_detection_matches_figure_5() {
        // Figure 5(a): b0 joined at bb0 and waited in bb3 (then-block);
        // b1 (the PDOM barrier) joined at bb2 (branch block) and waited at
        // bb5 (post-dominator). Ranges overlap non-inclusively.
        let src = r#"
kernel @fig5(params=0, regs=4, barriers=2, entry=bb0) {
bb0:
  join b0
  jmp bb1
bb1:
  %r0 = rng.unit
  %r1 = lt %r0, 0.3f
  join b1
  brdiv %r1, bb2, bb3
bb2:
  wait b0
  work 40
  jmp bb3
bb3:
  wait b1
  %r2 = add %r2, 1
  %r1 = lt %r2, 10
  br %r1, bb1, bb4
bb4:
  cancel b0
  exit
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.functions.iter().next().unwrap().1;
        let conflicts = find_conflicts(f);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0], BarrierConflict { a: BarrierId(0), b: BarrierId(1) });
    }

    #[test]
    fn nested_barriers_do_not_conflict() {
        // b1's range strictly inside b0's range: inclusive overlap, no
        // conflict.
        let src = r#"
kernel @nested(params=0, regs=2, barriers=2, entry=bb0) {
bb0:
  join b0
  jmp bb1
bb1:
  join b1
  jmp bb2
bb2:
  wait b1
  jmp bb3
bb3:
  wait b0
  exit
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.functions.iter().next().unwrap().1;
        assert!(find_conflicts(f).is_empty());
    }
}
