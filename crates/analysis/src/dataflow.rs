//! A small generic dataflow framework over bit-set lattices.
//!
//! The two barrier analyses of the paper (§4.2.1, Equations 1 and 2) are
//! *may* analyses with union meets, so the framework fixes the meet to
//! union and lets problems choose direction, domain size, boundary value,
//! and per-block transfer functions.

use crate::bitset::BitSet;
use simt_ir::{BlockId, Function, IdVec};

/// Direction of propagation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Information flows from predecessors to successors.
    Forward,
    /// Information flows from successors to predecessors.
    Backward,
}

/// A dataflow problem over bit sets with union meet.
pub trait DataflowProblem {
    /// Propagation direction.
    fn direction(&self) -> Direction;
    /// Number of bits in the domain.
    fn domain_size(&self) -> usize;
    /// Value at the boundary (entry for forward problems, every exit for
    /// backward problems). Defaults to the empty set.
    fn boundary(&self) -> BitSet {
        BitSet::new(self.domain_size())
    }
    /// Transfer function of one block, applied to the block's input
    /// (its IN for forward problems, its OUT for backward problems).
    fn transfer(&self, block: BlockId, input: &BitSet) -> BitSet;
}

/// Fixpoint of a dataflow problem.
#[derive(Clone, Debug)]
pub struct DataflowResult {
    /// Value at block entry (forward: IN; backward: the meet over
    /// successors is stored in `out`, and `input` holds the transfer
    /// result at the top of the block — i.e. `input[b]` is always the
    /// value *at the block's entry point* in program order).
    pub entry: IdVec<BlockId, BitSet>,
    /// Value at block exit in program order.
    pub exit: IdVec<BlockId, BitSet>,
}

/// Solves the problem to a fixpoint with a worklist, seeded in (reverse)
/// post-order for fast convergence.
pub fn solve(func: &Function, problem: &dyn DataflowProblem) -> DataflowResult {
    let n = func.blocks.len();
    let size = problem.domain_size();
    let preds = func.predecessors();
    let rpo = func.reverse_post_order();

    let mut entry: IdVec<BlockId, BitSet> = IdVec::with_capacity(n);
    let mut exit: IdVec<BlockId, BitSet> = IdVec::with_capacity(n);
    for _ in 0..n {
        entry.push(BitSet::new(size));
        exit.push(BitSet::new(size));
    }

    // Blocks reachable from the entry: values may only flow along real
    // executions, so unreachable predecessors must not contaminate the
    // meet (their transfer functions still "generate" facts from an empty
    // input).
    let mut reachable = vec![false; n];
    {
        let mut stack = vec![func.entry];
        reachable[func.entry.index()] = true;
        while let Some(b) = stack.pop() {
            for s in func.successors(b) {
                if !reachable[s.index()] {
                    reachable[s.index()] = true;
                    stack.push(s);
                }
            }
        }
    }

    match problem.direction() {
        Direction::Forward => {
            entry[func.entry] = problem.boundary();
            let mut changed = true;
            while changed {
                changed = false;
                for &b in &rpo {
                    if !reachable[b.index()] {
                        continue;
                    }
                    let mut input =
                        if b == func.entry { problem.boundary() } else { BitSet::new(size) };
                    for &p in &preds[b] {
                        if reachable[p.index()] {
                            input.union_with(&exit[p]);
                        }
                    }
                    let output = problem.transfer(b, &input);
                    if input != entry[b] || output != exit[b] {
                        entry[b] = input;
                        exit[b] = output;
                        changed = true;
                    }
                }
            }
        }
        Direction::Backward => {
            let mut changed = true;
            while changed {
                changed = false;
                for &b in rpo.iter().rev() {
                    if !reachable[b.index()] {
                        continue;
                    }
                    let succs = func.successors(b);
                    let output = if succs.is_empty() {
                        problem.boundary()
                    } else {
                        let mut acc = BitSet::new(size);
                        for s in succs {
                            acc.union_with(&entry[s]);
                        }
                        acc
                    };
                    let input = problem.transfer(b, &output);
                    if input != entry[b] || output != exit[b] {
                        entry[b] = input;
                        exit[b] = output;
                        changed = true;
                    }
                }
            }
        }
    }

    DataflowResult { entry, exit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_ir::{FuncKind, Function, Operand, Terminator};

    /// A trivial forward "reachability of a token" problem: block `gen_in`
    /// generates bit 0; no block kills.
    struct TokenProblem {
        gen_in: BlockId,
    }

    impl DataflowProblem for TokenProblem {
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn domain_size(&self) -> usize {
            1
        }
        fn transfer(&self, block: BlockId, input: &BitSet) -> BitSet {
            let mut out = input.clone();
            if block == self.gen_in {
                out.insert(0);
            }
            out
        }
    }

    #[test]
    fn forward_token_reaches_successors_only() {
        // entry -> a -> c; entry -> b -> c
        let mut f = Function::new("d", FuncKind::Kernel, 0);
        let a = f.add_block(None);
        let b = f.add_block(None);
        let c = f.add_block(None);
        f.blocks[f.entry].term = Terminator::Branch {
            cond: Operand::imm_i64(0),
            then_bb: a,
            else_bb: b,
            divergent: false,
        };
        f.blocks[a].term = Terminator::Jump(c);
        f.blocks[b].term = Terminator::Jump(c);
        f.blocks[c].term = Terminator::Exit;

        let r = solve(&f, &TokenProblem { gen_in: a });
        assert!(!r.entry[a].contains(0));
        assert!(r.exit[a].contains(0));
        assert!(!r.exit[b].contains(0));
        assert!(r.entry[c].contains(0)); // union over preds: a generated it
    }

    /// Backward problem: bit 0 is "a use lies ahead"; block `use_in`
    /// generates it.
    struct UseAheadProblem {
        use_in: BlockId,
    }

    impl DataflowProblem for UseAheadProblem {
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn domain_size(&self) -> usize {
            1
        }
        fn transfer(&self, block: BlockId, input: &BitSet) -> BitSet {
            let mut out = input.clone();
            if block == self.use_in {
                out.insert(0);
            }
            out
        }
    }

    #[test]
    fn backward_liveness_through_loop() {
        // entry -> h; h -> body | out; body -> h. Use in body.
        let mut f = Function::new("l", FuncKind::Kernel, 0);
        let h = f.add_block(None);
        let body = f.add_block(None);
        let out = f.add_block(None);
        f.blocks[f.entry].term = Terminator::Jump(h);
        f.blocks[h].term = Terminator::Branch {
            cond: Operand::imm_i64(0),
            then_bb: body,
            else_bb: out,
            divergent: false,
        };
        f.blocks[body].term = Terminator::Jump(h);
        f.blocks[out].term = Terminator::Exit;

        let r = solve(&f, &UseAheadProblem { use_in: body });
        assert!(r.entry[f.entry].contains(0));
        assert!(r.entry[h].contains(0));
        assert!(r.entry[body].contains(0));
        assert!(!r.entry[out].contains(0));
        // The loop edge propagates liveness around the cycle.
        assert!(r.exit[body].contains(0));
    }
}
