//! Natural-loop discovery and the loop nesting forest.
//!
//! A back edge `tail -> header` (where `header` dominates `tail`) defines a
//! natural loop: `header` plus every block that can reach `tail` without
//! passing through `header`. Loops sharing a header are merged. The nest
//! depth per block feeds the §4.5 cost heuristics.

use crate::bitset::BitSet;
use crate::dom::DomTree;
use simt_ir::{BlockId, Function};

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the back edge(s)).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: BitSet,
    /// Back-edge sources (`tail`s) for this header.
    pub latches: Vec<BlockId>,
    /// Index of the innermost enclosing loop in [`LoopForest::loops`], if
    /// any.
    pub parent: Option<usize>,
}

impl Loop {
    /// Whether the block belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(b.index())
    }

    /// Edges leaving the loop, as `(from_in_loop, to_outside)` pairs.
    pub fn exit_edges(&self, func: &Function) -> Vec<(BlockId, BlockId)> {
        let mut out = Vec::new();
        for idx in self.body.iter() {
            let b = BlockId::new(idx);
            for s in func.successors(b) {
                if !self.contains(s) {
                    out.push((b, s));
                }
            }
        }
        out
    }
}

/// All natural loops of a function, with nesting information.
#[derive(Clone, Debug)]
pub struct LoopForest {
    /// The loops, outermost-first within each nest chain is *not*
    /// guaranteed; use [`Loop::parent`] / [`LoopForest::depth`].
    pub loops: Vec<Loop>,
    depth: Vec<u32>,
    innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Discovers the natural loops of `func` using its dominator tree.
    pub fn new(func: &Function, dom: &DomTree) -> LoopForest {
        let n = func.blocks.len();
        let preds = func.predecessors();

        // Find back edges and group them by header.
        let mut headers: Vec<BlockId> = Vec::new();
        let mut latches_of: Vec<Vec<BlockId>> = Vec::new();
        for b in func.blocks.ids() {
            for s in func.successors(b) {
                if dom.dominates(s, b) {
                    match headers.iter().position(|&h| h == s) {
                        Some(i) => latches_of[i].push(b),
                        None => {
                            headers.push(s);
                            latches_of.push(vec![b]);
                        }
                    }
                }
            }
        }

        // Natural loop body per header: reverse reachability from latches,
        // stopping at the header.
        let mut loops: Vec<Loop> = Vec::new();
        for (hi, &header) in headers.iter().enumerate() {
            let mut body = BitSet::new(n);
            body.insert(header.index());
            let mut stack: Vec<BlockId> = Vec::new();
            for &latch in &latches_of[hi] {
                if body.insert(latch.index()) {
                    stack.push(latch);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in &preds[b] {
                    if body.insert(p.index()) {
                        stack.push(p);
                    }
                }
            }
            loops.push(Loop { header, body, latches: latches_of[hi].clone(), parent: None });
        }

        // Nesting: loop A is nested in B if A != B and A.body ⊆ B.body.
        // The parent is the smallest strict superset.
        for i in 0..loops.len() {
            let mut parent: Option<usize> = None;
            for j in 0..loops.len() {
                if i == j {
                    continue;
                }
                if loops[i].body.is_subset(&loops[j].body) && loops[i].body != loops[j].body {
                    parent = match parent {
                        None => Some(j),
                        Some(p) if loops[j].body.is_subset(&loops[p].body) => Some(j),
                        keep => keep,
                    };
                }
            }
            loops[i].parent = parent;
        }

        // Depth and innermost loop per block.
        let mut depth = vec![0u32; n];
        let mut innermost: Vec<Option<usize>> = vec![None; n];
        for b in 0..n {
            let mut best: Option<usize> = None;
            let mut d = 0;
            for (li, l) in loops.iter().enumerate() {
                if l.body.contains(b) {
                    d += 1;
                    best = match best {
                        None => Some(li),
                        Some(cur) if l.body.is_subset(&loops[cur].body) => Some(li),
                        keep => keep,
                    };
                }
            }
            depth[b] = d;
            innermost[b] = best;
        }

        LoopForest { loops, depth, innermost }
    }

    /// Loop nest depth of a block (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth.get(b.index()).copied().unwrap_or(0)
    }

    /// Index of the innermost loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<usize> {
        self.innermost.get(b.index()).copied().flatten()
    }

    /// The loop headed exactly at `header`, if one exists.
    pub fn loop_with_header(&self, header: BlockId) -> Option<&Loop> {
        self.loops.iter().find(|l| l.header == header)
    }

    /// The preheader of loop `idx`: the unique out-of-loop predecessor of
    /// its header, if there is exactly one.
    pub fn preheader(&self, func: &Function, idx: usize) -> Option<BlockId> {
        let l = &self.loops[idx];
        let preds = func.predecessors();
        let outside: Vec<BlockId> =
            preds[l.header].iter().copied().filter(|p| !l.contains(*p)).collect();
        match outside.as_slice() {
            [single] => Some(*single),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_ir::{FuncKind, Function, Operand, Terminator};

    /// entry -> oh ; oh -> ih | done ; ih -> ib | oe ; ib -> ih ; oe -> oh
    /// (outer loop header `oh`, inner loop `ih`/`ib`, outer latch `oe`).
    fn nested_loops() -> Function {
        let mut f = Function::new("nest", FuncKind::Kernel, 0);
        let oh = f.add_block(Some("outer_header".into()));
        let ih = f.add_block(Some("inner_header".into()));
        let ib = f.add_block(Some("inner_body".into()));
        let oe = f.add_block(Some("outer_epilog".into()));
        let done = f.add_block(Some("done".into()));
        let c = Operand::imm_i64(0);
        f.blocks[f.entry].term = Terminator::Jump(oh);
        f.blocks[oh].term =
            Terminator::Branch { cond: c, then_bb: ih, else_bb: done, divergent: false };
        f.blocks[ih].term =
            Terminator::Branch { cond: c, then_bb: ib, else_bb: oe, divergent: true };
        f.blocks[ib].term = Terminator::Jump(ih);
        f.blocks[oe].term = Terminator::Jump(oh);
        f.blocks[done].term = Terminator::Exit;
        f
    }

    #[test]
    fn finds_nested_loops() {
        let f = nested_loops();
        let dom = DomTree::dominators(&f);
        let forest = LoopForest::new(&f, &dom);
        assert_eq!(forest.loops.len(), 2);

        let oh = f.block_by_label("outer_header").unwrap();
        let ih = f.block_by_label("inner_header").unwrap();
        let ib = f.block_by_label("inner_body").unwrap();
        let oe = f.block_by_label("outer_epilog").unwrap();
        let done = f.block_by_label("done").unwrap();

        let outer = forest.loop_with_header(oh).unwrap();
        let inner = forest.loop_with_header(ih).unwrap();
        assert!(outer.contains(ih) && outer.contains(ib) && outer.contains(oe));
        assert!(!outer.contains(done));
        assert!(inner.contains(ib));
        assert!(!inner.contains(oe));

        // Nesting and depth.
        let inner_idx = forest.loops.iter().position(|l| l.header == ih).unwrap();
        let outer_idx = forest.loops.iter().position(|l| l.header == oh).unwrap();
        assert_eq!(forest.loops[inner_idx].parent, Some(outer_idx));
        assert_eq!(forest.loops[outer_idx].parent, None);
        assert_eq!(forest.depth(ib), 2);
        assert_eq!(forest.depth(oe), 1);
        assert_eq!(forest.depth(done), 0);
        assert_eq!(forest.innermost(ib), Some(inner_idx));
        assert_eq!(forest.innermost(oe), Some(outer_idx));
    }

    #[test]
    fn inner_loop_exit_edges() {
        let f = nested_loops();
        let dom = DomTree::dominators(&f);
        let forest = LoopForest::new(&f, &dom);
        let ih = f.block_by_label("inner_header").unwrap();
        let oe = f.block_by_label("outer_epilog").unwrap();
        let inner = forest.loop_with_header(ih).unwrap();
        assert_eq!(inner.exit_edges(&f), vec![(ih, oe)]);
    }

    #[test]
    fn preheader_found_when_unique() {
        let f = nested_loops();
        let dom = DomTree::dominators(&f);
        let forest = LoopForest::new(&f, &dom);
        let oh = f.block_by_label("outer_header").unwrap();
        let ih = f.block_by_label("inner_header").unwrap();
        let outer_idx = forest.loops.iter().position(|l| l.header == oh).unwrap();
        let inner_idx = forest.loops.iter().position(|l| l.header == ih).unwrap();
        assert_eq!(forest.preheader(&f, outer_idx), Some(f.entry));
        // The inner loop's header is entered only from inside the outer
        // loop (oh), which is outside the *inner* loop — a valid preheader.
        assert_eq!(forest.preheader(&f, inner_idx), Some(oh));
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut f = Function::new("s", FuncKind::Kernel, 0);
        f.blocks[f.entry].term = Terminator::Exit;
        let dom = DomTree::dominators(&f);
        let forest = LoopForest::new(&f, &dom);
        assert!(forest.loops.is_empty());
        assert_eq!(forest.depth(f.entry), 0);
    }

    #[test]
    fn self_loop_detected() {
        let mut f = Function::new("sl", FuncKind::Kernel, 0);
        let spin = f.add_block(Some("spin".into()));
        let out = f.add_block(None);
        f.blocks[f.entry].term = Terminator::Jump(spin);
        f.blocks[spin].term = Terminator::Branch {
            cond: Operand::imm_i64(0),
            then_bb: spin,
            else_bb: out,
            divergent: false,
        };
        f.blocks[out].term = Terminator::Exit;
        let dom = DomTree::dominators(&f);
        let forest = LoopForest::new(&f, &dom);
        assert_eq!(forest.loops.len(), 1);
        assert_eq!(forest.loops[0].header, spin);
        assert_eq!(forest.loops[0].latches, vec![spin]);
        assert_eq!(forest.depth(spin), 1);
    }
}
