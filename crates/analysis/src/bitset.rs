//! A dense, fixed-capacity bit set used as the lattice element of the
//! dataflow analyses.

use std::fmt;

/// A fixed-capacity set of small integers backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold elements `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self { words: vec![0; capacity.div_ceil(64)], capacity }
    }

    /// Creates a set containing every element in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts an element. Returns whether the set changed.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.capacity, "bitset index {i} out of capacity {}", self.capacity);
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        self.words[w] != old
    }

    /// Removes an element. Returns whether the set changed.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] &= !(1 << b);
        self.words[w] != old
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place union. Returns whether the set changed.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// In-place intersection. Returns whether the set changed.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a &= b;
            changed |= *a != old;
        }
        changed
    }

    /// In-place difference (`self - other`). Returns whether the set
    /// changed.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn subtract(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a &= !b;
            changed |= *a != old;
        }
        changed
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Whether `self` and `other` share any element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates over elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| if w & (1 << b) != 0 { Some(wi * 64 + b) } else { None })
        })
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects elements into a set sized to the maximum element + 1.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::new(10);
        a.insert(1);
        a.insert(3);
        let mut b = BitSet::new(10);
        b.insert(3);
        b.insert(5);

        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 5]);

        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);

        let mut d = a.clone();
        assert!(d.subtract(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);

        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.intersects(&b));
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [2usize, 7, 4].into_iter().collect();
        assert_eq!(s.capacity(), 8);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 4, 7]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        BitSet::new(4).insert(4);
    }
}
