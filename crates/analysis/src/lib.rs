//! # simt-analysis — CFG analyses for the Speculative Reconvergence passes
//!
//! Provides the program analyses that the compiler passes in
//! `specrecon-core` are built from:
//!
//! - [`DomTree`] — dominator and post-dominator trees ([`dom`]);
//! - [`LoopForest`] — natural loops and nesting depth ([`loops`]);
//! - a generic union-meet bit-set dataflow solver ([`dataflow`]);
//! - if/else diamond detection for control-flow melding ([`diamonds`]);
//! - the paper's two barrier analyses and conflict detection
//!   ([`barriers`]): joined-barrier analysis (Eq. 1), barrier liveness
//!   (Eq. 2), and §4.3 conflict pairs.
//!
//! ```
//! use simt_ir::parse_module;
//! use simt_analysis::{DomTree, LoopForest};
//!
//! let m = parse_module(
//!     "kernel @k(params=0, regs=1, barriers=0, entry=bb0) {\n\
//!      bb0:\n  jmp bb1\n\
//!      bb1:\n  %r0 = add %r0, 1\n  %r0 = lt %r0, 4\n  br %r0, bb1, bb2\n\
//!      bb2:\n  exit\n}\n",
//! ).unwrap();
//! let f = m.functions.iter().next().unwrap().1;
//! let dom = DomTree::dominators(f);
//! let loops = LoopForest::new(f, &dom);
//! assert_eq!(loops.loops.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod barriers;
pub mod bitset;
pub mod dataflow;
pub mod diamonds;
pub mod dom;
pub mod loops;

pub use barriers::{find_conflicts, BarrierConflict, BarrierJoined, BarrierLiveness};
pub use bitset::BitSet;
pub use dataflow::{solve, DataflowProblem, DataflowResult, Direction};
pub use diamonds::{find_diamonds, Diamond};
pub use dom::DomTree;
pub use loops::{Loop, LoopForest};
