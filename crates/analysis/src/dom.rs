//! Dominator and post-dominator trees.
//!
//! Both are computed with the Cooper–Harvey–Kennedy iterative algorithm
//! over (reverse) post-order. Post-dominance runs the same algorithm on
//! the reversed CFG rooted at a *virtual exit* that succeeds every block
//! with no successors ([`simt_ir::Terminator::Exit`] / `Return`). Blocks
//! that cannot reach an exit (infinite loops) have no post-dominator and
//! report `ipdom == None`.

use simt_ir::{BlockId, Function};

/// A dominator (or post-dominator) tree over a function's blocks.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block; `None` for the root and for blocks
    /// not reachable in the traversal direction.
    idom: Vec<Option<BlockId>>,
    /// The tree root (entry block, or virtual-exit representative for
    /// post-dominance — in that case this is `None`).
    root: Option<BlockId>,
    /// Whether this is a post-dominator tree.
    post: bool,
    /// Whether each block was reached by the traversal (from the entry, or
    /// backwards from any exit for post-dominance).
    reachable: Vec<bool>,
}

/// Index of the virtual exit in the internal numbering (only used for
/// post-dominance).
const VIRTUAL_EXIT: usize = usize::MAX;

impl DomTree {
    /// Computes the dominator tree of `func`.
    pub fn dominators(func: &Function) -> DomTree {
        Self::compute(func, false)
    }

    /// Computes the post-dominator tree of `func`.
    pub fn post_dominators(func: &Function) -> DomTree {
        Self::compute(func, true)
    }

    fn compute(func: &Function, post: bool) -> DomTree {
        let n = func.blocks.len();
        let preds_tbl = func.predecessors();

        // Edges in traversal direction.
        let succs = |b: usize| -> Vec<usize> {
            if post {
                preds_tbl[BlockId::new(b)].iter().map(|p| p.index()).collect()
            } else {
                func.successors(BlockId::new(b)).iter().map(|s| s.index()).collect()
            }
        };

        // Roots: entry, or all exit blocks (blocks with no successors).
        let roots: Vec<usize> = if post {
            (0..n).filter(|&b| func.successors(BlockId::new(b)).is_empty()).collect()
        } else {
            vec![func.entry.index()]
        };

        // Post-order over the traversal direction, from the roots.
        let mut visited = vec![false; n];
        let mut post_order: Vec<usize> = Vec::with_capacity(n);
        for &root in &roots {
            if visited[root] {
                continue;
            }
            visited[root] = true;
            let mut stack: Vec<(usize, Vec<usize>, usize)> = vec![(root, succs(root), 0)];
            while let Some((b, ss, next)) = stack.last_mut() {
                if *next < ss.len() {
                    let s = ss[*next];
                    *next += 1;
                    if !visited[s] {
                        visited[s] = true;
                        let nss = succs(s);
                        stack.push((s, nss, 0));
                    }
                } else {
                    post_order.push(*b);
                    stack.pop();
                }
            }
        }

        // rpo_number: higher = earlier in reverse post-order.
        let mut rpo_number = vec![usize::MAX; n];
        for (i, &b) in post_order.iter().enumerate() {
            rpo_number[b] = i;
        }

        // Iterative CHK. `idom[b]` uses VIRTUAL_EXIT as the sentinel root
        // parent for multi-rooted post-dominance.
        let mut idom: Vec<Option<usize>> = vec![None; n];
        for &root in &roots {
            idom[root] = Some(if post { VIRTUAL_EXIT } else { root });
        }

        // The virtual exit is an ancestor of every root, so it absorbs.
        let intersect =
            |idom: &[Option<usize>], rpo: &[usize], mut a: usize, mut b: usize| -> usize {
                while a != b {
                    if a == VIRTUAL_EXIT || b == VIRTUAL_EXIT {
                        return VIRTUAL_EXIT;
                    }
                    while rpo[a] < rpo[b] {
                        a = idom[a].expect("processed node without idom");
                        if a == VIRTUAL_EXIT || a == b {
                            break;
                        }
                    }
                    if a == b || a == VIRTUAL_EXIT {
                        continue;
                    }
                    while rpo[b] < rpo[a] {
                        b = idom[b].expect("processed node without idom");
                        if b == VIRTUAL_EXIT || b == a {
                            break;
                        }
                    }
                }
                a
            };

        // Predecessors in traversal direction.
        let preds = |b: usize| -> Vec<usize> {
            if post {
                func.successors(BlockId::new(b)).iter().map(|s| s.index()).collect()
            } else {
                preds_tbl[BlockId::new(b)].iter().map(|p| p.index()).collect()
            }
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in post_order.iter().rev() {
                if roots.contains(&b) {
                    continue;
                }
                let mut new_idom: Option<usize> = None;
                for p in preds(b) {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_number, cur, p),
                    });
                }
                if new_idom != idom[b] && new_idom.is_some() {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }

        let idom_ids: Vec<Option<BlockId>> = (0..n)
            .map(|b| match idom[b] {
                Some(VIRTUAL_EXIT) => None,
                Some(d) if d == b && !post => None, // entry's self-idom
                Some(d) => Some(BlockId::new(d)),
                None => None,
            })
            .collect();

        DomTree {
            idom: idom_ids,
            root: if post { None } else { Some(func.entry) },
            post,
            reachable: visited,
        }
    }

    /// The immediate (post-)dominator of `b`, or `None` for the root /
    /// blocks with none.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.index()).copied().flatten()
    }

    /// Whether `a` (post-)dominates `b`. Every block dominates itself;
    /// nothing dominates a block the traversal never reached.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(b) || !self.is_reachable(a) {
            return false;
        }
        if a == b {
            return true;
        }
        let mut cur = b;
        // Walk up the tree; depth is bounded by block count.
        for _ in 0..=self.idom.len() {
            match self.idom(cur) {
                Some(d) => {
                    if d == a {
                        return true;
                    }
                    cur = d;
                }
                None => return self.root == Some(a) && !self.post,
            }
        }
        false
    }

    /// Whether this block participates in the tree. For post-dominance a
    /// block disconnected from every exit (e.g. inside an infinite loop
    /// with no break) is unreachable and has no post-dominator.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable.get(b.index()).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_ir::{FuncKind, Function, Operand, Terminator};

    /// entry -> a -> c ; entry -> b -> c ; c -> exit_blk
    fn diamond() -> Function {
        let mut f = Function::new("d", FuncKind::Kernel, 0);
        let a = f.add_block(Some("a".into()));
        let b = f.add_block(Some("b".into()));
        let c = f.add_block(Some("c".into()));
        f.blocks[f.entry].term = Terminator::Branch {
            cond: Operand::imm_i64(0),
            then_bb: a,
            else_bb: b,
            divergent: false,
        };
        f.blocks[a].term = Terminator::Jump(c);
        f.blocks[b].term = Terminator::Jump(c);
        f.blocks[c].term = Terminator::Exit;
        f
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let dt = DomTree::dominators(&f);
        let (e, a, b, c) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(dt.idom(e), None);
        assert_eq!(dt.idom(a), Some(e));
        assert_eq!(dt.idom(b), Some(e));
        assert_eq!(dt.idom(c), Some(e));
        assert!(dt.dominates(e, c));
        assert!(!dt.dominates(a, c));
        assert!(dt.dominates(c, c));
    }

    #[test]
    fn diamond_post_dominators() {
        let f = diamond();
        let pdt = DomTree::post_dominators(&f);
        let (e, a, b, c) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(pdt.idom(e), Some(c));
        assert_eq!(pdt.idom(a), Some(c));
        assert_eq!(pdt.idom(b), Some(c));
        assert_eq!(pdt.idom(c), None);
        assert!(pdt.dominates(c, e));
        assert!(!pdt.dominates(a, e));
    }

    /// entry -> header; header -> body | exit_blk; body -> header
    fn simple_loop() -> Function {
        let mut f = Function::new("l", FuncKind::Kernel, 0);
        let header = f.add_block(Some("header".into()));
        let body = f.add_block(Some("body".into()));
        let exit_blk = f.add_block(Some("out".into()));
        f.blocks[f.entry].term = Terminator::Jump(header);
        f.blocks[header].term = Terminator::Branch {
            cond: Operand::imm_i64(0),
            then_bb: body,
            else_bb: exit_blk,
            divergent: false,
        };
        f.blocks[body].term = Terminator::Jump(header);
        f.blocks[exit_blk].term = Terminator::Exit;
        f
    }

    #[test]
    fn loop_dominators() {
        let f = simple_loop();
        let dt = DomTree::dominators(&f);
        let (e, h, b, x) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(dt.idom(h), Some(e));
        assert_eq!(dt.idom(b), Some(h));
        assert_eq!(dt.idom(x), Some(h));
    }

    #[test]
    fn loop_post_dominators() {
        let f = simple_loop();
        let pdt = DomTree::post_dominators(&f);
        let (e, h, b, x) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(pdt.idom(e), Some(h));
        assert_eq!(pdt.idom(b), Some(h));
        assert_eq!(pdt.idom(h), Some(x));
        assert!(pdt.dominates(x, e));
        assert!(pdt.is_reachable(b));
    }

    #[test]
    fn infinite_loop_has_no_post_dominator() {
        let mut f = Function::new("inf", FuncKind::Kernel, 0);
        let spin = f.add_block(Some("spin".into()));
        f.blocks[f.entry].term = Terminator::Jump(spin);
        f.blocks[spin].term = Terminator::Jump(spin);
        let pdt = DomTree::post_dominators(&f);
        assert_eq!(pdt.idom(BlockId(0)), None);
        assert!(!pdt.is_reachable(BlockId(1)));
    }

    #[test]
    fn multiple_exits_meet_at_virtual_exit() {
        // entry branches to two blocks that each exit: neither exit block
        // post-dominates entry; entry's ipdom is the virtual exit (None).
        let mut f = Function::new("two_exits", FuncKind::Kernel, 0);
        let a = f.add_block(None);
        let b = f.add_block(None);
        f.blocks[f.entry].term = Terminator::Branch {
            cond: Operand::imm_i64(0),
            then_bb: a,
            else_bb: b,
            divergent: false,
        };
        f.blocks[a].term = Terminator::Exit;
        f.blocks[b].term = Terminator::Exit;
        let pdt = DomTree::post_dominators(&f);
        assert_eq!(pdt.idom(f.entry), None);
        assert!(pdt.is_reachable(a));
        assert!(!pdt.dominates(a, f.entry));
    }
}
