//! Offline drop-in subset of the `criterion` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `criterion` its benches use: groups,
//! `bench_function` / `bench_with_input`, throughput annotation, and
//! the `criterion_group!` / `criterion_main!` entry points.
//!
//! Measurement is a plain wall-clock harness: warm up, calibrate an
//! iteration count against a time target, then report mean ns/iter
//! (plus element throughput when annotated). No statistics, plots, or
//! baselines — the point is comparable numbers in CI logs, not
//! publication-grade confidence intervals.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque hint that prevents the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How many logical items one iteration processes, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group: a function name plus a
/// display parameter (e.g. a workload name or job count).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { full: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Runs the closure under measurement.
pub struct Bencher<'a> {
    total: &'a mut Duration,
    iters: &'a mut u64,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, choosing an iteration count to fill the
    /// measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: one timed call sizes the batch.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = self.measurement_time;
        let n = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        *self.total = start.elapsed();
        *self.iters = n;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the harness sizes iteration
    /// counts from the time target instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measurement_time = time;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        self.run(id.into_benchmark_id(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_benchmark_id(), |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let full = format!("{}/{}", self.name, id.full);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut bencher = Bencher {
            total: &mut total,
            iters: &mut iters,
            measurement_time: self.criterion.measurement_time,
        };
        f(&mut bencher);
        report(&full, total, iters, self.throughput);
    }

    /// Ends the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

fn report(name: &str, total: Duration, iters: u64, throughput: Option<Throughput>) {
    if iters == 0 {
        println!("{name:<50} (not measured)");
        return;
    }
    let per_iter_ns = total.as_nanos() as f64 / iters as f64;
    let time = human_time(per_iter_ns);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 * 1e9 / per_iter_ns;
            println!(
                "{name:<50} time: {time:>12}/iter   thrpt: {:>14}",
                human_rate(rate, "elem/s")
            );
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 * 1e9 / per_iter_ns;
            println!("{name:<50} time: {time:>12}/iter   thrpt: {:>14}", human_rate(rate, "B/s"));
        }
        None => println!("{name:<50} time: {time:>12}/iter"),
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Conversions accepted where a benchmark id is expected.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { full: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { full: self }
    }
}

/// The benchmark harness handle passed to every group function.
pub struct Criterion {
    filter: Option<String>,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { filter: None, measurement_time: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Creates a handle configured from command-line arguments
    /// (`cargo bench` flags are accepted; a bare string filters by
    /// substring).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                // cargo/libtest plumbing: accept and ignore.
                "--bench" | "--test" | "--nocapture" | "--quiet" | "--verbose" | "-v" => {}
                // `--profile-time` (real criterion: run without stats for
                // profiling) is treated as a plain time target here — CI
                // smoke jobs use it to bound bench wall time.
                "--measurement-time" | "--profile-time" => {
                    if let Some(secs) = args.next().and_then(|s| s.parse::<f64>().ok()) {
                        c.measurement_time = Duration::from_secs_f64(secs);
                    }
                }
                s if s.starts_with('-') => {
                    // Unknown flag: skip (and its value if present).
                }
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup { criterion: self, name: String::new(), throughput: None };
        g.run(name.into_benchmark_id(), f);
        self
    }
}

/// Bundles benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_reports() {
        let mut c = Criterion { filter: None, measurement_time: Duration::from_millis(5) };
        let mut g = c.benchmark_group("demo");
        let mut ran = 0u64;
        g.throughput(Throughput::Elements(10));
        g.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        g.finish();
        assert!(ran > 0, "bench body never executed");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            measurement_time: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("demo");
        let mut ran = false;
        g.bench_function("skipped", |b| {
            b.iter(|| ran = true);
        });
        g.finish();
        assert!(!ran, "filtered bench should not run");
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("baseline", "rsbench");
        assert_eq!(id.full, "baseline/rsbench");
    }
}
