//! Offline drop-in subset of the `proptest` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` its test suites actually use:
//! [`Strategy`] with `prop_map`, tuple/range/`Just`/`any` strategies,
//! `prop_oneof!`, `prop::collection::vec`, regex-subset string
//! strategies, and the `proptest!`/`prop_assert*`/`prop_assume!`
//! macros driven by a deterministic runner.
//!
//! Differences from upstream are deliberate: no shrinking (a failing
//! case reports the assertion message and the case seed instead of a
//! minimized input), and value streams are deterministic per test name
//! rather than matching upstream byte-for-byte.

pub mod strategy {
    use std::ops::Range;
    use std::sync::Arc;

    use rand::Rng as _;

    use super::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Object-safe: combinators that need `Self: Sized` say so, letting
    /// `prop_oneof!` erase heterogeneous strategies behind
    /// `Arc<dyn Strategy<Value = V>>`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives; the engine
    /// behind `prop_oneof!`.
    pub struct Union<V> {
        options: Vec<Arc<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Creates a union over `options`; panics if empty.
        pub fn new(options: Vec<Arc<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union { options: self.options.clone() }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i32, i64, u32, u64, usize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    /// Types with a canonical [`any`] strategy.
    pub trait Arbitrary: Sized {
        /// The strategy [`any`] returns for this type.
        type Strategy: Strategy<Value = Self>;

        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for primitives, parameterized by type.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    macro_rules! impl_any {
        ($($t:ty => |$rng:ident| $gen:expr),* $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, $rng: &mut TestRng) -> $t {
                    $gen
                }
            }

            impl Arbitrary for $t {
                type Strategy = Any<$t>;

                fn arbitrary() -> Any<$t> {
                    Any(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_any! {
        bool => |rng| rng.gen(),
        u8 => |rng| rng.gen::<u64>() as u8,
        u32 => |rng| rng.gen::<u32>(),
        u64 => |rng| rng.gen::<u64>(),
        i64 => |rng| rng.gen::<u64>() as i64,
        usize => |rng| rng.gen::<u64>() as usize,
        f64 => |rng| rng.gen::<f64>(),
    }

    /// Returns the canonical strategy for `T` (`any::<bool>()`, ...).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// String literals are regex-subset strategies generating matching
    /// strings.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }
}

pub mod collection {
    use std::ops::Range;

    use rand::Rng as _;

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Number of elements for a collection strategy: an exact size or a
    /// half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { start: n, end: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection size range must be non-empty");
            SizeRange { start: r.start, end: r.end }
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

mod string {
    //! Generator for the regex subset the workspace's string strategies
    //! use: literals, `\`-escapes, character classes with ranges,
    //! alternation groups, and `{m}` / `{m,n}` repetition.

    use rand::Rng as _;

    use super::test_runner::TestRng;

    enum Node {
        Seq(Vec<Node>),
        Alt(Vec<Node>),
        Class(Vec<(char, char)>),
        Lit(char),
        Repeat(Box<Node>, usize, usize),
    }

    /// Generates one string matching `pattern`.
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let node = parse_alt(&chars, &mut pos);
        assert!(pos == chars.len(), "unsupported regex pattern: {pattern:?}");
        let mut out = String::new();
        emit(&node, rng, &mut out);
        out
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Seq(parts) => parts.iter().for_each(|p| emit(p, rng, out)),
            Node::Alt(opts) => emit(&opts[rng.gen_range(0..opts.len())], rng, out),
            Node::Class(ranges) => {
                let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                out.push(char::from_u32(rng.gen_range(lo as u32..hi as u32 + 1)).unwrap());
            }
            Node::Lit(c) => out.push(*c),
            Node::Repeat(inner, min, max) => {
                let n = rng.gen_range(*min..max + 1);
                (0..n).for_each(|_| emit(inner, rng, out));
            }
        }
    }

    fn parse_alt(chars: &[char], pos: &mut usize) -> Node {
        let mut options = vec![parse_seq(chars, pos)];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            options.push(parse_seq(chars, pos));
        }
        if options.len() == 1 {
            options.pop().unwrap()
        } else {
            Node::Alt(options)
        }
    }

    fn parse_seq(chars: &[char], pos: &mut usize) -> Node {
        let mut parts = Vec::new();
        while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
            let atom = parse_atom(chars, pos);
            parts.push(parse_quantifier(chars, pos, atom));
        }
        if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Node::Seq(parts)
        }
    }

    fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
        match chars[*pos] {
            '(' => {
                *pos += 1;
                let inner = parse_alt(chars, pos);
                assert!(chars.get(*pos) == Some(&')'), "unclosed group in pattern");
                *pos += 1;
                inner
            }
            '[' => {
                *pos += 1;
                let mut ranges = Vec::new();
                while chars[*pos] != ']' {
                    let lo = parse_class_char(chars, pos);
                    if chars[*pos] == '-' && chars[*pos + 1] != ']' {
                        *pos += 1;
                        let hi = parse_class_char(chars, pos);
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                *pos += 1;
                Node::Class(ranges)
            }
            '\\' => {
                *pos += 1;
                let c = unescape(chars[*pos]);
                *pos += 1;
                Node::Lit(c)
            }
            c => {
                *pos += 1;
                Node::Lit(c)
            }
        }
    }

    fn parse_class_char(chars: &[char], pos: &mut usize) -> char {
        if chars[*pos] == '\\' {
            *pos += 1;
            let c = unescape(chars[*pos]);
            *pos += 1;
            c
        } else {
            let c = chars[*pos];
            *pos += 1;
            c
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Node {
        if chars.get(*pos) != Some(&'{') {
            return atom;
        }
        *pos += 1;
        let min = parse_number(chars, pos);
        let max = if chars[*pos] == ',' {
            *pos += 1;
            parse_number(chars, pos)
        } else {
            min
        };
        assert!(chars[*pos] == '}', "unclosed quantifier in pattern");
        *pos += 1;
        Node::Repeat(Box::new(atom), min, max)
    }

    fn parse_number(chars: &[char], pos: &mut usize) -> usize {
        let mut n = 0usize;
        while chars[*pos].is_ascii_digit() {
            n = n * 10 + chars[*pos] as usize - '0' as usize;
            *pos += 1;
        }
        n
    }
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic random source handed to strategies.
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        pub(crate) fn from_seed(seed: u64) -> Self {
            TestRng { inner: SmallRng::seed_from_u64(seed) }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Runner configuration; construct with functional update syntax:
    /// `ProptestConfig { cases: 48, ..ProptestConfig::default() }`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65536 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject,
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h
    }

    /// Drives one property: runs `body` until `cfg.cases` successes,
    /// retrying rejections, panicking on the first failure.
    pub fn run_cases<F>(cfg: &ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut attempt = 0u64;
        while passed < cfg.cases {
            let seed = base.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            attempt += 1;
            let mut rng = TestRng::from_seed(seed);
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= cfg.max_global_rejects,
                        "{name}: too many prop_assume! rejections ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: case {passed} failed (seed {seed:#018x}): {msg}")
                }
            }
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::sync::Arc::new($strat)
                as ::std::sync::Arc<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $fmt:expr $(, $args:expr)* $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($fmt $(, $args)*),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $fmt:expr $(, $args:expr)* $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                concat!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: ",
                    $fmt
                ),
                l,
                r
                $(, $args)*
            )));
        }
    }};
}

/// Rejects the current case unless `cond` holds; the runner retries
/// with fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn` body runs against `cases` random
/// input tuples drawn from its `in` strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(&cfg, stringify!($name), |rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_strategy_matches_class_pattern() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..50 {
            let s = Strategy::generate(&"[ -~\n]{0,40}", &mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn string_strategy_matches_alternation_pattern() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..50 {
            let s = Strategy::generate(&"(ab|cd[0-9]|x){1,5}", &mut rng);
            assert!(!s.is_empty());
            assert!(s.chars().all(|c| "abcdx0123456789".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macros_drive_generated_tuples(
            x in 1i64..100,
            v in prop::collection::vec(0u32..10, 0..4),
            choice in prop_oneof![Just(0u32), (1u32..4).prop_map(|b| b)],
        ) {
            prop_assume!(x != 41);
            prop_assert!((1..100).contains(&x), "x out of range: {}", x);
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(choice < 4u32);
        }
    }
}
