//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few pieces of `rand` it actually uses: [`rngs::SmallRng`]
//! (xoshiro256++ seeded through splitmix64, the same generator family
//! `rand` 0.8 uses on 64-bit targets), [`SeedableRng::seed_from_u64`],
//! and the [`Rng::gen`]/[`Rng::gen_range`] sampling entry points.
//!
//! Streams are fully deterministic in the seed, which is all the
//! synthetic-corpus generator and the tests rely on; matching upstream
//! `rand` bit-for-bit is explicitly a non-goal.

#![warn(missing_docs)]

/// Random number generators.
pub mod rngs {
    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.next_u64_impl()
        }
    }

    impl crate::SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is invalid for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 1];
            }
            SmallRng { s }
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64` seed, expanding it through
    /// splitmix64 exactly like `rand_core`'s default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bits = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bits[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Unbiased bounded sampling via widening multiply with
                // rejection (Lemire's method).
                let mut m = (rng.next_u64() as u128) * (span as u128);
                if (m as u64) < span {
                    let threshold = span.wrapping_neg() % span;
                    while (m as u64) < threshold {
                        m = (rng.next_u64() as u128) * (span as u128);
                    }
                }
                ((self.start as i128) + ((m >> 64) as i128)) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws one uniform sample of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(45..90);
            assert!((45..90).contains(&v));
            let f: f64 = rng.gen_range(0.15..0.4);
            assert!((0.15..0.4).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_range_covers_endpoints() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }
}
